//! Matrix multiplication — §6.4.
//!
//! One RowRequest tuple per output row; all rows form a single `par`
//! equivalence class, so the all-minimums strategy runs them as one wave
//! of fork/join tasks. Matrices live in the native-array Gamma store.
//!
//! ```text
//! cargo run --release --example matrix_multiply [n] [threads]
//! ```

use jstar::apps::matmul;
use jstar::core::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<()> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(512);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    println!("multiplying two {n}x{n} integer matrices");
    let a = Arc::new(matmul::gen_matrix(n, 1));
    let b = Arc::new(matmul::gen_matrix(n, 2));

    let t0 = Instant::now();
    let c_seq = matmul::run_jstar(
        n,
        Arc::clone(&a),
        Arc::clone(&b),
        EngineConfig::sequential(),
    )?;
    let t_seq = t0.elapsed();
    println!("JStar sequential:        {:.3}s", t_seq.as_secs_f64());

    let t0 = Instant::now();
    let c_par = matmul::run_jstar(
        n,
        Arc::clone(&a),
        Arc::clone(&b),
        EngineConfig::parallel(threads),
    )?;
    let t_par = t0.elapsed();
    println!(
        "JStar parallel ({threads} thr): {:.3}s  ({:.2}x)",
        t_par.as_secs_f64(),
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );

    let t0 = Instant::now();
    let c_naive = matmul::multiply_naive(&a, &b, n);
    println!(
        "naive ijk baseline:      {:.3}s",
        t0.elapsed().as_secs_f64()
    );

    let t0 = Instant::now();
    let c_trans = matmul::multiply_transposed(&a, &b, n);
    println!(
        "transposed baseline:     {:.3}s  (the paper's 1.0s variant)",
        t0.elapsed().as_secs_f64()
    );

    assert_eq!(c_seq, c_naive);
    assert_eq!(c_par, c_naive);
    assert_eq!(c_trans, c_naive);
    println!("\nall four products agree ✓ (C[0][0] = {})", c_seq[0]);
    Ok(())
}
