//! Visualising program structure and execution (§1.5).
//!
//! JStar ships "a simple graph visualizer for viewing aspects of the
//! partial order over tuples that controls the parallelism" and "tools to
//! visualise those logs as annotated dependency graphs of the program
//! execution. This is a useful basis for choosing parallelisation
//! strategies." This example renders both views for the PvWatts program:
//! the dependency graph (DOT, Fig. 7's shape) annotated with live
//! counters, and the per-step parallelism profile as an ASCII chart.
//!
//! ```text
//! cargo run --release --example visualize
//! ```

use jstar::apps::pvwatts::{self, InputOrder, Variant};
use jstar::core::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    let csv = Arc::new(pvwatts::generate_csv(8_760, InputOrder::Chronological));
    let app = pvwatts::build_program(Arc::clone(&csv), 6);
    let config = pvwatts::apply_variant(
        &app,
        Variant::CustomStore,
        EngineConfig::parallel(6).record_steps(),
    );
    let mut engine = Engine::new(Arc::clone(&app.program), config);
    engine.run()?;

    // View 1: the annotated dependency graph (pipe into `dot -Tpng`).
    let snapshots: Vec<_> = engine.stats().tables.iter().map(|t| t.snapshot()).collect();
    println!("--- dependency graph (Graphviz DOT), annotated with counters ---\n");
    println!(
        "{}",
        app.program.dependency_graph().to_dot(Some(&snapshots))
    );

    // View 2: the parallelism profile — one bar per execution step.
    println!("--- parallelism profile (class size per step) ---\n");
    print!("{}", engine.stats().render_parallelism_profile(20));
    println!(
        "\nmean class size {:.1}, max {}, histogram {:?}",
        engine.stats().mean_class_size(),
        engine
            .stats()
            .max_class
            .load(std::sync::atomic::Ordering::Relaxed),
        engine.stats().class_size_histogram()
    );
    Ok(())
}
