//! Quickstart — the paper's Ship example (§3, Fig. 2).
//!
//! Declares one timestamped table and one movement rule, runs it on both
//! engines, and prints the Fig. 2 trace.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use jstar::apps::ship;
use jstar::core::prelude::*;

fn main() -> Result<()> {
    // Stage 1-2 of the JStar workflow: application logic + causality check.
    let program = ship::program(7);
    program
        .validate_strict()
        .expect("the Ship rule satisfies the Law of Causality");
    println!("causality obligations:");
    for r in program.check_causality() {
        println!("  rule {:<8} [{}] -> {}", r.rule, r.label, r.message);
    }

    // Stage 3: pick a parallelism strategy — no program changes needed.
    let rows = ship::run(7, EngineConfig::sequential())?;
    println!("\nShip table (sequential engine):");
    println!(
        "{:>5} {:>5} {:>4} {:>5} {:>4}",
        "frame", "x", "y", "dx", "dy"
    );
    for s in &rows {
        println!(
            "{:>5} {:>5} {:>4} {:>5} {:>4}",
            s.frame, s.x, s.y, s.dx, s.dy
        );
    }

    let par_rows = ship::run(7, EngineConfig::parallel(4))?;
    assert_eq!(rows, par_rows, "deterministic across strategies (§1.3)");
    println!("\nparallel engine produced the identical table ✓");
    Ok(())
}
