//! PvWatts — the paper's map-reduce case study end to end (§6.2, Fig. 4).
//!
//! Generates synthetic hourly solar data, runs the JStar program under the
//! paper's optimisation ladder, prints the monthly means, the per-table
//! usage statistics (§1.5's logging system) and the dependency graph in
//! DOT (Fig. 7's view).
//!
//! ```text
//! cargo run --release --example pvwatts [records]
//! ```

use jstar::apps::pvwatts::{self, InputOrder, Variant};
use jstar::core::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<()> {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(87_600);
    println!("generating {records} hourly records...");
    let csv = Arc::new(pvwatts::generate_csv(records, InputOrder::Chronological));
    println!("input: {:.1} MB of CSV", csv.len() as f64 / 1e6);

    // Static checking (workflow stage 2).
    let app = pvwatts::build_program(Arc::clone(&csv), 4);
    app.program.validate_strict()?;
    println!("\ndependency graph (render with `dot -Tpng`):\n");
    println!("{}", app.program.dependency_graph().to_dot(None));

    // The optimisation ladder of §6.2, sequentially.
    println!("sequential optimisation ladder:");
    for variant in Variant::all() {
        let t0 = Instant::now();
        let (means, report) =
            pvwatts::run_jstar(Arc::clone(&csv), 1, variant, EngineConfig::sequential())?;
        println!(
            "  {:<16} {:>8.3}s  ({} steps, {} months)",
            variant.name(),
            t0.elapsed().as_secs_f64(),
            report.steps,
            means.len()
        );
    }

    // Parallel run with statistics.
    let app = pvwatts::build_program(Arc::clone(&csv), 8);
    let config = pvwatts::apply_variant(&app, Variant::CustomStore, EngineConfig::parallel(8));
    let mut engine = Engine::new(Arc::clone(&app.program), config);
    let report = engine.run()?;
    println!(
        "\nparallel run (8 threads): {:.3}s",
        report.elapsed.as_secs_f64()
    );
    println!("\nmonthly means:");
    let mut out = report.output.clone();
    out.sort();
    for line in out.iter().take(14) {
        println!("  {line}");
    }
    if out.len() > 14 {
        println!("  ... {} more", out.len() - 14);
    }

    println!("\nper-table usage statistics (§1.5):");
    for (def, stats) in app.program.defs().iter().zip(&engine.stats().tables) {
        let s = stats.snapshot();
        println!(
            "  {:<16} puts={:<9} delta={:<9} gamma={:<9} dups={:<7} triggers={:<9} queries={}",
            def.name, s.puts, s.delta_inserts, s.gamma_fresh, s.gamma_dups, s.triggers, s.queries
        );
    }
    Ok(())
}
