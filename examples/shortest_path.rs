//! Dijkstra shortest paths — §6.5, Fig. 5.
//!
//! The Delta tree *is* the priority queue: `Estimate` tuples are ordered
//! by `(Int, seq distance, Estimate)`, so the engine's min-class
//! extraction hands out frontier vertices in distance order.
//!
//! ```text
//! cargo run --release --example shortest_path [vertices] [threads]
//! ```

use jstar::apps::shortest_path::{self, GraphSpec};
use jstar::core::prelude::*;
use std::time::Instant;

fn main() -> Result<()> {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let spec = GraphSpec::new(n, n, 24, 7);
    println!(
        "random graph: {} vertices, ≈{} edges, weights 1..=10, {} generation tasks",
        spec.n,
        spec.n + spec.extra,
        spec.tasks
    );

    let app = shortest_path::build_program(spec);
    app.program.validate_strict()?;

    let t0 = Instant::now();
    let jstar = shortest_path::run_jstar(spec, EngineConfig::sequential())?;
    let t_seq = t0.elapsed();
    println!("JStar sequential:        {:.3}s", t_seq.as_secs_f64());

    let t0 = Instant::now();
    let jstar_par = shortest_path::run_jstar(spec, EngineConfig::parallel(threads))?;
    let t_par = t0.elapsed();
    println!(
        "JStar parallel ({threads} thr): {:.3}s  ({:.2}x)",
        t_par.as_secs_f64(),
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );

    let t0 = Instant::now();
    let adj = shortest_path::adjacency(&spec);
    let baseline = shortest_path::dijkstra_baseline(&adj, 0);
    println!(
        "BinaryHeap baseline:     {:.3}s (incl. graph build)",
        t0.elapsed().as_secs_f64()
    );

    assert_eq!(jstar, baseline, "JStar distances match the baseline");
    assert_eq!(jstar, jstar_par, "deterministic across strategies");
    let max_d = jstar.iter().max().unwrap();
    let mean: f64 = jstar.iter().map(|&d| d as f64).sum::<f64>() / jstar.len() as f64;
    println!("\neccentricity from vertex 0: max distance {max_d}, mean {mean:.2}");
    println!("first ten distances: {:?}", &jstar[..10.min(jstar.len())]);
    Ok(())
}
