//! Event-driven programming with external input tuples (§3).
//!
//! "Event-driven programming with external input tuples fits elegantly
//! into this framework — the input tuples are added to the Delta Set, and
//! can then trigger various rules before being stored into a table."
//!
//! A tiny monitoring pipeline: injected `Reading(sensor, t, value)` events
//! trigger a threshold rule that raises `Alert` tuples; an alert rule
//! aggregates the readings of the offending sensor so far (an aggregate
//! query over the strictly-earlier past, stratified by
//! `order Reading < Alert`). Tables are declared through the typed
//! `jstar_table!` item form, so rule bodies receive `Reading` / `Alert`
//! structs and queries use compile-checked field tokens.
//!
//! ```text
//! cargo run --example event_driven
//! ```

use jstar::core::jstar_table;
use jstar::core::prelude::*;
use std::sync::Arc;

jstar_table! {
    /// One sensor measurement at tick `t`.
    #[derive(Copy, Eq)]
    pub Reading(int sensor, int t, int value)
        orderby (Reading, seq t)
}

jstar_table! {
    /// An alert raised one tick after a threshold crossing.
    #[derive(Copy, Eq)]
    pub Alert(int sensor, int t)
        orderby (Alert, seq t)
}

fn main() -> Result<()> {
    let mut p = ProgramBuilder::new();
    p.relation::<Reading>();
    p.relation::<Alert>();
    p.order(&["Reading", "Alert"]);

    // Threshold rule: readings above 90 raise an alert one tick later.
    let mut cx = ModelCtx::new();
    let guard = vec![cx.trig("value").gt(&cx.k(90))];
    let bindings = cx.out("t").eq_(&(cx.trig("t") + 1));
    let model = CausalityModel {
        ctx: cx,
        invariants: vec![],
        puts: vec![PutModel {
            out_table: "Alert".into(),
            guard,
            bindings,
            label: "raise alert".into(),
        }],
        queries: vec![],
    };
    p.rule_rel_with_model("threshold", model, move |ctx, r: Reading| {
        if r.value > 90 {
            ctx.put_rel(Alert {
                sensor: r.sensor,
                t: r.t + 1,
            });
        }
    });

    // Alert rule: summarise the sensor's history (aggregate over the
    // strictly-earlier Reading stratum).
    let mut cx = ModelCtx::new();
    let q_bind = cx.q("t").lt(&cx.trig("t"));
    let model = CausalityModel {
        ctx: cx,
        invariants: vec![],
        puts: vec![],
        queries: vec![QueryModel {
            q_table: "Reading".into(),
            guard: vec![],
            bindings: vec![q_bind],
            label: "sensor history".into(),
        }],
    };
    p.rule_rel_with_model("report", model, move |ctx, a: Alert| {
        let stats = ctx.reduce_rel(
            Reading::query().eq(Reading::sensor, a.sensor),
            &Statistics {
                field: Reading::value.index(),
            },
        );
        ctx.println(format!(
            "ALERT sensor {} at t={}: {} readings so far, mean {:.1}, max {}",
            a.sensor,
            a.t,
            stats.count,
            stats.mean(),
            stats.max
        ));
    });

    let program = Arc::new(p.build()?);
    program.validate_strict()?;

    let mut engine = Engine::new(Arc::clone(&program), EngineConfig::parallel(4));
    // External events arrive before the run (a long-running system would
    // alternate inject/run phases).
    let feed = [
        (1, 0, 42),
        (2, 0, 97),
        (1, 1, 88),
        (2, 1, 99),
        (1, 2, 95),
        (3, 2, 10),
    ];
    for (sensor, t, value) in feed {
        engine.inject_rel(Reading { sensor, t, value });
    }
    let report = engine.run()?;
    let mut out = report.output;
    out.sort();
    println!(
        "processed {} tuples in {} steps:",
        report.tuples_processed, report.steps
    );
    for line in out {
        println!("  {line}");
    }
    Ok(())
}
