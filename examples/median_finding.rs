//! Median finding — §6.6.
//!
//! The explicitly parallel JStar program: per iteration a controller picks
//! a pivot, N region tasks three-way-partition their segments in parallel
//! (one `par` equivalence class), and a collector steers into the side
//! holding the k-th element — all expressed as tables and rules, with the
//! `double[2][n]` native-array store for the data.
//!
//! ```text
//! cargo run --release --example median_finding [n] [threads]
//! ```

use jstar::apps::median;
use jstar::core::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<()> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000_000);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    println!("generating {n} random doubles...");
    let data = Arc::new(median::gen_data(n, 2024));

    let app = median::build_program(n, threads * 4);
    app.program.validate_strict()?;

    let t0 = Instant::now();
    let m_seq = median::run_jstar(Arc::clone(&data), threads * 4, EngineConfig::sequential())?;
    let t_seq = t0.elapsed();
    println!(
        "JStar sequential:          {:.3}s -> {m_seq}",
        t_seq.as_secs_f64()
    );

    let t0 = Instant::now();
    let m_par = median::run_jstar(
        Arc::clone(&data),
        threads * 4,
        EngineConfig::parallel(threads),
    )?;
    let t_par = t0.elapsed();
    println!(
        "JStar parallel ({threads} thr):   {:.3}s -> {m_par}  ({:.2}x)",
        t_par.as_secs_f64(),
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );

    let t0 = Instant::now();
    let m_sort = median::median_by_sort(&data);
    println!(
        "full-sort baseline:        {:.3}s -> {m_sort}",
        t0.elapsed().as_secs_f64()
    );

    let t0 = Instant::now();
    let m_qs = median::median_by_quickselect(&data);
    println!(
        "quickselect baseline:      {:.3}s -> {m_qs}",
        t0.elapsed().as_secs_f64()
    );

    assert_eq!(m_seq, m_sort);
    assert_eq!(m_par, m_sort);
    assert_eq!(m_qs, m_sort);
    println!("\nall four agree ✓");
    Ok(())
}
