//! # jstar — umbrella crate for the JStar-rs workspace
//!
//! A Rust reproduction of the system described in *The JStar Language
//! Philosophy* (Utting, Weng, Cleary, 2013): a declarative parallel
//! programming runtime whose semantics is Datalog with negation plus an
//! explicit causality ordering.
//!
//! This crate simply re-exports the workspace members under short names so
//! the repository-level examples and integration tests have one import path:
//!
//! * [`core`] — tables, tuples, orderby keys, the Delta tree, the Gamma
//!   database, rules, the causality checker, and the execution engines;
//! * [`pool`] — the work-stealing fork/join thread pool substrate;
//! * [`disruptor`] — the LMAX-Disruptor-style ring buffer substrate;
//! * [`csv`] — the byte-oriented CSV reading substrate;
//! * [`apps`] — the paper's case-study programs (Ship, PvWatts, MatrixMult,
//!   ShortestPath, Median) together with hand-coded baselines.

pub use jstar_apps as apps;
pub use jstar_core as core;
pub use jstar_csv as csv;
pub use jstar_disruptor as disruptor;
pub use jstar_pool as pool;
