//! Cross-crate integration: the paper's §5.1 optimisation flags and §1.4
//! data-structure choices must change performance *only* — "this stage can
//! change the efficiency of the program but cannot change its correctness
//! (input-output behaviour is preserved)".

use jstar::core::prelude::*;
use std::sync::Arc;

/// A small two-stage pipeline program used to exercise flag combinations:
/// Source(t) -> Derived(t+1) -> output println.
fn pipeline_program() -> (Arc<Program>, TableId, TableId) {
    let mut p = ProgramBuilder::new();
    let src = p.table("Source", |b| {
        b.col_int("t")
            .col_int("v")
            .orderby(&[strat("Src"), seq("t")])
    });
    let der = p.table("Derived", |b| {
        b.col_int("t")
            .col_int("v")
            .orderby(&[strat("Der"), seq("t")])
    });
    p.order(&["Src", "Der"]);
    p.rule("derive", src, move |ctx, t| {
        ctx.put(Tuple::new(
            der,
            vec![Value::Int(t.int(0) + 1), Value::Int(t.int(1) * 2)],
        ));
    });
    p.rule("emit", der, move |ctx, t| {
        ctx.println(format!("{} {}", t.int(0), t.int(1)));
    });
    for i in 0..50 {
        p.put(Tuple::new(src, vec![Value::Int(i), Value::Int(i * i)]));
    }
    (Arc::new(p.build().unwrap()), src, der)
}

fn run_outputs(config: EngineConfig) -> Vec<String> {
    let (prog, _, _) = pipeline_program();
    let mut engine = Engine::new(prog, config);
    let mut out = engine.run().unwrap().output;
    out.sort();
    out
}

#[test]
fn no_delta_preserves_output() {
    let (_, _, der) = pipeline_program();
    let reference = run_outputs(EngineConfig::sequential());
    let got = run_outputs(EngineConfig::sequential().no_delta(der));
    assert_eq!(got, reference);
    let got = run_outputs(EngineConfig::parallel(4).no_delta(der));
    assert_eq!(got, reference);
}

#[test]
fn no_gamma_preserves_output_for_trigger_only_tables() {
    let (_, src, der) = pipeline_program();
    let reference = run_outputs(EngineConfig::sequential());
    // Derived is only ever used as a trigger, Source is never queried:
    // both can skip Gamma without changing the printed output.
    let got = run_outputs(EngineConfig::sequential().no_gamma(src).no_gamma(der));
    assert_eq!(got, reference);
}

#[test]
fn no_gamma_actually_skips_storage() {
    let (prog, src, der) = pipeline_program();
    let mut engine = Engine::new(
        Arc::clone(&prog),
        EngineConfig::sequential().no_gamma(src).no_gamma(der),
    );
    engine.run().unwrap();
    assert_eq!(engine.gamma().total_len(), 0);
}

#[test]
fn store_choice_preserves_output() {
    let (_, src, der) = pipeline_program();
    let reference = run_outputs(EngineConfig::sequential());
    for kind in [
        StoreKind::Ordered,
        StoreKind::ConcurrentOrdered { shards: 4 },
        StoreKind::Hash {
            index_fields: vec!["t".into()],
            shards: 4,
        },
    ] {
        let config = EngineConfig::parallel(4)
            .store(src, kind.clone())
            .store(der, kind.clone());
        assert_eq!(run_outputs(config), reference, "{kind:?}");
    }
}

#[test]
fn flags_change_measured_work_not_results() {
    let (prog, _, der) = pipeline_program();
    let mut with_delta = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
    with_delta.run().unwrap();
    let (prog2, _, _) = pipeline_program();
    let mut without_delta = Engine::new(prog2, EngineConfig::sequential().no_delta(der));
    without_delta.run().unwrap();

    let d1 = with_delta.stats().tables[der.index()].snapshot();
    let d2 = without_delta.stats().tables[der.index()].snapshot();
    assert!(d1.delta_inserts > 0);
    assert_eq!(d2.delta_inserts, 0);
    assert_eq!(d1.gamma_fresh, d2.gamma_fresh);
    assert_eq!(d1.triggers, d2.triggers);
}

#[test]
fn retain_lifetime_hints_shrink_gamma() {
    // §5's step 4: manual lifetime hints discard tuples that can never be
    // queried again.
    let (prog, src, _) = pipeline_program();
    let mut engine = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
    engine.run().unwrap();
    let store = engine.gamma().store(src);
    let before = store.len();
    store.retain(&|t| t.int(0) >= 25);
    assert_eq!(store.len(), before - 25);
}

#[test]
fn record_steps_builds_parallelism_profile() {
    let (prog, _, _) = pipeline_program();
    let mut engine = Engine::new(prog, EngineConfig::parallel(4).record_steps());
    engine.run().unwrap();
    let hist = engine.stats().class_size_histogram();
    assert!(!hist.is_empty());
    assert!(engine.stats().mean_class_size() >= 1.0);
}

#[test]
fn dot_graph_renders_for_real_apps() {
    let csv = Arc::new(jstar::apps::pvwatts::generate_csv(
        100,
        jstar::apps::pvwatts::InputOrder::Chronological,
    ));
    let app = jstar::apps::pvwatts::build_program(csv, 2);
    let dot = app.program.dependency_graph().to_dot(None);
    for needle in ["PvWattsRequest", "PvWatts", "SumMonth", "read-csv", "->"] {
        assert!(dot.contains(needle), "missing {needle} in {dot}");
    }
}
