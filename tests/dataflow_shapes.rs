//! Cross-crate integration: the execution *shapes* the paper draws.
//!
//! Fig. 7 shows PvWatts as a two-phase dataflow (N parallel CSV readers,
//! then M parallel month reducers); §6.4 shows MatrixMult as a single wave
//! of row tasks; §6.5's Dijkstra advances one distance level at a time.
//! These tests assert those shapes from the engine's step log — the same
//! information the paper's visualiser renders.

use jstar::apps::pvwatts::{self, InputOrder, Variant};
use jstar::apps::shortest_path::{self, GraphSpec};
use jstar::core::prelude::*;
use std::sync::Arc;

#[test]
fn pvwatts_runs_in_two_parallel_phases() {
    let csv = Arc::new(pvwatts::generate_csv(8_760, InputOrder::Chronological));
    let app = pvwatts::build_program(Arc::clone(&csv), 4);
    let config = pvwatts::apply_variant(
        &app,
        Variant::CustomStore,
        EngineConfig::parallel(4).record_steps(),
    );
    let mut engine = Engine::new(Arc::clone(&app.program), config);
    engine.run().unwrap();

    let log = engine.stats().step_log.lock().clone();
    // Phase 1: one step with the 4 reader requests (one par class).
    // Phase 2: one step with the 12 SumMonth tuples.
    assert_eq!(log.len(), 2, "{log:?}");
    assert_eq!(log[0].class_size, 4, "N parallel readers");
    assert_eq!(log[1].class_size, 12, "M parallel month reducers");

    // The profile chart shows both phases.
    let chart = engine.stats().render_parallelism_profile(10);
    assert!(chart.lines().count() >= 2, "{chart}");
}

#[test]
fn matmul_is_a_single_wave_of_row_tasks() {
    use jstar::apps::matmul;
    let n = 24;
    let a = Arc::new(matmul::gen_matrix(n, 1));
    let b = Arc::new(matmul::gen_matrix(n, 2));
    let app = matmul::build_program(n, a, b);
    let config = EngineConfig::parallel(4)
        .store(app.matrix, matmul::MatrixStore::factory(n))
        .record_steps();
    let mut engine = Engine::new(Arc::clone(&app.program), config);
    engine.run().unwrap();
    let log = engine.stats().step_log.lock().clone();
    // Step 1: the MultRequest; step 2: all n rows at once.
    assert_eq!(log.len(), 2, "{log:?}");
    assert_eq!(log[1].class_size, n);
}

#[test]
fn dijkstra_advances_in_distance_order() {
    let spec = GraphSpec::new(500, 500, 4, 11);
    let app = shortest_path::build_program(spec);
    let config = shortest_path::optimised_config(&app, EngineConfig::parallel(4).record_steps());
    let mut engine = Engine::new(Arc::clone(&app.program), config);
    engine.run().unwrap();
    let log = engine.stats().step_log.lock().clone();
    // After the generation wave, Estimate steps carry keys
    // "(S?, d, S?)" with non-decreasing d.
    let distances: Vec<i64> = log
        .iter()
        .filter_map(|r| {
            let inner = r.key.strip_prefix('(')?.strip_suffix(')')?;
            let mut parts = inner.split(", ");
            let _strat = parts.next()?;
            parts.next()?.parse().ok()
        })
        .collect();
    assert!(
        distances.windows(2).all(|w| w[0] <= w[1]),
        "distance keys must be non-decreasing: {distances:?}"
    );
    assert!(
        distances.len() > 10,
        "many distance levels: {}",
        distances.len()
    );
}

#[test]
fn mean_class_size_separates_scalable_from_serial_programs() {
    // MatrixMult (one wide wave) must report a much larger mean class size
    // than the Ship program (a chain) — the metric the paper's logging
    // system feeds into parallelisation decisions.
    use jstar::apps::{matmul, ship};
    let n = 32;
    let a = Arc::new(matmul::gen_matrix(n, 1));
    let b = Arc::new(matmul::gen_matrix(n, 2));
    let app = matmul::build_program(n, a, b);
    let mut wide = Engine::new(
        Arc::clone(&app.program),
        EngineConfig::sequential()
            .store(app.matrix, matmul::MatrixStore::factory(n))
            .record_steps(),
    );
    wide.run().unwrap();

    let prog = Arc::new(ship::program(20));
    let mut chain = Engine::new(prog, EngineConfig::sequential().record_steps());
    chain.run().unwrap();

    assert!(
        wide.stats().mean_class_size() > 10.0 * chain.stats().mean_class_size(),
        "wide {} vs chain {}",
        wide.stats().mean_class_size(),
        chain.stats().mean_class_size()
    );
}
