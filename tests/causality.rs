//! Cross-crate integration: the Law of Causality (§4) — static proof
//! obligations via the Fourier–Motzkin engine, runtime enforcement, and
//! the Fig. 4 stratification-error scenario.

use jstar::core::prelude::*;
use std::sync::Arc;

/// Builds the Fig. 4 skeleton with or without the `order` declaration.
fn pvwatts_skeleton(with_order: bool) -> Program {
    let mut p = ProgramBuilder::new();
    let pv = p.table("PvWatts", |b| {
        b.col_int("year")
            .col_int("month")
            .col_int("power")
            .orderby(&[strat("PvWatts")])
    });
    let sm = p.table("SumMonth", |b| {
        b.col_int("year")
            .col_int("month")
            .orderby(&[strat("SumMonth")])
    });
    if with_order {
        p.order(&["Req", "PvWatts", "SumMonth"]);
    }
    // foreach (PvWatts pv) put SumMonth(...)
    let model = CausalityModel {
        ctx: ModelCtx::new(),
        invariants: vec![],
        puts: vec![PutModel {
            out_table: "SumMonth".into(),
            guard: vec![],
            bindings: vec![],
            label: "request summary".into(),
        }],
        queries: vec![],
    };
    p.rule_with_model("request-month", pv, model, move |ctx, t| {
        ctx.put(Tuple::new(
            ctx.table("SumMonth"),
            vec![t.get(0).clone(), t.get(1).clone()],
        ));
    });
    // foreach (SumMonth s) aggregate PvWatts(...)
    let model = CausalityModel {
        ctx: ModelCtx::new(),
        invariants: vec![],
        puts: vec![],
        queries: vec![QueryModel {
            q_table: "PvWatts".into(),
            guard: vec![],
            bindings: vec![],
            label: "aggregate month".into(),
        }],
    };
    p.rule_with_model("summarise", sm, model, move |ctx, s| {
        let stats = ctx.reduce(
            &Query::on(ctx.table("PvWatts"))
                .eq(0, s.int(0))
                .eq(1, s.int(1)),
            &Statistics { field: 2 },
        );
        ctx.println(format!("{}/{}: {}", s.int(0), s.int(1), stats.mean()));
    });
    p.build().unwrap()
}

#[test]
fn fig4_stratification_error_without_order_declaration() {
    // "if this order declaration was omitted then the SMT solvers would
    // not be able to prove that that rule was stratified, so a
    // Stratification error would be displayed."
    let bad = pvwatts_skeleton(false);
    let failures: Vec<_> = bad
        .check_causality()
        .into_iter()
        .filter(|r| !r.proved)
        .collect();
    assert!(!failures.is_empty());
    assert!(
        failures.iter().any(|r| r.message.contains("order")),
        "{failures:?}"
    );

    let good = pvwatts_skeleton(true);
    assert!(good.validate_strict().is_ok());
}

#[test]
fn runtime_catches_put_into_the_past() {
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| b.col_int("time").orderby(&[seq("time")]));
    p.rule("rewind", t, move |ctx, tr| {
        if tr.int(0) > 0 {
            ctx.put(Tuple::new(t, vec![Value::Int(tr.int(0) - 1)]));
        }
    });
    p.put(Tuple::new(t, vec![Value::Int(5)]));
    let prog = Arc::new(p.build().unwrap());
    let err = Engine::new(prog, EngineConfig::sequential())
        .run()
        .unwrap_err();
    match err {
        JStarError::CausalityViolation { rule, .. } => assert_eq!(rule, "rewind"),
        other => panic!("expected causality violation, got {other}"),
    }
}

#[test]
fn runtime_allows_put_into_the_present() {
    // A put at the same timestamp (different table, later stratum) is
    // legal: positive queries may see timestamps <= T.
    let mut p = ProgramBuilder::new();
    let a = p.table("A", |b| b.col_int("t").orderby(&[seq("t"), strat("A")]));
    let bt = p.table("B", |b| b.col_int("t").orderby(&[seq("t"), strat("B")]));
    p.order(&["A", "B"]);
    p.rule("mirror", a, move |ctx, tr| {
        ctx.put(Tuple::new(bt, vec![Value::Int(tr.int(0))]));
    });
    p.put(Tuple::new(a, vec![Value::Int(3)]));
    let prog = Arc::new(p.build().unwrap());
    let mut engine = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
    engine.run().unwrap();
    assert_eq!(engine.gamma().collect(&Query::on(bt)).len(), 1);
}

#[test]
fn solver_handles_guarded_obligations() {
    // A rule that would violate causality, except its guard makes the
    // offending branch unreachable: trig.t < 10 ∧ out.t == trig.t + 1 is
    // provable; out.t == trig.t - 1 under guard trig.t < 0 ∧ trig.t >= 0
    // (contradictory guard) is vacuously provable.
    let mut cx = ModelCtx::new();
    let guard = vec![cx.trig("t").lt(&cx.k(0)), cx.trig("t").ge(&cx.k(0))];
    let bindings = cx.out("t").eq_(&(cx.trig("t") - 1));
    let mut p = ProgramBuilder::new();
    let t = p.table("T", |b| b.col_int("t").orderby(&[seq("t")]));
    let model = CausalityModel {
        ctx: cx,
        invariants: vec![],
        puts: vec![PutModel {
            out_table: "T".into(),
            guard,
            bindings,
            label: "dead branch".into(),
        }],
        queries: vec![],
    };
    p.rule_with_model("dead", t, model, |_, _| {});
    let prog = p.build().unwrap();
    assert!(
        prog.validate_strict().is_ok(),
        "contradictory guards make the obligation vacuous"
    );
}

#[test]
fn cyclic_order_declarations_rejected_at_build() {
    let mut p = ProgramBuilder::new();
    let _ = p.table("T", |b| b.col_int("x").orderby(&[strat("P")]));
    p.order(&["P", "Q"]);
    p.order(&["Q", "P"]);
    match p.build() {
        Err(JStarError::Stratification(msg)) => assert!(msg.contains("cycle")),
        other => panic!("expected stratification error, got {other:?}"),
    }
}

#[test]
fn all_shipped_programs_validate_strictly() {
    use jstar::apps::*;
    ship::program(7).validate_strict().unwrap();
    let csv = Arc::new(pvwatts::generate_csv(
        100,
        pvwatts::InputOrder::Chronological,
    ));
    pvwatts::build_program(csv, 2)
        .program
        .validate_strict()
        .unwrap();
    let a = Arc::new(matmul::gen_matrix(4, 1));
    let b = Arc::new(matmul::gen_matrix(4, 2));
    matmul::build_program(4, a, b)
        .program
        .validate_strict()
        .unwrap();
    shortest_path::build_program(shortest_path::GraphSpec::new(50, 50, 2, 1))
        .program
        .validate_strict()
        .unwrap();
    median::build_program(100, 4)
        .program
        .validate_strict()
        .unwrap();
}
