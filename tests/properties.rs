//! Workspace-level property-based tests: randomised end-to-end invariants
//! spanning the runtime and the case-study programs.

use jstar::apps::{matmul, median, shortest_path};
use jstar::core::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// JStar median == sort median for arbitrary data/region/thread
    /// combinations (§6.6's program is correct, not just fast).
    #[test]
    fn median_matches_sort(
        data in prop::collection::vec(-1e6f64..1e6, 1..400),
        regions in 1usize..9,
        parallel in any::<bool>(),
    ) {
        let data = Arc::new(data);
        let want = median::median_by_sort(&data);
        let config = if parallel { EngineConfig::parallel(4) } else { EngineConfig::sequential() };
        let got = median::run_jstar(Arc::clone(&data), regions, config).unwrap();
        prop_assert_eq!(got, want);
    }

    /// JStar Dijkstra == heap Dijkstra on random graph shapes.
    #[test]
    fn dijkstra_matches_heap(
        n in 2u32..120,
        extra in 0u32..200,
        tasks in 1u32..6,
        seed in any::<u64>(),
    ) {
        let spec = shortest_path::GraphSpec::new(n, extra, tasks, seed);
        let want = shortest_path::dijkstra_baseline(&shortest_path::adjacency(&spec), 0);
        let got = shortest_path::run_jstar(spec, EngineConfig::parallel(3)).unwrap();
        prop_assert_eq!(got, want);
    }

    /// JStar matmul == naive multiply for arbitrary small matrices.
    #[test]
    fn matmul_matches_naive(
        n in 1usize..12,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let a = Arc::new(matmul::gen_matrix(n, seed_a));
        let b = Arc::new(matmul::gen_matrix(n, seed_b));
        let want = matmul::multiply_naive(&a, &b, n);
        let got = matmul::run_jstar(n, a, b, EngineConfig::parallel(2)).unwrap();
        prop_assert_eq!(got, want);
    }

    /// A random single-table counter program produces exactly the set
    /// {start..=limit} regardless of strategy — pseudo-naive evaluation
    /// reaches a unique fixpoint.
    #[test]
    fn counter_program_fixpoint(
        start in 0i64..20,
        limit in 20i64..60,
        threads in 1usize..5,
    ) {
        let mut p = ProgramBuilder::new();
        let t = p.table("T", |b| b.col_int("t").orderby(&[seq("t")]));
        p.rule("inc", t, move |ctx, tr| {
            if tr.int(0) < limit {
                ctx.put(Tuple::new(t, vec![Value::Int(tr.int(0) + 1)]));
            }
        });
        p.put(Tuple::new(t, vec![Value::Int(start)]));
        let prog = Arc::new(p.build().unwrap());
        let mut engine = Engine::new(Arc::clone(&prog), EngineConfig::parallel(threads));
        engine.run().unwrap();
        let mut got: Vec<i64> = engine
            .gamma()
            .collect(&Query::on(t))
            .iter()
            .map(|x| x.int(0))
            .collect();
        got.sort();
        let want: Vec<i64> = (start..=limit).collect();
        prop_assert_eq!(got, want);
    }

    /// Static checking is sound w.r.t. runtime enforcement: for a rule
    /// that advances its timestamp by a constant `c`, the checker proves
    /// the obligation iff `c >= 0`, and the runtime errors iff `c < 0`
    /// (provided the rule actually fires).
    #[test]
    fn static_and_runtime_causality_agree(c in -5i64..=5, start in 0i64..10) {
        let mut p = ProgramBuilder::new();
        let t = p.table("T", |b| b.col_int("t").orderby(&[seq("t")]));
        let mut cx = ModelCtx::new();
        let bindings = cx.out("t").eq_(&(cx.trig("t") + c));
        let model = CausalityModel {
            ctx: cx,
            invariants: vec![],
            puts: vec![PutModel {
                out_table: "T".into(),
                guard: vec![],
                bindings,
                label: "advance".into(),
            }],
            queries: vec![],
        };
        let limit = start + 20;
        p.rule_with_model("advance", t, model, move |ctx, tr| {
            if tr.int(0) < limit && tr.int(0) > start - 20 {
                ctx.put(Tuple::new(t, vec![Value::Int(tr.int(0) + c)]));
            }
        });
        p.put(Tuple::new(t, vec![Value::Int(start)]));
        let prog = Arc::new(p.build().unwrap());

        let proved = prog.validate_strict().is_ok();
        prop_assert_eq!(proved, c >= 0, "checker verdict for c = {}", c);

        let mut engine = Engine::new(prog, EngineConfig::sequential().max_steps(100));
        let result = engine.run();
        if c > 0 {
            prop_assert!(result.is_ok());
        } else if c < 0 {
            let err = result.unwrap_err();
            prop_assert!(
                matches!(err, JStarError::CausalityViolation { .. }),
                "{err}"
            );
        } else {
            // c == 0: the rule re-puts the identical tuple, which dedups —
            // legal (present-time put) and terminating.
            prop_assert!(result.is_ok());
        }
    }

    /// Fan-out/fan-in with duplicates: N sources over K buckets trigger
    /// each bucket's rule exactly once (set semantics), for any N, K.
    #[test]
    fn set_semantics_dedup(
        n in 1i64..200,
        k in 1i64..20,
        threads in 1usize..5,
    ) {
        let mut p = ProgramBuilder::new();
        let src = p.table("Src", |b| b.col_int("i").orderby(&[strat("A"), seq("i")]));
        let bucket = p.table("Bucket", |b| b.col_int("b").orderby(&[strat("B")]));
        p.order(&["A", "B"]);
        p.rule("bucketise", src, move |ctx, t| {
            ctx.put(Tuple::new(bucket, vec![Value::Int(t.int(0) % k)]));
        });
        p.rule("count", bucket, move |ctx, t| {
            ctx.println(format!("bucket {}", t.int(0)));
        });
        for i in 0..n {
            p.put(Tuple::new(src, vec![Value::Int(i)]));
        }
        let prog = Arc::new(p.build().unwrap());
        let mut engine = Engine::new(prog, EngineConfig::parallel(threads));
        let report = engine.run().unwrap();
        prop_assert_eq!(report.output.len() as i64, n.min(k));
    }
}
