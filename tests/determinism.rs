//! Cross-crate integration: JStar's deterministic-parallelism guarantee
//! (§1.3 — "the output of the program is independent of the parallelism
//! strategy that is used"), checked across every case-study program and
//! every optimisation variant.

use jstar::apps::pvwatts::{self, InputOrder, Variant};
use jstar::apps::{matmul, median, ship, shortest_path};
use jstar::core::prelude::*;
use std::sync::Arc;

#[test]
fn ship_is_strategy_independent() {
    let seq = ship::run(7, EngineConfig::sequential()).unwrap();
    for threads in [1, 2, 4, 8] {
        let par = ship::run(7, EngineConfig::parallel(threads)).unwrap();
        assert_eq!(seq, par, "{threads} threads");
    }
}

#[test]
fn pvwatts_output_is_strategy_and_variant_independent() {
    let recs = pvwatts::generate_records(8_760, InputOrder::Chronological);
    let csv = Arc::new(pvwatts::render_csv(&recs));
    let reference = pvwatts::run_jstar(
        Arc::clone(&csv),
        1,
        Variant::Naive,
        EngineConfig::sequential(),
    )
    .unwrap()
    .0;
    assert_eq!(reference.len(), 12);
    for variant in Variant::all() {
        for threads in [1usize, 4] {
            let config = if threads == 1 {
                EngineConfig::sequential()
            } else {
                EngineConfig::parallel(threads)
            };
            let got = pvwatts::run_jstar(Arc::clone(&csv), 3, variant, config)
                .unwrap()
                .0;
            assert_eq!(
                got,
                reference,
                "variant={} threads={threads}",
                variant.name()
            );
        }
    }
}

#[test]
fn matmul_is_strategy_independent() {
    let n = 48;
    let a = Arc::new(matmul::gen_matrix(n, 5));
    let b = Arc::new(matmul::gen_matrix(n, 6));
    let reference = matmul::multiply_naive(&a, &b, n);
    for threads in [1usize, 2, 8] {
        let got = matmul::run_jstar(
            n,
            Arc::clone(&a),
            Arc::clone(&b),
            EngineConfig::parallel(threads),
        )
        .unwrap();
        assert_eq!(got, reference, "{threads} threads");
    }
}

#[test]
fn dijkstra_is_strategy_independent() {
    let spec = shortest_path::GraphSpec::new(2_000, 2_000, 8, 99);
    let reference = shortest_path::dijkstra_baseline(&shortest_path::adjacency(&spec), 0);
    for threads in [1usize, 2, 4, 8] {
        let got = shortest_path::run_jstar(spec, EngineConfig::parallel(threads)).unwrap();
        assert_eq!(got, reference, "{threads} threads");
    }
    let seq = shortest_path::run_jstar(spec, EngineConfig::sequential()).unwrap();
    assert_eq!(seq, reference);
}

#[test]
fn median_is_strategy_independent() {
    let data = Arc::new(median::gen_data(50_000, 31));
    let reference = median::median_by_sort(&data);
    for (threads, regions) in [(1usize, 1usize), (2, 8), (8, 32)] {
        let got =
            median::run_jstar(Arc::clone(&data), regions, EngineConfig::parallel(threads)).unwrap();
        assert_eq!(got, reference, "threads={threads} regions={regions}");
    }
}

#[test]
fn repeated_parallel_runs_agree_with_themselves() {
    // Flush out races: same program, same config, many runs.
    let spec = shortest_path::GraphSpec::new(800, 800, 6, 3);
    let first = shortest_path::run_jstar(spec, EngineConfig::parallel(8)).unwrap();
    for _ in 0..5 {
        let again = shortest_path::run_jstar(spec, EngineConfig::parallel(8)).unwrap();
        assert_eq!(first, again);
    }
}
