//! Minimal in-repo stand-in for the `parking_lot` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of `parking_lot` it actually uses:
//! [`Mutex`], [`RwLock`] and [`Condvar`] with non-poisoning guards and the
//! `&mut guard` condition-variable API. Everything delegates to
//! `std::sync`; poisoned locks are recovered (parking_lot has no poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutual-exclusion lock whose guards never poison.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so [`Condvar`]
/// can temporarily take ownership for `std`'s consume-and-return wait API.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose guards never poison.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        thread::sleep(Duration::from_millis(10));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
