//! Minimal in-repo stand-in for the `criterion` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the benchmarking surface its benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are simplified: each benchmark warms up once, then runs
//! `sample_size` timed iterations (default 10, `JSTAR_BENCH_SAMPLES`
//! overrides) and reports min / median / mean wall time. That is enough
//! to compare engine builds on the same machine, which is how the
//! repository uses these benches.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-value hint that keeps the optimiser from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let _ = black_box(f()); // warm-up, untimed
        self.results = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                let _ = black_box(f());
                t0.elapsed()
            })
            .collect();
    }
}

fn default_samples() -> usize {
    std::env::var("JSTAR_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

fn report(name: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("{name}: no samples");
        return;
    }
    let mut sorted = results.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name}: min {:.6}s  median {:.6}s  mean {:.6}s  ({} samples)",
        min.as_secs_f64(),
        median.as_secs_f64(),
        mean.as_secs_f64(),
        sorted.len()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.results);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.results);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            samples: default_samples(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: default_samples(),
            results: Vec::new(),
        };
        f(&mut b);
        report(name, &b.results);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a shim
            // has no CLI, so flags are accepted and ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_samples() {
        let mut b = Bencher {
            samples: 3,
            results: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 4, "warm-up + 3 samples");
        assert_eq!(b.results.len(), 3);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
