//! Minimal in-repo stand-in for the `crossbeam` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the three pieces it uses: `queue::SegQueue`,
//! `deque::{Worker, Stealer, Injector, Steal}` and `utils::CachePadded`.
//! The implementations are mutex-based rather than lock-free — correct
//! under the same API, with coarser contention behaviour. The engine's
//! hot path no longer depends on them (it uses per-worker sharded staging
//! buffers), so the simplification does not gate throughput.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue (mutex-backed shim of crossbeam's
    /// lock-free segment queue).
    #[derive(Debug)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }
    }

    impl<T> SegQueue<T> {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    /// Owner side of a work-stealing deque: LIFO for the owner, FIFO for
    /// thieves. Mutex-backed shim; the owner may be moved across threads.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        /// Owner pop: LIFO end.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_back()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        pub fn is_empty(&self) -> bool {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }
    }

    /// Thief side of a [`Worker`] deque.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steal one job from the FIFO end.
        pub fn steal(&self) -> Steal<T> {
            match self
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// Global FIFO injector queue shared by all workers.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        pub fn steal(&self) -> Steal<T> {
            match self
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Steal a batch into `dest`'s deque and pop one job for immediate
        /// execution.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let first = match q.pop_front() {
                Some(v) => v,
                None => return Steal::Empty,
            };
            // Move up to half of the remaining jobs over to the destination.
            let extra = (q.len() / 2).min(16);
            if extra > 0 {
                let mut dq = dest.inner.lock().unwrap_or_else(|e| e.into_inner());
                for _ in 0..extra {
                    if let Some(v) = q.pop_front() {
                        // Appended at the owner's LIFO end, so the owner
                        // pops the stolen batch newest-first. Job order is
                        // unspecified for the pool, so this is fine.
                        dq.push_back(v);
                    }
                }
            }
            Steal::Success(first)
        }

        pub fn is_empty(&self) -> bool {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }
    }
}

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes to avoid false sharing.
    #[derive(Debug, Default, Clone, Copy)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use super::queue::SegQueue;
    use super::utils::CachePadded;

    #[test]
    fn segqueue_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn worker_lifo_stealer_fifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        let s = w.stealer();
        assert_eq!(w.pop(), Some(3), "owner pops LIFO");
        assert_eq!(s.steal(), Steal::Success(1), "thief steals FIFO");
        assert_eq!(w.pop(), Some(2));
    }

    #[test]
    fn injector_batch_steal() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        let mut drained = Vec::new();
        while let Some(v) = w.pop() {
            drained.push(v);
        }
        for v in drained {
            assert!((1..10).contains(&v));
        }
    }

    #[test]
    fn cache_padded_alignment() {
        let v = CachePadded::new(7u8);
        assert_eq!(*v, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
    }
}
