//! Value-generation strategies (shrinking-free shim of proptest's).

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of random values. Object-safe core (`generate`) plus
/// sized combinators.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Boxed object-safe strategy used by [`crate::prop_oneof!`].
pub type BoxedStrategy<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Boxes any strategy into a generation closure.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(move |rng| s.generate(rng))
}

/// Uniform union over boxed strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.usize_below(self.arms.len());
        (self.arms[idx])(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.abs_diff(start) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// `"[chars]{lo,hi}"` string patterns (the only regex shapes used by the
/// workspace's tests). Unsupported patterns fall back to short lowercase
/// strings.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) =
            parse_simple_pattern(self).unwrap_or_else(|| (('a'..='z').collect(), 0, 8));
        let len = lo + rng.usize_below(hi - lo + 1);
        (0..len)
            .map(|_| chars[rng.usize_below(chars.len())])
            .collect()
    }
}

/// Parses `[a-z]{lo,hi}` / `[abc]{n}` patterns; `None` for anything else.
fn parse_simple_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (a, b) = (cs[i], cs[i + 2]);
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

/// `any::<T>()` — full-domain strategy for primitives.
pub struct Any<T>(PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! any_int {
    ($($ty:ty),*) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Mix of "nice" decimals and raw bit patterns (NaN/inf included),
        // mirroring proptest's habit of probing edge encodings.
        match rng.next_u64() % 4 {
            0 => f64::from_bits(rng.next_u64()),
            1 => (rng.next_u64() as i64 % 1_000_000) as f64 / 1000.0,
            2 => rng.next_u64() as f64,
            _ => -((rng.next_u64() >> 12) as f64),
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// `prop::collection::vec(element, len_range)`.
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

/// Length bounds accepted by [`collection_vec`].
pub trait IntoLenRange {
    fn bounds(self) -> (usize, usize);
}

impl IntoLenRange for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec length range");
        (self.start, self.end - 1)
    }
}

impl IntoLenRange for RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl IntoLenRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

pub fn collection_vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
    let (lo, hi) = len.bounds();
    VecStrategy { element, lo, hi }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.lo + rng.usize_below(self.hi - self.lo + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Constant strategy (proptest's `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parser_handles_class_ranges() {
        let (chars, lo, hi) = parse_simple_pattern("[a-c]{1,3}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (1, 3));
        let (chars, lo, hi) = parse_simple_pattern("[xy]{2}").unwrap();
        assert_eq!(chars, vec!['x', 'y']);
        assert_eq!((lo, hi), (2, 2));
        assert!(parse_simple_pattern("plain").is_none());
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = TestRng::new(1);
        let s = collection_vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    #[test]
    fn just_is_constant() {
        let mut rng = TestRng::new(1);
        assert_eq!(Just(7).generate(&mut rng), 7);
    }
}
