//! Minimal in-repo stand-in for the `proptest` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the subset of proptest it uses: the [`proptest!`]
//! macro, `prop_assert*` macros, [`strategy::Strategy`] with `prop_map`,
//! `any::<T>()`, numeric-range strategies, tuple strategies,
//! `prop::collection::vec`, [`prop_oneof!`], and simple `"[a-z]{lo,hi}"`
//! string patterns.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! generated from a deterministic per-test seed (reproducible across
//! runs), and failing inputs are *not* shrunk — the failing values are
//! printed as-is. Both are acceptable for CI-style property checks.

pub mod strategy;

use std::fmt;

/// Error produced by `prop_assert*` macros inside a test case.
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn usize_below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// FNV-1a over a test's name, mixed with the case index, so every test
/// walks its own reproducible input sequence.
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Glob-import module mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };

    /// Mirrors proptest's `prelude::prop` re-export.
    pub mod prop {
        pub mod collection {
            pub use crate::strategy::collection_vec as vec;
        }
    }
}

/// Top-level `prop::` path (some call sites use `proptest::prop::...`).
pub use prelude::prop;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?}): {} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Union-of-strategies macro: picks one arm uniformly per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// The main harness macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new($crate::seed_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                ));
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $arg;)+
                    $body
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        concat!($(stringify!($arg), " "),+)
                    );
                }
            }
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments and plain attributes both pass through.
        #[test]
        fn ranges_in_bounds(a in 0i64..10, b in 1usize..=4, f in -1.0f64..1.0) {
            prop_assert!((0..10).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0u32..5, any::<bool>()), 0..20),
        ) {
            prop_assert!(v.len() < 20);
            for (x, _) in &v {
                prop_assert!(*x < 5);
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![0i64..3, (10i64..13).prop_map(|v| v * 2)]) {
            prop_assert!((0..3).contains(&x) || [20, 22, 24].contains(&x));
        }

        #[test]
        fn string_pattern(s in "[a-z]{0,6}") {
            prop_assert!(s.len() <= 6);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(crate::seed_for("t", 3), crate::seed_for("t", 3));
        assert_ne!(crate::seed_for("t", 3), crate::seed_for("t", 4));
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("b", 0));
    }
}
