//! Minimal in-repo stand-in for the `rand` crate (0.8-style API).
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the slice it uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer and
//! float ranges. The generator is xoshiro256++ seeded via splitmix64 —
//! deterministic for a given seed, which is all the workloads need
//! (the paper's inputs are synthetic and reproducibility matters more
//! than cryptographic quality).

/// Seedable random generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// High-level generation methods (subset of rand's `Rng`).
pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = self.end.abs_diff(self.start) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = end.abs_diff(start) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (shim for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-100i64..=100);
            assert!((-100..=100).contains(&v));
            let u = rng.gen_range(0u32..13);
            assert!(u < 13);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let neg = rng.gen_range(-50i32..-10);
            assert!((-50..-10).contains(&neg));
        }
    }

    #[test]
    fn distribution_covers_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
