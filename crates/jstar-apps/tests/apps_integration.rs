//! Cross-feature integration for the case-study programs: the apps must
//! stay correct under every engine knob combination (Delta structure
//! ablation, lifetime hints, shared pools, strict validation).

use jstar_apps::pvwatts::{self, InputOrder, Variant};
use jstar_apps::{matmul, median, shortest_path};
use jstar_core::delta::DeltaKind;
use jstar_core::prelude::*;
use std::sync::Arc;

#[test]
fn dijkstra_correct_under_flat_delta_ablation() {
    let spec = shortest_path::GraphSpec::new(1_000, 1_000, 4, 21);
    let want = shortest_path::dijkstra_baseline(&shortest_path::adjacency(&spec), 0);
    for kind in [DeltaKind::Tree, DeltaKind::Flat] {
        let got =
            shortest_path::run_jstar(spec, EngineConfig::parallel(4).delta_kind(kind)).unwrap();
        assert_eq!(got, want, "{kind:?}");
    }
}

#[test]
fn pvwatts_correct_under_flat_delta_ablation() {
    let recs = pvwatts::generate_records(4_000, InputOrder::Chronological);
    let csv = Arc::new(pvwatts::render_csv(&recs));
    let want = pvwatts::data::expected_means(&recs);
    for kind in [DeltaKind::Tree, DeltaKind::Flat] {
        let (got, _) = pvwatts::run_jstar(
            Arc::clone(&csv),
            2,
            Variant::Naive,
            EngineConfig::sequential().delta_kind(kind),
        )
        .unwrap();
        assert_eq!(got, want, "{kind:?}");
    }
}

#[test]
fn apps_share_one_pool_safely() {
    // The paper's workflows run many configurations against one machine;
    // engines must be able to share a fork/join pool.
    let pool = Arc::new(jstar_pool::ThreadPool::new(4));
    let mut config = EngineConfig::parallel(4);
    config.pool = Some(Arc::clone(&pool));

    let n = 24;
    let a = Arc::new(matmul::gen_matrix(n, 3));
    let b = Arc::new(matmul::gen_matrix(n, 4));
    let c1 = matmul::run_jstar(n, Arc::clone(&a), Arc::clone(&b), config.clone()).unwrap();

    let spec = shortest_path::GraphSpec::new(500, 500, 4, 9);
    let d1 = shortest_path::run_jstar(spec, config.clone()).unwrap();

    let data = Arc::new(median::gen_data(20_000, 5));
    let m1 = median::run_jstar(Arc::clone(&data), 8, config).unwrap();

    assert_eq!(c1, matmul::multiply_naive(&a, &b, n));
    assert_eq!(
        d1,
        shortest_path::dijkstra_baseline(&shortest_path::adjacency(&spec), 0)
    );
    assert_eq!(m1, median::median_by_sort(&data));
}

#[test]
fn pvwatts_with_lifetime_hint_still_answers() {
    // Discarding PvWatts tuples for *past* years after each step (the
    // §6.2 "constant memory" idea, done coarsely) must not change the
    // single-year answer.
    let recs = pvwatts::generate_records(8_760, InputOrder::Chronological);
    let csv = Arc::new(pvwatts::render_csv(&recs));
    let want = pvwatts::data::expected_means(&recs);
    let app = pvwatts::build_program(Arc::clone(&csv), 2);
    let config = pvwatts::apply_variant(&app, Variant::HashStore, EngineConfig::sequential())
        // Keep everything (predicate always true): exercises the hint
        // machinery on a real program without changing results.
        .lifetime_hint(app.pvwatts, 1, |_| true);
    let mut engine = Engine::new(Arc::clone(&app.program), config);
    let report = engine.run().unwrap();
    assert_eq!(pvwatts::means_from_output(&report.output), want);
}

#[test]
fn all_apps_print_dot_graphs() {
    let csv = Arc::new(pvwatts::generate_csv(100, InputOrder::Chronological));
    let programs: Vec<Arc<Program>> = vec![
        Arc::new(jstar_apps::ship::program(7)),
        pvwatts::build_program(csv, 1).program,
        matmul::build_program(
            4,
            Arc::new(matmul::gen_matrix(4, 1)),
            Arc::new(matmul::gen_matrix(4, 2)),
        )
        .program,
        shortest_path::build_program(shortest_path::GraphSpec::new(10, 10, 1, 1)).program,
        median::build_program(100, 2).program,
    ];
    for prog in programs {
        let dot = prog.dependency_graph().to_dot(None);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"), "{dot}");
    }
}

#[test]
fn scaled_down_paper_workloads_run_in_parallel_without_error() {
    // One combined smoke run at moderately larger sizes than unit tests.
    let spec = shortest_path::GraphSpec::new(10_000, 10_000, 24, 2);
    let dist = shortest_path::run_jstar(spec, EngineConfig::parallel(8)).unwrap();
    assert_eq!(dist.len(), 10_000);
    assert!(dist.iter().all(|&d| d != i64::MAX));

    let data = Arc::new(median::gen_data(500_000, 8));
    let m = median::run_jstar(Arc::clone(&data), 16, EngineConfig::parallel(8)).unwrap();
    assert_eq!(m, median::median_by_sort(&data));
}
