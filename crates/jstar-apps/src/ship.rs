//! The Ship example (§3, Fig. 2) — the paper's tutorial program.
//!
//! A Space-Invaders ship "first goes across the screen to the right in 150
//! pixel jumps, then descends slowly several times, then moves to the left
//! in 150 pixel jumps". Fig. 2 records 8 frames:
//!
//! ```text
//! frame  x    y   dx    dy
//!   0    10   10  150    0
//!   1   160   10  150    0
//!   2   310   10  150    0
//!   3   460   10    0   10
//!   4   460   20    0   10
//!   5   460   30 -150    0
//!   6   310   30 -150    0
//!   7   160   30 -150    0
//! ```
//!
//! Time is modelled as the `frame` timestamp field; the movement rule puts
//! the next frame's Ship from the current one — the canonical
//! "record data that changes over time by adding timestamps" pattern.
//!
//! The table is declared through the typed `jstar_table!` item form, so
//! the one-line declaration of §3 yields both the schema and the [`Ship`]
//! struct the rule body receives.

use jstar_core::jstar_table;
use jstar_core::prelude::*;
use std::sync::Arc;

jstar_table! {
    /// `table Ship(int frame -> int x, int y, int dx, int dy)
    ///  orderby (Int, seq frame)` — §3's declaration, verbatim.
    #[derive(Copy, Eq)]
    pub Ship(int frame -> int x, int y, int dx, int dy)
        orderby (Int, seq frame)
}

/// Backwards-compatible name for one row of the Ship table.
pub type ShipState = Ship;

/// The movement transition of Fig. 2: right in 150 px jumps until x = 460,
/// down in 10 px steps until y = 30, then left in 150 px jumps.
pub fn next_state(s: Ship) -> Ship {
    let (x, y, dx, dy) = (s.x, s.y, s.dx, s.dy);
    // Apply current velocity.
    let (nx, ny) = (x + dx, y + dy);
    // Choose the next velocity.
    let (ndx, ndy) = if dx > 0 && nx >= 460 {
        (0, 10) // reached the right edge: descend
    } else if dy > 0 && ny >= 30 {
        (-150, 0) // descended far enough: head left
    } else {
        (dx, dy)
    };
    Ship {
        frame: s.frame + 1,
        x: nx,
        y: ny,
        dx: ndx,
        dy: ndy,
    }
}

/// Builds the Ship program, stopping after `max_frame` (Fig. 2 uses 7).
pub fn program(max_frame: i64) -> Program {
    let mut p = ProgramBuilder::new();

    // Causality model: out.frame == trig.frame + 1 under guard
    // trig.frame < max_frame.
    let mut cx = ModelCtx::new();
    let guard = vec![cx.trig("frame").lt(&cx.k(max_frame))];
    let bindings = cx.out("frame").eq_(&(cx.trig("frame") + 1));
    let model = CausalityModel {
        ctx: cx,
        invariants: vec![],
        puts: vec![PutModel {
            out_table: "Ship".into(),
            guard,
            bindings,
            label: "advance one frame".into(),
        }],
        queries: vec![],
    };

    p.rule_rel_with_model("move", model, move |ctx, s: Ship| {
        if s.frame < max_frame {
            ctx.put_rel(next_state(s));
        }
    });

    p.put_rel(Ship {
        frame: 0,
        x: 10,
        y: 10,
        dx: 150,
        dy: 0,
    });
    p.build().expect("ship program builds")
}

/// Runs the program and returns the Ship table sorted by frame.
pub fn run(max_frame: i64, config: EngineConfig) -> Result<Vec<Ship>> {
    let prog = Arc::new(program(max_frame));
    let mut engine = Engine::new(Arc::clone(&prog), config);
    engine.run()?;
    let mut rows = engine.collect_rel(Ship::query());
    rows.sort_by_key(|s| s.frame);
    Ok(rows)
}

/// The 8-frame trace of Fig. 2, for tests and the quickstart example.
pub fn figure2_trace() -> Vec<Ship> {
    let rows = [
        (0, 10, 10, 150, 0),
        (1, 160, 10, 150, 0),
        (2, 310, 10, 150, 0),
        (3, 460, 10, 0, 10),
        (4, 460, 20, 0, 10),
        (5, 460, 30, -150, 0),
        (6, 310, 30, -150, 0),
        (7, 160, 30, -150, 0),
    ];
    rows.iter()
        .map(|&(frame, x, y, dx, dy)| Ship {
            frame,
            x,
            y,
            dx,
            dy,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure_2_sequential() {
        let rows = run(7, EngineConfig::sequential()).unwrap();
        assert_eq!(rows, figure2_trace());
    }

    #[test]
    fn reproduces_figure_2_parallel() {
        let rows = run(7, EngineConfig::parallel(4)).unwrap();
        assert_eq!(rows, figure2_trace());
    }

    #[test]
    fn causality_model_is_proved() {
        let prog = program(7);
        assert!(prog.validate_strict().is_ok());
    }

    #[test]
    fn longer_runs_wrap_left() {
        let rows = run(10, EngineConfig::sequential()).unwrap();
        assert_eq!(rows.len(), 11);
        // Frame 8 and 9 continue left.
        assert_eq!(rows[8].x, 10);
        assert_eq!(rows[8].dx, -150);
    }

    #[test]
    fn transition_function_is_deterministic() {
        let mut s = figure2_trace()[0];
        for expected in figure2_trace().iter().skip(1) {
            s = next_state(s);
            assert_eq!(s, *expected);
        }
    }

    #[test]
    fn typed_queries_address_fields_by_name() {
        let prog = Arc::new(program(7));
        let mut engine = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
        engine.run().unwrap();
        // All frames at the right edge: Ship::x is a compile-checked token.
        let at_edge = engine.collect_rel(Ship::query().eq(Ship::x, 460));
        assert_eq!(at_edge.len(), 3);
        let descending = engine.collect_rel(Ship::query().gt(Ship::dy, 0));
        assert!(descending.iter().all(|s| s.dx == 0));
    }
}
