//! Matrix multiplication — §6.4, Fig. 11.
//!
//! "A naive matrix multiplication algorithm that multiplies two N×N
//! matrices together ... The effective parallelism is that each row of the
//! output matrix is a separate task. Each matrix multiplication is
//! requested via a tuple, and that tuple generates one row request tuple
//! for each output row of the matrix. Each row request tuple triggers a
//! rule that loops over all the columns of that row, and uses a nested
//! loop with a summation reducer to calculate the dot product results."
//!
//! The Gamma store for the matrices is the paper's **native-arrays
//! optimisation**: "tables that have integer keys and a single dependent
//! value, such as `table Matrix(int mat, int row, int col -> int value)`
//! can be efficiently implemented using Java arrays if the keys have a
//! limited range and are dense" — here a dense `Vec<AtomicI64>` per
//! matrix, shared safely across row tasks.

use jstar_core::gamma::{InsertOutcome, TableStore};
use jstar_core::jstar_table;
use jstar_core::prelude::*;
use jstar_core::query::Query as CoreQuery;
use std::any::Any;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Matrix identifiers within the `Matrix` table.
pub const MAT_A: i64 = 0;
pub const MAT_B: i64 = 1;
pub const MAT_C: i64 = 2;

jstar_table! {
    /// The multiplication request: carries the dimension.
    #[derive(Copy, Eq)]
    pub MultRequest(int n) orderby (Req)
}

jstar_table! {
    /// One output-row task; all rows form a single `par` class.
    #[derive(Copy, Eq)]
    pub RowRequest(int row) orderby (Row, par row)
}

jstar_table! {
    /// `table Matrix(int mat, int row, int col -> int value)` — the
    /// native-arrays table of §6.4, held in [`MatrixStore`].
    #[derive(Copy, Eq)]
    pub Matrix(int mat, int row, int col -> int value) orderby (Mat)
}

/// Dense native-array store for `table Matrix(int mat, int row, int col ->
/// int value)`.
///
/// Writes from different row tasks target disjoint rows of C, so plain
/// relaxed atomics suffice; reads of A and B happen strictly after the
/// load rule finished (causality: `order Req < Row`).
pub struct MatrixStore {
    def: Arc<TableDef>,
    n: usize,
    mats: [Box<[AtomicI64]>; 3],
}

impl MatrixStore {
    pub fn new(def: Arc<TableDef>, n: usize) -> Self {
        let make = || (0..n * n).map(|_| AtomicI64::new(0)).collect();
        MatrixStore {
            def,
            n,
            mats: [make(), make(), make()],
        }
    }

    /// Store factory capturing the matrix dimension.
    pub fn factory(n: usize) -> StoreKind {
        StoreKind::Custom(Arc::new(move |def| {
            Arc::new(MatrixStore::new(def, n)) as Arc<dyn TableStore>
        }))
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads one cell.
    pub fn get(&self, mat: i64, row: usize, col: usize) -> i64 {
        self.mats[mat as usize][row * self.n + col].load(Ordering::Relaxed)
    }

    /// Writes one cell (the generated array-write of the paper's
    /// native-array code).
    pub fn set(&self, mat: i64, row: usize, col: usize, v: i64) {
        self.mats[mat as usize][row * self.n + col].store(v, Ordering::Relaxed);
    }

    /// Bulk-loads a row-major matrix.
    pub fn load(&self, mat: i64, data: &[i64]) {
        assert_eq!(data.len(), self.n * self.n);
        for (slot, &v) in self.mats[mat as usize].iter().zip(data) {
            slot.store(v, Ordering::Relaxed);
        }
    }

    /// Extracts a matrix row-major (for result checking).
    pub fn extract(&self, mat: i64) -> Vec<i64> {
        self.mats[mat as usize]
            .iter()
            .map(|v| v.load(Ordering::Relaxed))
            .collect()
    }

    fn tuple_of(&self, mat: i64, row: usize, col: usize) -> Tuple {
        Tuple::new(
            self.def.id,
            Matrix {
                mat,
                row: row as i64,
                col: col as i64,
                value: self.get(mat, row, col),
            }
            .into_values(),
        )
    }
}

impl TableStore for MatrixStore {
    fn insert(&self, t: Tuple) -> InsertOutcome {
        let m = Matrix::from_tuple(&t);
        self.set(m.mat, m.row as usize, m.col as usize, m.value);
        InsertOutcome::Fresh
    }

    fn contains(&self, t: &Tuple) -> bool {
        let m = Matrix::from_tuple(t);
        self.get(m.mat, m.row as usize, m.col as usize) == m.value
    }

    fn len(&self) -> usize {
        3 * self.n * self.n
    }

    fn for_each(&self, f: &mut dyn FnMut(&Tuple) -> bool) {
        for mat in 0..3 {
            for row in 0..self.n {
                for col in 0..self.n {
                    if !f(&self.tuple_of(mat, row, col)) {
                        return;
                    }
                }
            }
        }
    }

    fn query(&self, q: &CoreQuery, f: &mut dyn FnMut(&Tuple) -> bool) {
        // Dense keys: point and row queries resolve by direct indexing.
        match (
            q.eq_value(Matrix::mat.index()),
            q.eq_value(Matrix::row.index()),
            q.eq_value(Matrix::col.index()),
        ) {
            (Some(mat), Some(row), Some(col)) => {
                let t = self.tuple_of(mat.as_int(), row.as_int() as usize, col.as_int() as usize);
                if q.matches(&t) {
                    f(&t);
                }
            }
            (Some(mat), Some(row), None) => {
                let (mat, row) = (mat.as_int(), row.as_int() as usize);
                for col in 0..self.n {
                    let t = self.tuple_of(mat, row, col);
                    if q.matches(&t) && !f(&t) {
                        return;
                    }
                }
            }
            _ => self.for_each(&mut |t| if q.matches(t) { f(t) } else { true }),
        }
    }

    fn retain(&self, _keep: &dyn Fn(&Tuple) -> bool) {
        // Dense arrays have fixed extent; lifetime hints do not apply.
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The built program plus handles.
pub struct MatMulApp {
    pub program: Arc<Program>,
    pub request: TableId,
    pub row_req: TableId,
    pub matrix: TableId,
}

/// Builds the JStar program multiplying `a × b` (row-major, `n×n`).
pub fn build_program(n: usize, a: Arc<Vec<i64>>, b: Arc<Vec<i64>>) -> MatMulApp {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut p = ProgramBuilder::new();

    let request = p.relation::<MultRequest>().id();
    let row_req = p.relation::<RowRequest>().id();
    let matrix = p.relation::<Matrix>().id();
    p.order(&["Req", "Row", "Mat"]);

    // Rule 1: the request loads A and B into the native-array Gamma store
    // and emits one RowRequest per output row.
    let load_model = CausalityModel {
        ctx: ModelCtx::new(),
        invariants: vec![],
        puts: vec![PutModel {
            out_table: "RowRequest".into(),
            guard: vec![],
            bindings: vec![],
            label: "one request per output row".into(),
        }],
        queries: vec![],
    };
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    p.rule_rel_with_model(
        "load-and-fan-out",
        load_model,
        move |ctx, req: MultRequest| {
            let n = req.n as usize;
            let store = ctx.store(ctx.rel::<Matrix>().id());
            let mstore = store
                .as_any()
                .downcast_ref::<MatrixStore>()
                .expect("Matrix table uses MatrixStore");
            mstore.load(MAT_A, &a2);
            mstore.load(MAT_B, &b2);
            for row in 0..n {
                ctx.put_rel(RowRequest { row: row as i64 });
            }
        },
    );

    // Rule 2: each row request computes one output row — "loops over all
    // the columns of that row, and uses a nested loop with a summation
    // reducer".
    let row_model = CausalityModel {
        ctx: ModelCtx::new(),
        invariants: vec![],
        puts: vec![PutModel {
            out_table: "Matrix".into(),
            guard: vec![],
            bindings: vec![],
            label: "write C row".into(),
        }],
        queries: vec![],
    };
    p.rule_rel_with_model("compute-row", row_model, move |ctx, t: RowRequest| {
        let row = t.row as usize;
        let store = ctx.store(ctx.rel::<Matrix>().id());
        let m = store
            .as_any()
            .downcast_ref::<MatrixStore>()
            .expect("Matrix table uses MatrixStore");
        let n = m.dim();
        for col in 0..n {
            // The summation reducer over the dot product.
            let mut sum = 0i64;
            for k in 0..n {
                sum += m.get(MAT_A, row, k) * m.get(MAT_B, k, col);
            }
            m.set(MAT_C, row, col, sum);
        }
    });

    p.put_rel(MultRequest { n: n as i64 });

    MatMulApp {
        program: Arc::new(p.build().expect("matmul program builds")),
        request,
        row_req,
        matrix,
    }
}

/// Runs the JStar multiplication and returns C row-major.
pub fn run_jstar(
    n: usize,
    a: Arc<Vec<i64>>,
    b: Arc<Vec<i64>>,
    config: EngineConfig,
) -> Result<Vec<i64>> {
    run_jstar_report(n, a, b, config).map(|(c, _)| c)
}

/// Like [`run_jstar`], but also returns the engine's [`RunReport`] so
/// the benches can read pipeline and scheduling counters.
pub fn run_jstar_report(
    n: usize,
    a: Arc<Vec<i64>>,
    b: Arc<Vec<i64>>,
    mut config: EngineConfig,
) -> Result<(Vec<i64>, RunReport)> {
    let app = build_program(n, a, b);
    config = config.store(app.matrix, MatrixStore::factory(n));
    let mut engine = Engine::new(Arc::clone(&app.program), config);
    let report = engine.run()?;
    let store = engine.gamma().store(app.matrix);
    let m = store
        .as_any()
        .downcast_ref::<MatrixStore>()
        .expect("matrix store");
    Ok((m.extract(MAT_C), report))
}

/// Naive ijk multiply — the paper's 7.5 s Java baseline.
pub fn multiply_naive(a: &[i64], b: &[i64], n: usize) -> Vec<i64> {
    let mut c = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0;
            for k in 0..n {
                sum += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = sum;
        }
    }
    c
}

/// Cache-friendly multiply with B transposed first — the paper's "obvious
/// improvement ... its time drops to 1.0 seconds".
pub fn multiply_transposed(a: &[i64], b: &[i64], n: usize) -> Vec<i64> {
    let mut bt = vec![0i64; n * n];
    for k in 0..n {
        for j in 0..n {
            bt[j * n + k] = b[k * n + j];
        }
    }
    let mut c = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0;
            let (ra, rb) = (&a[i * n..(i + 1) * n], &bt[j * n..(j + 1) * n]);
            for k in 0..n {
                sum += ra[k] * rb[k];
            }
            c[i * n + j] = sum;
        }
    }
    c
}

/// Deterministic test matrix.
pub fn gen_matrix(n: usize, seed: u64) -> Vec<i64> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * n).map(|_| rng.gen_range(-100..=100)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_passes_strict_validation() {
        let a = Arc::new(gen_matrix(4, 1));
        let b = Arc::new(gen_matrix(4, 2));
        let app = build_program(4, a, b);
        app.program.validate_strict().unwrap();
    }

    #[test]
    fn jstar_matches_baselines_small() {
        let n = 16;
        let a = Arc::new(gen_matrix(n, 11));
        let b = Arc::new(gen_matrix(n, 22));
        let naive = multiply_naive(&a, &b, n);
        let trans = multiply_transposed(&a, &b, n);
        assert_eq!(naive, trans);
        let seq = run_jstar(
            n,
            Arc::clone(&a),
            Arc::clone(&b),
            EngineConfig::sequential(),
        )
        .unwrap();
        assert_eq!(seq, naive);
        let par = run_jstar(n, a, b, EngineConfig::parallel(4)).unwrap();
        assert_eq!(par, naive);
    }

    #[test]
    fn identity_multiplication() {
        let n = 8;
        let mut id = vec![0i64; n * n];
        for i in 0..n {
            id[i * n + i] = 1;
        }
        let a = gen_matrix(n, 3);
        assert_eq!(multiply_naive(&a, &id, n), a);
        assert_eq!(multiply_transposed(&id, &a, n), a);
    }

    #[test]
    fn one_delta_tuple_per_row_plus_request() {
        // §6.4: "only one tuple per row of the output matrix needs to go
        // through the delta set".
        let n = 10;
        let a = Arc::new(gen_matrix(n, 5));
        let b = Arc::new(gen_matrix(n, 6));
        let app = build_program(n, a, b);
        let config = EngineConfig::sequential().store(app.matrix, MatrixStore::factory(n));
        let mut engine = Engine::new(Arc::clone(&app.program), config);
        engine.run().unwrap();
        let rows = engine.stats().tables[app.row_req.index()].snapshot();
        assert_eq!(rows.delta_inserts, n as u64);
        let mats = engine.stats().tables[app.matrix.index()].snapshot();
        assert_eq!(mats.delta_inserts, 0, "matrix cells never enter Delta");
    }

    #[test]
    fn row_requests_form_one_parallel_class() {
        let n = 12;
        let a = Arc::new(gen_matrix(n, 7));
        let b = Arc::new(gen_matrix(n, 8));
        let app = build_program(n, a, b);
        let config = EngineConfig::sequential()
            .store(app.matrix, MatrixStore::factory(n))
            .record_steps();
        let mut engine = Engine::new(Arc::clone(&app.program), config);
        engine.run().unwrap();
        // Steps: the request, then all n rows in ONE equivalence class.
        let hist = engine.stats().class_size_histogram();
        assert!(
            hist.iter().any(|&(bound, _)| bound >= n),
            "expected a class of {n} row tasks, histogram {hist:?}"
        );
    }

    #[test]
    fn matrix_store_dense_queries() {
        let def = Arc::new(
            jstar_core::schema::TableDefBuilder::standalone("Matrix")
                .col_int("mat")
                .col_int("row")
                .col_int("col")
                .col_int("value")
                .key(3)
                .orderby(&[strat("Mat")])
                .build_def(TableId(0)),
        );
        let store = MatrixStore::new(def, 4);
        store.set(MAT_A, 2, 3, 42);
        // Point query, written with the typed tokens and lowered.
        let q = Matrix::query()
            .eq(Matrix::mat, MAT_A)
            .eq(Matrix::row, 2)
            .eq(Matrix::col, 3)
            .lower(TableId(0));
        let mut got = Vec::new();
        store.query(&q, &mut |t| {
            got.push(Matrix::from_tuple(t).value);
            true
        });
        assert_eq!(got, vec![42]);
        // Row query returns n cells.
        let q = Matrix::query()
            .eq(Matrix::mat, MAT_A)
            .eq(Matrix::row, 2)
            .lower(TableId(0));
        let mut count = 0;
        store.query(&q, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 4);
    }

    #[test]
    fn zero_matrix_times_anything_is_zero() {
        let n = 6;
        let z = vec![0i64; n * n];
        let a = gen_matrix(n, 9);
        assert!(multiply_naive(&z, &a, n).iter().all(|&v| v == 0));
    }
}
