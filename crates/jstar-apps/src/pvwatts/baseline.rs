//! Hand-coded baseline — the paper's Java PvWatts program (§6.1).
//!
//! "The Java program uses the typical input reading style of
//! `BufferedReader.readline` plus `String.split` to read the input CSV
//! file": we mirror that idiom (allocate a `String` per line, split into
//! `String` fields, parse) so the baseline carries the same
//! string-conversion cost the paper measures JStar's byte-level CSV
//! library against. A second, byte-level variant isolates exactly that
//! difference.

use std::collections::BTreeMap;

/// Monthly means via line-by-line String reading (the Java idiom).
pub fn monthly_means_string_style(data: &[u8]) -> Vec<(i64, i64, f64)> {
    let text = String::from_utf8_lossy(data);
    let mut acc: BTreeMap<(i64, i64), (u64, i64)> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        // String.split(",") — allocates a vector of String-like slices and
        // parses from them, as the paper's Java baseline does.
        let fields: Vec<String> = line.split(',').map(|s| s.to_string()).collect();
        if fields.len() != 5 {
            continue;
        }
        let year: i64 = fields[0].parse().unwrap_or(0);
        let month: i64 = fields[1].parse().unwrap_or(0);
        let power: i64 = fields[4].parse().unwrap_or(0);
        let e = acc.entry((year, month)).or_insert((0, 0));
        e.0 += 1;
        e.1 += power;
    }
    acc.into_iter()
        .map(|((y, m), (n, s))| (y, m, s as f64 / n as f64))
        .collect()
}

/// Monthly means via the byte-level CSV library (what JStar's generated
/// reader uses) — isolates the string-conversion cost.
pub fn monthly_means_byte_style(data: &[u8]) -> Vec<(i64, i64, f64)> {
    let mut acc: BTreeMap<(i64, i64), (u64, i64)> = BTreeMap::new();
    for rec in jstar_csv::records(data) {
        if let Some(r) = super::data::parse_record(&rec) {
            let e = acc.entry((r.year, r.month)).or_insert((0, 0));
            e.0 += 1;
            e.1 += r.power;
        }
    }
    acc.into_iter()
        .map(|((y, m), (n, s))| (y, m, s as f64 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvwatts::data::{expected_means, generate_records, render_csv, InputOrder};

    #[test]
    fn string_style_matches_ground_truth() {
        let recs = generate_records(5000, InputOrder::Chronological);
        let csv = render_csv(&recs);
        assert_eq!(monthly_means_string_style(&csv), expected_means(&recs));
    }

    #[test]
    fn byte_style_matches_string_style() {
        let recs = generate_records(5000, InputOrder::RoundRobin);
        let csv = render_csv(&recs);
        assert_eq!(
            monthly_means_byte_style(&csv),
            monthly_means_string_style(&csv)
        );
    }

    #[test]
    fn empty_input_gives_no_months() {
        assert!(monthly_means_string_style(b"").is_empty());
        assert!(monthly_means_byte_style(b"").is_empty());
    }
}
