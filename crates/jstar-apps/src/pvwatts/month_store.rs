//! The custom "array-of-hashsets" Gamma store for the PvWatts table
//! (§6.2): "we manually implemented a custom data structure for the
//! PvWatts Gamma database that has an array indexed by month (1..12) at
//! the top level, and either a HashSet or ConcurrentHashMap within each
//! entry of the array."
//!
//! Here: a fixed 12-entry array indexed by month, each entry a mutex-held
//! map from year to that month's power samples. The summarise rule
//! downcasts ([`jstar_core::gamma::TableStore::as_any`]) to read the raw
//! samples without materialising tuples — the paper's hand-written
//! override of "one factory method".

use jstar_core::gamma::{InsertOutcome, TableStore};
use jstar_core::query::Query;
use jstar_core::relation::Relation;
use jstar_core::schema::TableDef;
use jstar_core::tuple::Tuple;
use jstar_core::value::Value;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Compact storage of one PvWatts record (day, hour, power).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sample {
    day: i32,
    hour: i32,
    power: i64,
}

/// This store's own decode-side view of a PvWatts row: a hand-written
/// struct wrapping the domain `Sample`, mapped onto the `PvWatts`
/// table schema by the [`jstar_core::relation!`] `as "PvWatts"` form.
/// The store decodes and addresses columns through this type — field
/// offsets live in the declaration below, not sprinkled through the
/// store — without depending on the app-level `PvWatts` relation that
/// owns the table.
#[derive(Debug, Clone, PartialEq)]
pub struct HourSample {
    pub year: i64,
    pub month: i64,
    pub day: i64,
    pub hour: i64,
    pub power: i64,
}

jstar_core::relation! {
    HourSample as "PvWatts" (int year, int month, int day, int hour, int power)
        orderby (PvWatts)
}

impl HourSample {
    /// The compact in-store representation (drops the bucket keys).
    fn sample(&self) -> Sample {
        Sample {
            day: self.day as i32,
            hour: self.hour as i32,
            power: self.power,
        }
    }
}

/// Custom month-indexed store for the PvWatts table.
///
/// Set-semantics note: like the paper's hand-rolled store, inserts do not
/// re-check for duplicates (the input has one record per hour, so
/// duplicates cannot arise); this is exactly the kind of assumption a
/// custom data-structure hint trades for speed.
pub struct MonthArrayStore {
    def: Arc<TableDef>,
    /// `months[m-1]` holds year → samples.
    months: [Mutex<HashMap<i64, Vec<Sample>>>; 12],
    len: AtomicUsize,
}

impl MonthArrayStore {
    pub fn new(def: Arc<TableDef>) -> Self {
        MonthArrayStore {
            def,
            months: Default::default(),
            len: AtomicUsize::new(0),
        }
    }

    /// Factory for [`jstar_core::gamma::StoreKind::Custom`].
    pub fn factory() -> jstar_core::gamma::StoreKind {
        jstar_core::gamma::StoreKind::Custom(Arc::new(|def| {
            Arc::new(MonthArrayStore::new(def)) as Arc<dyn TableStore>
        }))
    }

    /// Fast path used by the summarise rule after downcasting: folds every
    /// power sample of `(year, month)` through `f` without building
    /// tuples.
    pub fn fold_powers<A>(
        &self,
        year: i64,
        month: i64,
        init: A,
        mut f: impl FnMut(A, i64) -> A,
    ) -> A {
        let mut acc = init;
        if !(1..=12).contains(&month) {
            return acc;
        }
        let bucket = self.months[(month - 1) as usize].lock();
        if let Some(samples) = bucket.get(&year) {
            for s in samples {
                acc = f(acc, s.power);
            }
        }
        acc
    }

    fn tuple_of(&self, year: i64, month: i64, s: Sample) -> Tuple {
        Tuple::new(
            self.def.id,
            vec![
                Value::Int(year),
                Value::Int(month),
                Value::Int(s.day as i64),
                Value::Int(s.hour as i64),
                Value::Int(s.power),
            ],
        )
    }
}

impl TableStore for MonthArrayStore {
    fn insert(&self, t: Tuple) -> InsertOutcome {
        // Decode through the store's typed view: field offsets live in
        // one place (the `relation!` declaration), not in this store.
        let r = HourSample::from_tuple(&t);
        assert!(
            (1..=12).contains(&r.month),
            "month out of range: {}",
            r.month
        );
        let sample = r.sample();
        self.months[(r.month - 1) as usize]
            .lock()
            .entry(r.year)
            .or_default()
            .push(sample);
        self.len.fetch_add(1, Ordering::Relaxed);
        InsertOutcome::Fresh
    }

    fn contains(&self, t: &Tuple) -> bool {
        let r = HourSample::from_tuple(t);
        if !(1..=12).contains(&r.month) {
            return false;
        }
        let probe = r.sample();
        self.months[(r.month - 1) as usize]
            .lock()
            .get(&r.year)
            .is_some_and(|v| v.contains(&probe))
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn for_each(&self, f: &mut dyn FnMut(&Tuple) -> bool) {
        for (mi, bucket) in self.months.iter().enumerate() {
            let bucket = bucket.lock();
            for (&year, samples) in bucket.iter() {
                for &s in samples {
                    if !f(&self.tuple_of(year, mi as i64 + 1, s)) {
                        return;
                    }
                }
            }
        }
    }

    fn query(&self, q: &Query, f: &mut dyn FnMut(&Tuple) -> bool) {
        // The intended access path: year and month both bound.
        if let (Some(year), Some(month)) = (
            q.eq_value(HourSample::year.index()),
            q.eq_value(HourSample::month.index()),
        ) {
            let (year, month) = (year.as_int(), month.as_int());
            if !(1..=12).contains(&month) {
                return;
            }
            let bucket = self.months[(month - 1) as usize].lock();
            if let Some(samples) = bucket.get(&year) {
                for &s in samples {
                    let t = self.tuple_of(year, month, s);
                    if q.matches(&t) && !f(&t) {
                        return;
                    }
                }
            }
            return;
        }
        self.for_each(&mut |t| if q.matches(t) { f(t) } else { true });
    }

    fn retain(&self, keep: &dyn Fn(&Tuple) -> bool) {
        let mut removed = 0usize;
        for (mi, bucket) in self.months.iter().enumerate() {
            let mut bucket = bucket.lock();
            for (&year, samples) in bucket.iter_mut() {
                samples.retain(|&s| {
                    let keep_it = keep(&self.tuple_of(year, mi as i64 + 1, s));
                    if !keep_it {
                        removed += 1;
                    }
                    keep_it
                });
            }
        }
        self.len.fetch_sub(removed, Ordering::Relaxed);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jstar_core::orderby::strat;
    use jstar_core::schema::{TableDefBuilder, TableId};

    fn def() -> Arc<TableDef> {
        Arc::new(
            TableDefBuilder::standalone("PvWatts")
                .col_int("year")
                .col_int("month")
                .col_int("day")
                .col_int("hour")
                .col_int("power")
                .orderby(&[strat("PvWatts")])
                .build_def(TableId(0)),
        )
    }

    fn rec(y: i64, m: i64, d: i64, h: i64, p: i64) -> Tuple {
        Tuple::new(
            TableId(0),
            vec![
                Value::Int(y),
                Value::Int(m),
                Value::Int(d),
                Value::Int(h),
                Value::Int(p),
            ],
        )
    }

    #[test]
    fn insert_and_query_by_year_month() {
        let store = MonthArrayStore::new(def());
        store.insert(rec(2000, 1, 1, 12, 100));
        store.insert(rec(2000, 1, 2, 12, 200));
        store.insert(rec(2000, 2, 1, 12, 999));
        store.insert(rec(2001, 1, 1, 12, 50));
        assert_eq!(store.len(), 4);

        let q = Query::on(TableId(0))
            .eq(HourSample::year.index(), 2000i64)
            .eq(HourSample::month.index(), 1i64);
        let mut powers = Vec::new();
        store.query(&q, &mut |t| {
            powers.push(t.int(HourSample::power.index()));
            true
        });
        powers.sort();
        assert_eq!(powers, vec![100, 200]);
    }

    #[test]
    fn fold_powers_fast_path() {
        let store = MonthArrayStore::new(def());
        for p in [10, 20, 30] {
            store.insert(rec(2000, 3, 1, 12, p));
        }
        let sum = store.fold_powers(2000, 3, 0i64, |a, p| a + p);
        assert_eq!(sum, 60);
        let none = store.fold_powers(2000, 4, 0i64, |a, p| a + p);
        assert_eq!(none, 0);
        let bad_month = store.fold_powers(2000, 13, 7i64, |a, _| a);
        assert_eq!(bad_month, 7);
    }

    #[test]
    fn contains_and_for_each() {
        let store = MonthArrayStore::new(def());
        store.insert(rec(2000, 5, 9, 12, 77));
        assert!(store.contains(&rec(2000, 5, 9, 12, 77)));
        assert!(!store.contains(&rec(2000, 5, 9, 12, 78)));
        let mut count = 0;
        store.for_each(&mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn retain_drops_and_recounts() {
        let store = MonthArrayStore::new(def());
        for d in 1..=10 {
            store.insert(rec(2000, 6, d, 12, d * 10));
        }
        store.retain(&|t| t.int(HourSample::power.index()) > 50);
        assert_eq!(store.len(), 5);
    }

    #[test]
    fn concurrent_inserts_count_correctly() {
        let store = Arc::new(MonthArrayStore::new(def()));
        let pool = jstar_pool::ThreadPool::new(4);
        pool.scope(|s| {
            for m in 1..=12i64 {
                let store = Arc::clone(&store);
                s.spawn(move |_| {
                    for d in 1..=28 {
                        store.insert(rec(2000, m, d, 12, d));
                    }
                });
            }
        });
        assert_eq!(store.len(), 12 * 28);
        let sum = store.fold_powers(2000, 1, 0i64, |a, p| a + p);
        assert_eq!(sum, (1..=28).sum::<i64>());
    }
}
