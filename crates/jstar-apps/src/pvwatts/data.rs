//! Synthetic PVWatts data — the substitute for the paper's 192 MB
//! `large1000.csv` (8,760,000 hourly solar-output records).
//!
//! Only three properties of the input matter to the experiments: the
//! record count (parse/insert cost), the per-record schema
//! (`year,month,day,hour,power`), and the *ordering* of months within the
//! file, which drives Disruptor consumer load balance in §6.3/Fig. 10:
//!
//! * [`InputOrder::Chronological`] — the paper's default "unsorted" input,
//!   "ordered by year and month, which means that long sequences of
//!   records are processed by the same consumer";
//! * [`InputOrder::RoundRobin`] — the paper's "sorted (best case)" input,
//!   "sorted by day of the month and time of the day, so that input
//!   records are processed by consumers in a round-robin fashion".
//!
//! Power values are a pure function of `(year,month,day,hour)`, so the two
//! orderings contain exactly the same multiset of records and produce
//! identical monthly means.

/// Days per month (non-leap year, like PVWatts TMY data).
pub const DAYS_IN_MONTH: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Hours in one (non-leap) data year.
pub const HOURS_PER_YEAR: usize = 8760;

/// One input record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PvRecord {
    pub year: i64,
    pub month: i64,
    pub day: i64,
    pub hour: i64,
    pub power: i64,
}

/// Input file orderings (§6.3, Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputOrder {
    /// Year-major, month-major — the paper's default ("unsorted") input.
    Chronological,
    /// Day/hour-major so months round-robin — the paper's "sorted" input.
    RoundRobin,
}

/// splitmix64 — deterministic power values independent of record order.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The power output for a given hour: 0 at night, pseudo-random daytime
/// output shaped by month (a crude solar curve; the analysis only needs
/// the values to be deterministic and non-trivial).
pub fn power_at(year: i64, month: i64, day: i64, hour: i64) -> i64 {
    if !(6..=19).contains(&hour) {
        return 0;
    }
    let seed = (year as u64) << 32 | (month as u64) << 24 | (day as u64) << 16 | hour as u64;
    let noise = mix(seed) % 400;
    // Seasonal shape: peak in month 6-7 for northern-hemisphere flavour.
    let season = 600 - 80 * (month - 7).abs();
    (season + noise as i64).max(0)
}

/// Generates `n` records starting at year 2000.
pub fn generate_records(n: usize, order: InputOrder) -> Vec<PvRecord> {
    let mut recs = Vec::with_capacity(n);
    let mut year = 2000i64;
    'outer: loop {
        for (mi, days) in DAYS_IN_MONTH.iter().enumerate() {
            let month = mi as i64 + 1;
            for day in 1..=*days as i64 {
                for hour in 0..24i64 {
                    if recs.len() >= n {
                        break 'outer;
                    }
                    recs.push(PvRecord {
                        year,
                        month,
                        day,
                        hour,
                        power: power_at(year, month, day, hour),
                    });
                }
            }
        }
        year += 1;
    }
    if order == InputOrder::RoundRobin {
        // "Sorted by day of the month and time of the day": months (and
        // years) alternate record to record.
        recs.sort_by_key(|r| (r.day, r.hour, r.month, r.year));
    }
    recs
}

/// Renders records in the CSV format of the input file:
/// `year,month,day,H:00,power`.
pub fn render_csv(records: &[PvRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 24);
    for r in records {
        out.extend_from_slice(
            format!(
                "{},{},{},{}:00,{}\n",
                r.year, r.month, r.day, r.hour, r.power
            )
            .as_bytes(),
        );
    }
    out
}

/// Convenience: generate + render.
pub fn generate_csv(n: usize, order: InputOrder) -> Vec<u8> {
    render_csv(&generate_records(n, order))
}

/// Parses one CSV record (the byte-oriented fast path used by both the
/// JStar reader rule and the Disruptor producer). Returns `None` on a
/// malformed line.
pub fn parse_record(rec: &jstar_csv::Record<'_>) -> Option<PvRecord> {
    let mut fields = rec.fields();
    let year = jstar_csv::parse_i64(fields.next()?).ok()?;
    let month = jstar_csv::parse_i64(fields.next()?).ok()?;
    let day = jstar_csv::parse_i64(fields.next()?).ok()?;
    let hour_field = fields.next()?;
    let colon = hour_field.iter().position(|&b| b == b':')?;
    let hour = jstar_csv::parse_i64(&hour_field[..colon]).ok()?;
    let power = jstar_csv::parse_i64(fields.next()?).ok()?;
    Some(PvRecord {
        year,
        month,
        day,
        hour,
        power,
    })
}

/// Reference monthly means, computed directly — ground truth for tests
/// and benches.
pub fn expected_means(records: &[PvRecord]) -> Vec<(i64, i64, f64)> {
    let mut acc: std::collections::BTreeMap<(i64, i64), (u64, i64)> = Default::default();
    for r in records {
        let e = acc.entry((r.year, r.month)).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.power;
    }
    acc.into_iter()
        .map(|((y, m), (n, s))| (y, m, s as f64 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_exact_count() {
        for n in [0, 1, 100, 10_000] {
            assert_eq!(generate_records(n, InputOrder::Chronological).len(), n);
        }
    }

    #[test]
    fn chronological_is_month_major() {
        let recs = generate_records(24 * 40, InputOrder::Chronological);
        // First 31*24 records are January.
        assert!(recs[..31 * 24].iter().all(|r| r.month == 1));
        assert_eq!(recs[31 * 24].month, 2);
    }

    #[test]
    fn round_robin_alternates_months() {
        let n = HOURS_PER_YEAR;
        let recs = generate_records(n, InputOrder::RoundRobin);
        // Among the first 12 records (day 1, hour 0 of each month), months
        // rotate 1..=12.
        let months: Vec<i64> = recs[..12].iter().map(|r| r.month).collect();
        assert_eq!(months, (1..=12).collect::<Vec<i64>>());
    }

    #[test]
    fn orderings_have_identical_record_multisets() {
        let n = 5000;
        let mut a = generate_records(n, InputOrder::Chronological);
        let mut b = generate_records(n, InputOrder::RoundRobin);
        let key = |r: &PvRecord| (r.year, r.month, r.day, r.hour, r.power);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn csv_roundtrip() {
        let recs = generate_records(1000, InputOrder::Chronological);
        let csv = render_csv(&recs);
        let parsed: Vec<PvRecord> = jstar_csv::records(&csv)
            .map(|r| parse_record(&r).expect("well-formed"))
            .collect();
        assert_eq!(parsed, recs);
    }

    #[test]
    fn power_is_zero_at_night() {
        assert_eq!(power_at(2000, 6, 15, 2), 0);
        assert!(power_at(2000, 6, 15, 12) > 0);
    }

    #[test]
    fn expected_means_cover_all_months() {
        let recs = generate_records(HOURS_PER_YEAR, InputOrder::Chronological);
        let means = expected_means(&recs);
        assert_eq!(means.len(), 12);
        assert!(means.iter().all(|&(y, _, mean)| y == 2000 && mean >= 0.0));
        // Summer (month 7) beats winter (month 1) under the seasonal shape.
        let m1 = means.iter().find(|&&(_, m, _)| m == 1).unwrap().2;
        let m7 = means.iter().find(|&&(_, m, _)| m == 7).unwrap().2;
        assert!(m7 > m1);
    }

    #[test]
    fn multi_year_generation_advances_year() {
        let recs = generate_records(HOURS_PER_YEAR + 10, InputOrder::Chronological);
        assert_eq!(recs.last().unwrap().year, 2001);
    }
}
