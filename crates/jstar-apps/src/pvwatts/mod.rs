//! PvWatts — the paper's map-reduce case study (§6.2–6.3, Fig. 4).
//!
//! Reads a CSV of hourly solar-cell output measurements and prints the
//! average power generated during each month. The JStar program is Fig. 4
//! verbatim (tables `PvWattsRequest`, `PvWatts`, `SumMonth`;
//! `order Req < PvWatts < SumMonth`), with the one generalisation the
//! paper itself describes: the read request is split into N region-reader
//! requests so "the CSV reader library can run several readers in
//! parallel, on different parts of the input file".
//!
//! Four engine variants reproduce the paper's optimisation ladder:
//!
//! * [`Variant::Naive`] — every PvWatts tuple through the Delta tree
//!   ("horribly inefficient for this particular application");
//! * [`Variant::NoDelta`] — `-noDelta=PvWatts` (§6.2's 23.0 s → 8.44 s);
//! * [`Variant::HashStore`] — plus a hash index on (year, month);
//! * [`Variant::CustomStore`] — plus the hand-written array-of-hashsets
//!   Gamma store of §6.2.

pub mod baseline;
pub mod data;
pub mod disruptor_version;
pub mod month_store;

pub use data::{generate_csv, generate_records, render_csv, InputOrder, PvRecord};
pub use disruptor_version::{run_multi_producer, DisruptorConfig, PvEvent};
pub use month_store::MonthArrayStore;

use jstar_core::jstar_table;
use jstar_core::prelude::*;
use std::sync::Arc;

jstar_table! {
    /// `table PvWattsRequest(int region, int start, int end)
    ///  orderby (Req, par region)` — one region-read request per reader.
    #[derive(Copy, Eq)]
    pub PvWattsRequest(int region, int start, int end)
        orderby (Req, par region)
}

jstar_table! {
    /// `table PvWatts(int year, int month, int day, int hour, int power)
    ///  orderby (PvWatts)` — Fig. 4, one row per hourly measurement.
    #[derive(Copy, Eq)]
    pub PvWatts(int year, int month, int day, int hour, int power)
        orderby (PvWatts)
}

jstar_table! {
    /// `table SumMonth(int year, int month) orderby (SumMonth)` — Fig. 4;
    /// set semantics dedups the one-per-record copies.
    #[derive(Copy, Eq)]
    pub SumMonth(int year, int month) orderby (SumMonth)
}

/// The built PvWatts program plus its table handles.
pub struct PvWattsApp {
    pub program: Arc<Program>,
    pub request: TableId,
    pub pvwatts: TableId,
    pub summonth: TableId,
}

/// Optimisation variants (the paper's compiler/runtime flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// All tuples through the Delta tree, default stores.
    Naive,
    /// `-noDelta=PvWatts`.
    NoDelta,
    /// `-noDelta=PvWatts` + hash index on (year, month).
    HashStore,
    /// `-noDelta=PvWatts` + the custom month-array store.
    CustomStore,
}

impl Variant {
    /// All variants, for sweeps.
    pub fn all() -> [Variant; 4] {
        [
            Variant::Naive,
            Variant::NoDelta,
            Variant::HashStore,
            Variant::CustomStore,
        ]
    }

    /// Display name for benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Naive => "naive",
            Variant::NoDelta => "noDelta",
            Variant::HashStore => "noDelta+hash",
            Variant::CustomStore => "noDelta+custom",
        }
    }
}

/// Builds the Fig. 4 program over in-memory CSV bytes, with `n_readers`
/// parallel region-read requests.
pub fn build_program(csv: Arc<Vec<u8>>, n_readers: usize) -> PvWattsApp {
    let mut p = ProgramBuilder::new();

    // The typed declarations above carry the schemas.
    let request = p.relation::<PvWattsRequest>().id();
    let pvwatts = p.relation::<PvWatts>().id();
    let summonth = p.relation::<SumMonth>().id();
    // order Req < PvWatts < SumMonth — without this, the summarise rule is
    // not stratifiable (Fig. 4's discussion).
    p.order(&["Req", "PvWatts", "SumMonth"]);

    // Rule 1: the generated read-loop rule.
    let read_model = CausalityModel {
        ctx: ModelCtx::new(),
        invariants: vec![],
        puts: vec![PutModel {
            out_table: "PvWatts".into(),
            guard: vec![],
            bindings: vec![],
            label: "read CSV records".into(),
        }],
        queries: vec![],
    };
    let csv_for_read = Arc::clone(&csv);
    p.rule_rel_with_model("read-csv", read_model, move |ctx, req: PvWattsRequest| {
        let (start, end) = (req.start as usize, req.end as usize);
        let reader = jstar_csv::RegionReader::new(&csv_for_read, start, end);
        for rec in reader.records() {
            if let Some(r) = data::parse_record(&rec) {
                ctx.put_rel(PvWatts {
                    year: r.year,
                    month: r.month,
                    day: r.day,
                    hour: r.hour,
                    power: r.power,
                });
            }
        }
    });

    // Rule 2: foreach (PvWatts pv) { put new SumMonth(pv.year, pv.month); }
    let month_model = CausalityModel {
        ctx: ModelCtx::new(),
        invariants: vec![],
        puts: vec![PutModel {
            out_table: "SumMonth".into(),
            guard: vec![],
            bindings: vec![],
            label: "request month summary".into(),
        }],
        queries: vec![],
    };
    p.rule_rel_with_model("request-month", month_model, move |ctx, pv: PvWatts| {
        ctx.put_rel(SumMonth {
            year: pv.year,
            month: pv.month,
        });
    });

    // Rule 3: foreach (SumMonth s) { Statistics over PvWatts(s.year, s.month) }
    let sum_model = CausalityModel {
        ctx: ModelCtx::new(),
        invariants: vec![],
        puts: vec![],
        queries: vec![QueryModel {
            q_table: "PvWatts".into(),
            guard: vec![],
            bindings: vec![],
            label: "aggregate month".into(),
        }],
    };
    // The month aggregate differs only in the trigger's (year, month):
    // prepare it once with bind slots, patched in place per invocation.
    let pvwatts_h = p.relation::<PvWatts>();
    let month_rows = PvWatts::query()
        .bind_eq(PvWatts::year)
        .bind_eq(PvWatts::month)
        .prepare(pvwatts_h);
    p.rule_rel_with_model("summarise", sum_model, move |ctx, s: SumMonth| {
        let (year, month) = (s.year, s.month);
        let store = ctx.store(ctx.rel::<PvWatts>().id());
        let stats = if let Some(ms) = store.as_any().downcast_ref::<MonthArrayStore>() {
            // Custom-store fast path: fold raw samples, no tuple
            // materialisation (the paper's hand-optimised reducer loop).
            let (count, sum) =
                ms.fold_powers(year, month, (0u64, 0i64), |(n, s), p| (n + 1, s + p));
            (count, sum as f64)
        } else {
            let st = ctx.reduce_bound(
                &month_rows,
                &[Value::Int(year), Value::Int(month)],
                &Statistics {
                    field: PvWatts::power.index(),
                },
            );
            (st.count, st.sum)
        };
        ctx.println(format!("{year}/{month}: {}", stats.1 / stats.0 as f64));
    });

    // Initial puts: one region request per reader (Fig. 7's phase 1).
    let regions = jstar_csv::split_regions(csv.len(), n_readers.max(1));
    for (i, (start, end)) in regions.into_iter().enumerate() {
        p.put_rel(PvWattsRequest {
            region: i as i64,
            start: start as i64,
            end: end as i64,
        });
    }

    PvWattsApp {
        program: Arc::new(p.build().expect("pvwatts program builds")),
        request,
        pvwatts,
        summonth,
    }
}

/// Applies a variant's flags to an engine configuration.
pub fn apply_variant(app: &PvWattsApp, variant: Variant, config: EngineConfig) -> EngineConfig {
    match variant {
        Variant::Naive => config,
        Variant::NoDelta => config.no_delta(app.pvwatts),
        Variant::HashStore => config.no_delta(app.pvwatts).store(
            app.pvwatts,
            StoreKind::Hash {
                index_fields: vec!["year".into(), "month".into()],
                shards: 16,
            },
        ),
        Variant::CustomStore => config
            .no_delta(app.pvwatts)
            .store(app.pvwatts, MonthArrayStore::factory()),
    }
}

/// Parses the program's output lines (`year/month: mean`) into sorted
/// `(year, month, mean)` triples. Rust's float `Display` is
/// shortest-roundtrip, so the parse is exact.
pub fn means_from_output(output: &[String]) -> Vec<(i64, i64, f64)> {
    let mut out: Vec<(i64, i64, f64)> = output
        .iter()
        .filter_map(|line| {
            let (ym, mean) = line.split_once(": ")?;
            let (y, m) = ym.split_once('/')?;
            Some((y.parse().ok()?, m.parse().ok()?, mean.parse().ok()?))
        })
        .collect();
    out.sort_by_key(|a| (a.0, a.1));
    out
}

/// Monthly means as `(year, month, mean)` triples.
pub type MonthlyMeans = Vec<(i64, i64, f64)>;

/// End-to-end: build, run under `variant`, return monthly means + report.
pub fn run_jstar(
    csv: Arc<Vec<u8>>,
    n_readers: usize,
    variant: Variant,
    config: EngineConfig,
) -> Result<(MonthlyMeans, RunReport)> {
    let app = build_program(csv, n_readers);
    let config = apply_variant(&app, variant, config);
    let mut engine = Engine::new(Arc::clone(&app.program), config);
    let report = engine.run()?;
    Ok((means_from_output(&report.output), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use data::{expected_means, generate_records};

    fn csv_of(n: usize, order: InputOrder) -> (Vec<PvRecord>, Arc<Vec<u8>>) {
        let recs = generate_records(n, order);
        let csv = Arc::new(render_csv(&recs));
        (recs, csv)
    }

    #[test]
    fn program_passes_strict_causality_validation() {
        let (_, csv) = csv_of(100, InputOrder::Chronological);
        let app = build_program(csv, 2);
        app.program
            .validate_strict()
            .expect("all obligations proved");
    }

    #[test]
    fn all_variants_match_ground_truth_sequential() {
        let (recs, csv) = csv_of(3000, InputOrder::Chronological);
        let want = expected_means(&recs);
        for variant in Variant::all() {
            let (got, _) =
                run_jstar(Arc::clone(&csv), 1, variant, EngineConfig::sequential()).unwrap();
            assert_eq!(got, want, "variant {}", variant.name());
        }
    }

    #[test]
    fn all_variants_match_ground_truth_parallel() {
        let (recs, csv) = csv_of(3000, InputOrder::RoundRobin);
        let want = expected_means(&recs);
        for variant in Variant::all() {
            let (got, _) =
                run_jstar(Arc::clone(&csv), 4, variant, EngineConfig::parallel(4)).unwrap();
            assert_eq!(got, want, "variant {}", variant.name());
        }
    }

    #[test]
    fn no_delta_skips_the_delta_tree() {
        let (_, csv) = csv_of(1000, InputOrder::Chronological);
        let app = build_program(Arc::clone(&csv), 1);
        let config = apply_variant(&app, Variant::NoDelta, EngineConfig::sequential());
        let mut engine = Engine::new(Arc::clone(&app.program), config);
        engine.run().unwrap();
        let pv = engine.stats().tables[app.pvwatts.index()].snapshot();
        assert_eq!(pv.delta_inserts, 0, "-noDelta bypasses the Delta tree");
        assert_eq!(pv.gamma_fresh, 1000);

        // The naive variant pushes every PvWatts tuple through Delta.
        let app2 = build_program(csv, 1);
        let mut engine2 = Engine::new(
            Arc::clone(&app2.program),
            apply_variant(&app2, Variant::Naive, EngineConfig::sequential()),
        );
        engine2.run().unwrap();
        let pv2 = engine2.stats().tables[app2.pvwatts.index()].snapshot();
        assert_eq!(pv2.delta_inserts, 1000);
    }

    #[test]
    fn multiple_readers_cover_all_records() {
        let (recs, csv) = csv_of(8760, InputOrder::Chronological);
        let want = expected_means(&recs);
        for readers in [1, 2, 3, 7] {
            let (got, _) = run_jstar(
                Arc::clone(&csv),
                readers,
                Variant::HashStore,
                EngineConfig::sequential(),
            )
            .unwrap();
            assert_eq!(got, want, "{readers} readers");
        }
    }

    #[test]
    fn disruptor_agrees_with_jstar() {
        let (recs, csv) = csv_of(8760, InputOrder::Chronological);
        let jstar = run_jstar(
            Arc::clone(&csv),
            2,
            Variant::CustomStore,
            EngineConfig::sequential(),
        )
        .unwrap()
        .0;
        let disruptor = disruptor_version::run(&csv, DisruptorConfig::default());
        let want = expected_means(&recs);
        assert_eq!(jstar, want);
        assert_eq!(disruptor, want);
    }

    #[test]
    fn means_from_output_parses_and_sorts() {
        let out = vec![
            "2000/2: 350.5".to_string(),
            "2000/1: 300.25".to_string(),
            "garbage".to_string(),
        ];
        let means = means_from_output(&out);
        assert_eq!(means, vec![(2000, 1, 300.25), (2000, 2, 350.5)]);
    }

    #[test]
    fn dependency_graph_names_all_tables() {
        let (_, csv) = csv_of(10, InputOrder::Chronological);
        let app = build_program(csv, 1);
        let g = app.program.dependency_graph();
        assert_eq!(g.tables, vec!["PvWattsRequest", "PvWatts", "SumMonth"]);
        let dot = g.to_dot(None);
        assert!(dot.contains("read-csv"));
        assert!(dot.contains("summarise"));
    }
}
