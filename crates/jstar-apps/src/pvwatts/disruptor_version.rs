//! The Disruptor redesign of PvWatts (§6.3, Fig. 9, Table 1).
//!
//! "Our Disruptor version of PvWatts parallelizes the PvWatts program into
//! a two-phase workflow ... a single producer and multiple consumers ...
//! To reduce the workload of the reducer loop and improve the parallelism,
//! we assign a separate month to each consumer. Thus, each consumer just
//! needs to process the PvWatts tuples of one month and puts these tuples
//! into its own Gamma database. Besides, the consumer also creates one
//! corresponding SumMonth tuple for each PvWatts tuple and inserts this
//! tuple into the Delta tree. When a consumer receives the sentinel tuple,
//! it processes the SumMonth tuple from its own Delta tree, which triggers
//! the reducer loop to query the PvWatts tuples in the Gamma table."
//!
//! Fidelity note: each consumer here really does own a JStar Gamma store
//! (a hash-indexed `TableStore`) and a JStar Delta tree, creates real
//! tuples, and answers the final aggregation with the `Statistics` reducer
//! over its local Gamma — the exact Fig. 9 structure, not a shortcut map.

use crate::pvwatts::data::parse_record;
use crate::pvwatts::{PvWatts, SumMonth};
use jstar_core::delta::DeltaTree;
use jstar_core::gamma::{HashStore, TableStore};
use jstar_core::orderby::{KeyPart, OrderKey};
use jstar_core::prelude::*;
use jstar_core::schema::TableDefBuilder;
use jstar_disruptor::{Disruptor, WaitStrategyKind};
use std::ops::ControlFlow;
use std::sync::Arc;

/// The ring-buffer event: one PvWatts record, recycled in place.
#[derive(Debug, Clone, Copy, Default)]
pub struct PvEvent {
    pub year: i32,
    pub month: i32,
    pub day: i32,
    pub hour: i32,
    pub power: i64,
    /// End-of-input marker (the paper's sentinel tuple).
    pub sentinel: bool,
}

/// Tuning knobs — the rows of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct DisruptorConfig {
    /// "Total number of Consumer: 12" — one per month by default.
    pub consumers: usize,
    /// "Size of Ring Buffer: 1024."
    pub ring_size: usize,
    /// "Claim slots in a batch of 256."
    pub batch: usize,
    /// "Wait Strategy: BlockingWaitStrategy."
    pub wait: WaitStrategyKind,
}

impl Default for DisruptorConfig {
    fn default() -> Self {
        DisruptorConfig {
            consumers: 12,
            ring_size: 1024,
            batch: 256,
            wait: WaitStrategyKind::Blocking,
        }
    }
}

/// One consumer's private JStar state — "its own Gamma database" and "its
/// own Delta tree" (Fig. 9).
struct ConsumerState {
    pv_def: Arc<TableDef>,
    gamma: HashStore,
    delta: DeltaTree,
    sum_def: Arc<TableDef>,
}

impl ConsumerState {
    fn new() -> Self {
        let pv_def = Arc::new(
            TableDefBuilder::standalone("PvWatts")
                .col_int("year")
                .col_int("month")
                .col_int("day")
                .col_int("hour")
                .col_int("power")
                .orderby(&[jstar_core::orderby::strat("PvWatts")])
                .build_def(TableId(0)),
        );
        let sum_def = Arc::new(
            TableDefBuilder::standalone("SumMonth")
                .col_int("year")
                .col_int("month")
                .orderby(&[jstar_core::orderby::strat("SumMonth")])
                .build_def(TableId(1)),
        );
        ConsumerState {
            gamma: HashStore::new(
                Arc::clone(&pv_def),
                vec![PvWatts::year.index(), PvWatts::month.index()],
                4,
            ),
            pv_def,
            delta: DeltaTree::new(),
            sum_def,
        }
    }

    /// Phase-1 work per claimed event: create the PvWatts tuple, insert it
    /// into the local Gamma, and stage the (deduplicated) SumMonth tuple
    /// in the local Delta tree. Rows are encoded through the typed
    /// relations, so the field layout lives in one declaration.
    fn absorb(&mut self, ev: &PvEvent) {
        let row = PvWatts {
            year: ev.year as i64,
            month: ev.month as i64,
            day: ev.day as i64,
            hour: ev.hour as i64,
            power: ev.power,
        };
        self.gamma
            .insert(Tuple::new(self.pv_def.id, row.into_values()));
        let sum = Tuple::new(
            self.sum_def.id,
            SumMonth {
                year: ev.year as i64,
                month: ev.month as i64,
            }
            .into_values(),
        );
        // SumMonth orderby (SumMonth): a single stratum key.
        self.delta.insert(&OrderKey(vec![KeyPart::Strat(1)]), sum);
    }

    /// Phase-2 work on the sentinel: pop the SumMonth tuples from the
    /// local Delta tree and run the Statistics reducer over the local
    /// Gamma for each month.
    fn finish(mut self) -> Vec<(i64, i64, f64)> {
        let mut out = Vec::new();
        while let Some((_, class)) = self.delta.pop_min_class() {
            for sm in class {
                let sm = SumMonth::from_tuple(&sm);
                let q = PvWatts::query()
                    .eq(PvWatts::year, sm.year)
                    .eq(PvWatts::month, sm.month)
                    .lower(self.pv_def.id);
                let mut stats = jstar_core::reduce::Stats::empty();
                self.gamma.query(&q, &mut |t| {
                    stats.add(t.int(PvWatts::power.index()) as f64);
                    true
                });
                out.push((sm.year, sm.month, stats.mean()));
            }
        }
        out.sort_by_key(|a| (a.0, a.1));
        out
    }
}

/// Runs the two-phase Disruptor workflow over raw CSV bytes, returning the
/// monthly means sorted by (year, month).
///
/// Each consumer claims every event from the ring (broadcast) but absorbs
/// only the months assigned to it (`(month-1) % consumers == index`),
/// mirroring "each consumer just needs to process the PvWatts tuples of
/// one month".
pub fn run(data: &[u8], cfg: DisruptorConfig) -> Vec<(i64, i64, f64)> {
    assert!(cfg.consumers >= 1);
    assert!(cfg.batch >= 1);
    let mut d = Disruptor::<PvEvent>::new(cfg.ring_size, cfg.wait);
    let consumers: Vec<_> = (0..cfg.consumers).map(|_| d.add_consumer()).collect();
    let mut producer = d.into_producer();

    let mut merged: Vec<(i64, i64, f64)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = consumers
            .into_iter()
            .enumerate()
            .map(|(idx, consumer)| {
                let n = cfg.consumers;
                s.spawn(move || {
                    let mut state = ConsumerState::new();
                    consumer.run(|ev: &PvEvent, _seq| {
                        if ev.sentinel {
                            return ControlFlow::Break(());
                        }
                        if (ev.month as usize - 1) % n == idx {
                            state.absorb(ev);
                        }
                        ControlFlow::Continue(())
                    });
                    state.finish()
                })
            })
            .collect();

        // Producer phase: parse and publish in claim batches.
        let mut batch_buf: Vec<PvEvent> = Vec::with_capacity(cfg.batch);
        let flush = |producer: &mut jstar_disruptor::SingleProducer<PvEvent>,
                     buf: &mut Vec<PvEvent>| {
            if buf.is_empty() {
                return;
            }
            producer.publish_batch(buf.len(), |i, slot| *slot = buf[i]);
            buf.clear();
        };
        for rec in jstar_csv::records(data) {
            if let Some(r) = parse_record(&rec) {
                batch_buf.push(PvEvent {
                    year: r.year as i32,
                    month: r.month as i32,
                    day: r.day as i32,
                    hour: r.hour as i32,
                    power: r.power,
                    sentinel: false,
                });
                if batch_buf.len() == cfg.batch.min(producer.capacity()) {
                    flush(&mut producer, &mut batch_buf);
                }
            }
        }
        flush(&mut producer, &mut batch_buf);
        producer.publish(|slot| {
            *slot = PvEvent {
                sentinel: true,
                ..Default::default()
            }
        });

        for h in handles {
            merged.extend(h.join().expect("consumer thread"));
        }
    });

    merged.sort_by_key(|a| (a.0, a.1));
    merged
}

/// Multi-producer variant: the claim-strategy alternative of Table 1.
///
/// The CSV is split into `producers` Hadoop-style regions (the same
/// protocol the JStar reader rules use); each producer parses its region
/// and publishes through the shared multi-producer ring. Consumers are
/// unchanged. Demonstrates that the parallelism structure (1×N vs M×N) is
/// swappable without touching the consumer logic — the paper's
/// experimentation philosophy applied to the Disruptor redesign.
pub fn run_multi_producer(
    data: &[u8],
    producers: usize,
    cfg: DisruptorConfig,
) -> Vec<(i64, i64, f64)> {
    use jstar_disruptor::MultiDisruptorBuilder;
    assert!(producers >= 1 && cfg.consumers >= 1);
    let (producer_handles, consumer_handles) = MultiDisruptorBuilder::new(cfg.ring_size, cfg.wait)
        .build::<PvEvent>(producers, cfg.consumers);

    let regions = jstar_csv::split_regions(data.len(), producers);
    let mut merged: Vec<(i64, i64, f64)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = consumer_handles
            .into_iter()
            .enumerate()
            .map(|(idx, consumer)| {
                let n = cfg.consumers;
                let total_producers = regions.len();
                s.spawn(move || {
                    let mut state = ConsumerState::new();
                    let mut sentinels = 0usize;
                    consumer.run(|ev: &PvEvent, _seq| {
                        if ev.sentinel {
                            sentinels += 1;
                            return if sentinels == total_producers {
                                ControlFlow::Break(())
                            } else {
                                ControlFlow::Continue(())
                            };
                        }
                        if (ev.month as usize - 1) % n == idx {
                            state.absorb(ev);
                        }
                        ControlFlow::Continue(())
                    });
                    state.finish()
                })
            })
            .collect();

        for (producer, (start, end)) in producer_handles.into_iter().zip(regions.iter().copied()) {
            s.spawn(move || {
                let reader = jstar_csv::RegionReader::new(data, start, end);
                for rec in reader.records() {
                    if let Some(r) = parse_record(&rec) {
                        producer.publish(|slot| {
                            *slot = PvEvent {
                                year: r.year as i32,
                                month: r.month as i32,
                                day: r.day as i32,
                                hour: r.hour as i32,
                                power: r.power,
                                sentinel: false,
                            }
                        });
                    }
                }
                producer.publish(|slot| {
                    *slot = PvEvent {
                        sentinel: true,
                        ..Default::default()
                    }
                });
            });
        }

        for h in handles {
            merged.extend(h.join().expect("consumer thread"));
        }
    });
    merged.sort_by_key(|a| (a.0, a.1));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvwatts::data::{expected_means, generate_records, render_csv, InputOrder};

    fn check(order: InputOrder, cfg: DisruptorConfig) {
        let recs = generate_records(8760, order);
        let csv = render_csv(&recs);
        let got = run(&csv, cfg);
        let want = expected_means(&recs);
        assert_eq!(got, want);
    }

    #[test]
    fn matches_ground_truth_default_config() {
        check(InputOrder::Chronological, DisruptorConfig::default());
    }

    #[test]
    fn matches_on_round_robin_input() {
        check(InputOrder::RoundRobin, DisruptorConfig::default());
    }

    #[test]
    fn works_with_fewer_consumers_than_months() {
        check(
            InputOrder::Chronological,
            DisruptorConfig {
                consumers: 3,
                ..Default::default()
            },
        );
    }

    #[test]
    fn works_with_tiny_ring_and_batch() {
        check(
            InputOrder::Chronological,
            DisruptorConfig {
                consumers: 2,
                ring_size: 16,
                batch: 4,
                wait: WaitStrategyKind::Yielding,
            },
        );
    }

    #[test]
    fn all_wait_strategies_agree() {
        let recs = generate_records(2000, InputOrder::Chronological);
        let csv = render_csv(&recs);
        let want = expected_means(&recs);
        for wait in WaitStrategyKind::all() {
            let cfg = DisruptorConfig {
                consumers: 4,
                wait,
                ..Default::default()
            };
            assert_eq!(run(&csv, cfg), want, "{}", wait.name());
        }
    }

    #[test]
    fn multi_producer_matches_ground_truth() {
        let recs = generate_records(8760, InputOrder::Chronological);
        let csv = render_csv(&recs);
        let want = expected_means(&recs);
        for producers in [1usize, 2, 4] {
            let got = run_multi_producer(
                &csv,
                producers,
                DisruptorConfig {
                    consumers: 4,
                    wait: WaitStrategyKind::Yielding,
                    ..Default::default()
                },
            );
            assert_eq!(got, want, "{producers} producers");
        }
    }

    #[test]
    fn multi_producer_agrees_with_single() {
        let recs = generate_records(4000, InputOrder::RoundRobin);
        let csv = render_csv(&recs);
        let single = run(&csv, DisruptorConfig::default());
        let multi = run_multi_producer(&csv, 3, DisruptorConfig::default());
        assert_eq!(single, multi);
    }

    #[test]
    fn multi_year_months_stay_separate() {
        let recs = generate_records(8760 * 2 + 500, InputOrder::Chronological);
        let csv = render_csv(&recs);
        let got = run(&csv, DisruptorConfig::default());
        assert_eq!(got, expected_means(&recs));
        // 12 months of year 2000, 12 of 2001, 1 partial of 2002.
        assert_eq!(got.len(), 25);
    }
}
