//! Median finding — §6.6, Fig. 13.
//!
//! "Unlike most JStar programs ... this program uses a more explicitly
//! parallel algorithm. It chooses a global pivot value, divides the array
//! into N consecutive regions, partitions each of those regions using the
//! pivot value (similar to a Quicksort) and reports the size of those
//! partitions back to a central controller. The controller then repeats
//! this process (each time focusing on the partitions that must contain
//! the median value) until only one value is left in the partition, which
//! is the median."
//!
//! The `Data` table (`table Data(int iter, int index -> double value)
//! orderby (Int, seq iter, Data, seq index)`) uses the paper's custom
//! store: "we wrote a custom subclass that stored all the values in a 2D
//! array: `double[2][100000000]`, and used iter modulo 2 as the index for
//! the outer dimension" — the combination of the native-arrays
//! optimisation and a two-generation garbage-collection optimisation.
//!
//! Control flow is pure JStar: per iteration, a `Ctl` tuple fans out
//! `PartReq` region tasks (one `par` equivalence class — the parallel
//! phase), each task three-way-partitions its segment into the next row
//! and reports a `Res` tuple, and a `Collect` tuple aggregates the counts
//! to decide which side holds the k-th element. Stage strata
//! (`Seg < Ctl < Req < Res < Col`) order the phases within an iteration;
//! the `iter` timestamp orders iterations.

use jstar_core::gamma::{InsertOutcome, TableStore};
use jstar_core::jstar_table;
use jstar_core::prelude::*;
use std::any::Any;
use std::cell::UnsafeCell;
use std::sync::Arc;

/// When the active element count drops to this, the controller gathers and
/// sorts directly ("until only one value is left", loosely).
const DIRECT_THRESHOLD: usize = 64;

jstar_table! {
    /// §6.6's `table Data(int iter, int index -> double value)`, held in
    /// the two-row native array store. The paper orders it
    /// `(Int, seq iter, Data, seq index)`; here the trailing `seq index`
    /// is dropped — Data tuples never trigger rules (the store absorbs
    /// them directly), so only the `iter` generation matters for
    /// causality.
    #[derive(Copy)]
    pub Data(int iter, int index -> double value)
        orderby (Int, seq iter, DataS)
}

jstar_table! {
    /// One active segment `[lo, hi)` of a region in generation `iter`.
    #[derive(Copy, Eq)]
    pub Seg(int iter, int region -> int lo, int hi)
        orderby (Int, seq iter, SegS)
}

jstar_table! {
    /// The per-iteration controller state: which rank is sought.
    #[derive(Copy, Eq)]
    pub Ctl(int iter -> int k)
        orderby (Int, seq iter, CtlS)
}

jstar_table! {
    /// One partition task — the parallel phase (`par region`).
    #[derive(Copy)]
    pub PartReq(int iter, int region -> int lo, int hi, double pivot)
        orderby (Int, seq iter, ReqS, par region)
}

jstar_table! {
    /// One region's partition-size report.
    #[derive(Copy, Eq)]
    pub Res(int iter, int region -> int less, int eq)
        orderby (Int, seq iter, ResS)
}

jstar_table! {
    /// The per-iteration collection trigger (set semantics dedups the
    /// one-per-task copies).
    #[derive(Copy, Eq)]
    pub Collect(int iter)
        orderby (Int, seq iter, ColS)
}

jstar_table! {
    /// The answer.
    #[derive(Copy)]
    pub MedianResult(double value) orderby (Ans)
}

/// The two-row native array store for the `Data` table.
///
/// Row `iter % 2` holds generation `iter`; partition tasks write disjoint
/// segments of row `(iter+1) % 2`, which is what makes the unsynchronised
/// interior mutability sound (and is exactly the paper's
/// `double[2][100000000]` design).
pub struct MedianArrayStore {
    def: Arc<TableDef>,
    rows: [Box<[UnsafeCell<f64>]>; 2],
}

// SAFETY: within one engine step, tasks write disjoint [lo, hi) segments
// of the inactive row; reads of the active row happen in later steps,
// ordered by the causality barrier between Req and the next iteration.
unsafe impl Send for MedianArrayStore {}
unsafe impl Sync for MedianArrayStore {}

impl MedianArrayStore {
    pub fn new(def: Arc<TableDef>, data: &[f64]) -> Self {
        let row0: Box<[UnsafeCell<f64>]> = data.iter().map(|&v| UnsafeCell::new(v)).collect();
        let row1: Box<[UnsafeCell<f64>]> = data.iter().map(|_| UnsafeCell::new(0.0)).collect();
        MedianArrayStore {
            def,
            rows: [row0, row1],
        }
    }

    /// Store factory capturing the input array.
    pub fn factory(data: Arc<Vec<f64>>) -> StoreKind {
        StoreKind::Custom(Arc::new(move |def| {
            Arc::new(MedianArrayStore::new(def, &data)) as Arc<dyn TableStore>
        }))
    }

    /// Number of elements per row.
    pub fn len_row(&self) -> usize {
        self.rows[0].len()
    }

    /// Reads one element of generation `iter`.
    pub fn read(&self, iter: i64, index: usize) -> f64 {
        let row = &self.rows[(iter % 2) as usize];
        // SAFETY: reads target the stable generation row (see type docs).
        unsafe { *row[index].get() }
    }

    /// Three-way partition of `[lo, hi)` from generation `iter` into
    /// generation `iter + 1`, laid out as `[less | equal | greater]` within
    /// the same span. Returns `(less, equal)` counts.
    pub fn partition3(&self, iter: i64, lo: usize, hi: usize, pivot: f64) -> (usize, usize) {
        let src_row = &self.rows[(iter % 2) as usize];
        let dst_row = &self.rows[((iter + 1) % 2) as usize];
        let mut less = 0usize;
        let mut greater_end = hi - lo; // fill greaters from the back
        let mut equal = 0usize;
        // First pass: write less-than values forward and greater values
        // backward into a scratch layout, counting equals.
        // SAFETY: [lo, hi) of dst is owned exclusively by this task.
        unsafe {
            for i in lo..hi {
                let v = *src_row[i].get();
                if v < pivot {
                    *dst_row[lo + less].get() = v;
                    less += 1;
                } else if v > pivot {
                    greater_end -= 1;
                    *dst_row[lo + greater_end].get() = v;
                } else {
                    equal += 1;
                }
            }
            // Middle block: `equal` copies of the pivot.
            for i in 0..equal {
                *dst_row[lo + less + i].get() = pivot;
            }
            // The backward-written greater block is reversed relative to
            // input order; order within a partition is irrelevant to the
            // algorithm.
        }
        (less, equal)
    }

    /// Gathers the live elements of generation `iter` across segments.
    pub fn gather(&self, iter: i64, segments: &[(usize, usize)]) -> Vec<f64> {
        let mut out = Vec::new();
        for &(lo, hi) in segments {
            for i in lo..hi {
                out.push(self.read(iter, i));
            }
        }
        out
    }

    /// The first element of the first non-empty segment — the pivot choice.
    pub fn first_of(&self, iter: i64, segments: &[(usize, usize)]) -> Option<f64> {
        segments
            .iter()
            .find(|&&(lo, hi)| hi > lo)
            .map(|&(lo, _)| self.read(iter, lo))
    }
}

impl TableStore for MedianArrayStore {
    fn insert(&self, t: Tuple) -> InsertOutcome {
        // table Data(int iter, int index -> double value) — decoded
        // through the typed relation so the layout lives in one place.
        let d = Data::from_tuple(&t);
        let row = &self.rows[(d.iter % 2) as usize];
        // SAFETY: inserts for generation `iter` come from tasks that own
        // disjoint [lo, hi) index spans (see the Send/Sync rationale on
        // the type), so no two writers alias this element.
        unsafe { *row[d.index as usize].get() = d.value };
        InsertOutcome::Fresh
    }

    fn contains(&self, t: &Tuple) -> bool {
        let d = Data::from_tuple(t);
        self.read(d.iter, d.index as usize) == d.value
    }

    fn len(&self) -> usize {
        2 * self.rows[0].len()
    }

    fn for_each(&self, f: &mut dyn FnMut(&Tuple) -> bool) {
        for iter in 0..2i64 {
            for index in 0..self.rows[0].len() {
                let t = Tuple::new(
                    self.def.id,
                    Data {
                        iter,
                        index: index as i64,
                        value: self.read(iter, index),
                    }
                    .into_values(),
                );
                if !f(&t) {
                    return;
                }
            }
        }
    }

    fn retain(&self, _keep: &dyn Fn(&Tuple) -> bool) {
        // The two-generation scheme *is* the lifetime policy: only rows
        // iter%2 and (iter+1)%2 ever exist.
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The built program plus handles.
pub struct MedianApp {
    pub program: Arc<Program>,
    pub data: TableId,
    pub result: TableId,
}

/// Builds the median program over `data`, with `regions` parallel
/// partition tasks per iteration.
pub fn build_program(data_len: usize, regions: usize) -> MedianApp {
    assert!(data_len >= 1);
    let regions = regions.clamp(1, data_len);
    let mut p = ProgramBuilder::new();

    // The typed declarations above carry the schemas; the Data relation
    // is held in the custom two-row array store.
    let data_t = p.relation::<Data>().id();
    let _seg = p.relation::<Seg>().id();
    let _ctl = p.relation::<Ctl>().id();
    let _part_req = p.relation::<PartReq>().id();
    let _res = p.relation::<Res>().id();
    let _collect = p.relation::<Collect>().id();
    let result = p.relation::<MedianResult>().id();
    // Stage ordering within an iteration, and the final answer last.
    p.order(&["SegS", "CtlS", "ReqS", "ResS", "ColS"]);
    p.order(&["DataS", "CtlS"]);
    p.order(&["Int", "Ans"]);

    // Controller: fan out one PartReq per active segment, or finish
    // directly when few elements remain.
    let ctl_model = {
        let mut cx = ModelCtx::new();
        let same_iter = cx.out("iter").eq_(&cx.trig("iter"));
        let seg_q = cx.q("iter").eq_(&cx.trig("iter"));
        CausalityModel {
            ctx: cx,
            invariants: vec![],
            puts: vec![
                PutModel {
                    out_table: "PartReq".into(),
                    guard: vec![],
                    bindings: same_iter.clone(),
                    label: "fan out partition tasks".into(),
                },
                PutModel {
                    out_table: "MedianResult".into(),
                    guard: vec![],
                    bindings: vec![],
                    label: "direct answer".into(),
                },
            ],
            queries: vec![QueryModel {
                q_table: "Seg".into(),
                guard: vec![],
                bindings: seg_q,
                label: "read segments".into(),
            }],
        }
    };
    p.rule_rel_with_model("control", ctl_model, move |ctx, t: Ctl| {
        let (iter, k) = (t.iter, t.k as usize);
        let mut segments: Vec<(usize, usize)> = Vec::new();
        ctx.for_each_rel(Seg::query().eq(Seg::iter, iter), |s: Seg| {
            segments.push((s.lo as usize, s.hi as usize));
            true
        });
        segments.sort();
        let store = ctx.store(ctx.rel::<Data>().id());
        let arr = store
            .as_any()
            .downcast_ref::<MedianArrayStore>()
            .expect("Data uses MedianArrayStore");
        let total: usize = segments.iter().map(|&(lo, hi)| hi - lo).sum();
        if total <= DIRECT_THRESHOLD {
            // Gather, sort, answer.
            let mut vals = arr.gather(iter, &segments);
            vals.sort_by(f64::total_cmp);
            ctx.put_rel(MedianResult { value: vals[k] });
            return;
        }
        let pivot = arr.first_of(iter, &segments).expect("non-empty");
        for (region, &(lo, hi)) in segments.iter().enumerate() {
            ctx.put_rel(PartReq {
                iter,
                region: region as i64,
                lo: lo as i64,
                hi: hi as i64,
                pivot,
            });
        }
    });

    // Partition task: the parallel phase.
    let part_model = {
        let mut cx = ModelCtx::new();
        let same_iter = cx.out("iter").eq_(&cx.trig("iter"));
        CausalityModel {
            ctx: cx,
            invariants: vec![],
            puts: vec![
                PutModel {
                    out_table: "Res".into(),
                    guard: vec![],
                    bindings: same_iter.clone(),
                    label: "report partition sizes".into(),
                },
                PutModel {
                    out_table: "Collect".into(),
                    guard: vec![],
                    bindings: same_iter,
                    label: "schedule collection".into(),
                },
            ],
            queries: vec![],
        }
    };
    p.rule_rel_with_model("partition", part_model, move |ctx, t: PartReq| {
        let (lo, hi) = (t.lo as usize, t.hi as usize);
        let store = ctx.store(ctx.rel::<Data>().id());
        let arr = store
            .as_any()
            .downcast_ref::<MedianArrayStore>()
            .expect("Data uses MedianArrayStore");
        let (less, eq) = if hi > lo {
            arr.partition3(t.iter, lo, hi, t.pivot)
        } else {
            (0, 0)
        };
        ctx.put_rel(Res {
            iter: t.iter,
            region: t.region,
            less: less as i64,
            eq: eq as i64,
        });
        // One Collect per iteration (set semantics dedups the copies).
        ctx.put_rel(Collect { iter: t.iter });
    });

    // Collector: aggregate the region reports and recurse on the side
    // containing the k-th element.
    let col_model = {
        let mut cx = ModelCtx::new();
        let next_iter = cx.out("iter").eq_(&(cx.trig("iter") + 1));
        let same_iter_q = |cx: &mut ModelCtx| cx.q("iter").eq_(&cx.trig("iter"));
        let q_res = same_iter_q(&mut cx);
        let q_seg = same_iter_q(&mut cx);
        let q_ctl = same_iter_q(&mut cx);
        let q_req = same_iter_q(&mut cx);
        CausalityModel {
            ctx: cx,
            invariants: vec![],
            puts: vec![
                PutModel {
                    out_table: "Seg".into(),
                    guard: vec![],
                    bindings: next_iter.clone(),
                    label: "next generation segments".into(),
                },
                PutModel {
                    out_table: "Ctl".into(),
                    guard: vec![],
                    bindings: next_iter,
                    label: "next controller".into(),
                },
                PutModel {
                    out_table: "MedianResult".into(),
                    guard: vec![],
                    bindings: vec![],
                    label: "answer is the pivot".into(),
                },
            ],
            queries: vec![
                QueryModel {
                    q_table: "Res".into(),
                    guard: vec![],
                    bindings: q_res,
                    label: "aggregate partition sizes".into(),
                },
                QueryModel {
                    q_table: "Seg".into(),
                    guard: vec![],
                    bindings: q_seg,
                    label: "segment bounds".into(),
                },
                QueryModel {
                    q_table: "Ctl".into(),
                    guard: vec![],
                    bindings: q_ctl,
                    label: "current k".into(),
                },
                QueryModel {
                    q_table: "PartReq".into(),
                    guard: vec![],
                    bindings: q_req,
                    label: "current pivot".into(),
                },
            ],
        }
    };
    p.rule_rel_with_model("collect", col_model, move |ctx, t: Collect| {
        let iter = t.iter;
        // Aggregate the per-region reports, in region order.
        let mut rows: Vec<(i64, usize, usize, usize, usize)> = Vec::new(); // region, lo, hi, less, eq
        ctx.for_each_rel(Seg::query().eq(Seg::iter, iter), |s: Seg| {
            rows.push((s.region, s.lo as usize, s.hi as usize, 0, 0));
            true
        });
        rows.sort();
        ctx.for_each_rel(Res::query().eq(Res::iter, iter), |r: Res| {
            if let Some(row) = rows.iter_mut().find(|row| row.0 == r.region) {
                row.3 = r.less as usize;
                row.4 = r.eq as usize;
            }
            true
        });
        let k = ctx
            .get_uniq_rel(Ctl::query().eq(Ctl::iter, iter))
            .expect("controller exists")
            .k as usize;
        let pivot = ctx
            .get_uniq_rel(PartReq::query().eq(PartReq::iter, iter))
            .expect("partition request exists")
            .pivot;
        let total_less: usize = rows.iter().map(|r| r.3).sum();
        let total_eq: usize = rows.iter().map(|r| r.4).sum();

        if k >= total_less && k < total_less + total_eq {
            // The k-th element equals the pivot.
            ctx.put_rel(MedianResult { value: pivot });
            return;
        }
        let (next_k, pick_less) = if k < total_less {
            (k, true)
        } else {
            (k - total_less - total_eq, false)
        };
        for &(region, lo, hi, less, eq) in &rows {
            let (nlo, nhi) = if pick_less {
                (lo, lo + less)
            } else {
                (lo + less + eq, hi)
            };
            ctx.put_rel(Seg {
                iter: iter + 1,
                region,
                lo: nlo as i64,
                hi: nhi as i64,
            });
        }
        ctx.put_rel(Ctl {
            iter: iter + 1,
            k: next_k as i64,
        });
    });

    // Initial segments (N consecutive regions) and the first controller.
    let k = (data_len - 1) / 2; // lower median
    let per = data_len.div_ceil(regions);
    for region in 0..regions {
        let lo = region * per;
        let hi = ((region + 1) * per).min(data_len);
        p.put_rel(Seg {
            iter: 0,
            region: region as i64,
            lo: lo.min(data_len) as i64,
            hi: hi as i64,
        });
    }
    p.put_rel(Ctl {
        iter: 0,
        k: k as i64,
    });

    MedianApp {
        program: Arc::new(p.build().expect("median program builds")),
        data: data_t,
        result,
    }
}

/// Runs the JStar median program. Returns the lower median.
pub fn run_jstar(data: Arc<Vec<f64>>, regions: usize, config: EngineConfig) -> Result<f64> {
    run_jstar_report(data, regions, config).map(|(m, _)| m)
}

/// Like [`run_jstar`], but also returns the engine's [`RunReport`] so
/// the benches can read pipeline and scheduling counters.
pub fn run_jstar_report(
    data: Arc<Vec<f64>>,
    regions: usize,
    config: EngineConfig,
) -> Result<(f64, RunReport)> {
    let app = build_program(data.len(), regions);
    let config = config.store(app.data, MedianArrayStore::factory(data));
    let mut engine = Engine::new(Arc::clone(&app.program), config);
    let report = engine.run()?;
    let results = engine.collect_rel(MedianResult::query());
    match results.first() {
        Some(r) => Ok((r.value, report)),
        None => Err(JStarError::Other(
            "median program produced no result".into(),
        )),
    }
}

/// Baseline 1 — full sort (the paper's Java version "uses `Arrays.sort` (a
/// double-pivot quicksort) to find the median").
pub fn median_by_sort(data: &[f64]) -> f64 {
    let mut v = data.to_vec();
    v.sort_by(f64::total_cmp);
    v[(v.len() - 1) / 2]
}

/// Baseline 2 — quickselect (the paper's JStar-side idea: "a
/// median-specific variant of quicksort that partitions the whole array,
/// but then recurses only into the half of the array that contains the
/// median").
pub fn median_by_quickselect(data: &[f64]) -> f64 {
    let mut v = data.to_vec();
    let mut k = (v.len() - 1) / 2;
    let mut len = v.len();
    loop {
        let active = &mut v[..len];
        if active.len() <= 8 {
            active.sort_by(f64::total_cmp);
            return active[k];
        }
        let pivot = active[active.len() / 2];
        let less = active.iter().filter(|&&x| x < pivot).count();
        let eq = active.iter().filter(|&&x| x == pivot).count();
        if k >= less && k < less + eq {
            return pivot;
        }
        // Keep only the half containing the k-th element, compacted to the
        // front of the working buffer ("recurses only into the half of the
        // array that contains the median").
        let keep: Vec<f64> = if k < less {
            active.iter().copied().filter(|&x| x < pivot).collect()
        } else {
            k -= less + eq;
            active.iter().copied().filter(|&x| x > pivot).collect()
        };
        len = keep.len();
        v[..len].copy_from_slice(&keep);
    }
}

/// Deterministic random data.
pub fn gen_data(n: usize, seed: u64) -> Vec<f64> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_passes_strict_validation() {
        let app = build_program(1000, 4);
        app.program.validate_strict().unwrap();
    }

    #[test]
    fn baselines_agree() {
        for n in [1, 2, 5, 64, 65, 1001, 5000] {
            let data = gen_data(n, n as u64);
            assert_eq!(
                median_by_sort(&data),
                median_by_quickselect(&data),
                "n = {n}"
            );
        }
    }

    #[test]
    fn jstar_matches_sort_sequential() {
        for (n, regions) in [(100, 1), (1000, 4), (4097, 7)] {
            let data = Arc::new(gen_data(n, 99 + n as u64));
            let want = median_by_sort(&data);
            let got = run_jstar(Arc::clone(&data), regions, EngineConfig::sequential()).unwrap();
            assert_eq!(got, want, "n={n} regions={regions}");
        }
    }

    #[test]
    fn jstar_matches_sort_parallel() {
        let data = Arc::new(gen_data(10_000, 7));
        let want = median_by_sort(&data);
        for threads in [2, 4] {
            let got = run_jstar(Arc::clone(&data), 8, EngineConfig::parallel(threads)).unwrap();
            assert_eq!(got, want, "{threads} threads");
        }
    }

    #[test]
    fn duplicate_heavy_data() {
        // Many equal values: the eq-block termination path must fire.
        let mut data = vec![5.0f64; 500];
        data.extend(gen_data(500, 3));
        let data = Arc::new(data);
        let want = median_by_sort(&data);
        let got = run_jstar(Arc::clone(&data), 4, EngineConfig::sequential()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn tiny_inputs_direct_path() {
        for n in [1usize, 2, 3, 63, 64] {
            let data = Arc::new(gen_data(n, n as u64 * 13));
            let want = median_by_sort(&data);
            let got = run_jstar(Arc::clone(&data), 4, EngineConfig::sequential()).unwrap();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn already_sorted_data() {
        let data: Arc<Vec<f64>> = Arc::new((0..2000).map(|i| i as f64).collect());
        let got = run_jstar(Arc::clone(&data), 4, EngineConfig::sequential()).unwrap();
        assert_eq!(got, 999.5_f64.floor());
    }

    #[test]
    fn partition3_is_a_correct_three_way_partition() {
        let def = Arc::new(
            jstar_core::schema::TableDefBuilder::standalone("Data")
                .col_int("iter")
                .col_int("index")
                .col_double("value")
                .key(2)
                .orderby(&[strat("Int"), seq("iter"), strat("DataS")])
                .build_def(TableId(0)),
        );
        let data = gen_data(100, 5);
        let store = MedianArrayStore::new(def, &data);
        let pivot = data[50];
        let (less, eq) = store.partition3(0, 10, 90, pivot);
        let expect_less = data[10..90].iter().filter(|&&x| x < pivot).count();
        let expect_eq = data[10..90].iter().filter(|&&x| x == pivot).count();
        assert_eq!((less, eq), (expect_less, expect_eq));
        // Row 1 layout: [less | eq | greater] within [10, 90).
        for i in 10..10 + less {
            assert!(store.read(1, i) < pivot);
        }
        for i in 10 + less..10 + less + eq {
            assert_eq!(store.read(1, i), pivot);
        }
        for i in 10 + less + eq..90 {
            assert!(store.read(1, i) > pivot);
        }
    }

    #[test]
    fn gather_and_first_of() {
        let def = Arc::new(
            jstar_core::schema::TableDefBuilder::standalone("Data")
                .col_int("iter")
                .col_int("index")
                .col_double("value")
                .key(2)
                .orderby(&[strat("Int")])
                .build_def(TableId(0)),
        );
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let store = MedianArrayStore::new(def, &data);
        assert_eq!(store.gather(0, &[(0, 2), (3, 5)]), vec![1.0, 2.0, 4.0, 5.0]);
        assert_eq!(store.first_of(0, &[(2, 2), (3, 4)]), Some(4.0));
        assert_eq!(store.first_of(0, &[(2, 2)]), None);
    }
}
