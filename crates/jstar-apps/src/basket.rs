//! Basket scoring — a three-relation analytics pipeline exercising the
//! multi-stage join path on *asymmetric* relations (unlike
//! [`crate::triangles`], whose three legs all probe `Edge`).
//!
//! Synthetic retail data: `Order(user, item)` facts join through the
//! `Catalog(item, cat)` dimension to the `Weight(cat, w)` table, and
//! each matched chain emits one `Score(user, item, w)` — the weighted
//! basket entry. The whole chain is **one two-stage join rule**
//! ([`ProgramBuilder::rule_rel_join2`]): stage 1 resolves the item's
//! category, stage 2 resolves the category's weight, and the leading
//! key of stage 2 comes from stage 1's tuple — the shape the engine's
//! leapfrog walk seeks on. A hand-rolled nested-loop baseline
//! ([`baseline_total`]) pins down the expected aggregate.

use jstar_core::jstar_table;
use jstar_core::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;

jstar_table! {
    /// One data-loading task (parallel class).
    #[derive(Copy, Eq)]
    pub Load(int id) orderby (Load, par id)
}

jstar_table! {
    /// A purchase fact: user bought item. The join trigger.
    #[derive(Copy, Eq)]
    pub Order(int user, int item) orderby (Ord)
}

jstar_table! {
    /// Dimension: item → category. Joined by stage 1.
    #[derive(Copy, Eq)]
    pub Catalog(int item, int cat) orderby (Cat)
}

jstar_table! {
    /// Dimension: category → weight. Joined by stage 2.
    #[derive(Copy, Eq)]
    pub Weight(int cat, int w) orderby (Wt)
}

jstar_table! {
    /// One weighted basket entry per matched Order chain.
    #[derive(Copy, Eq)]
    pub Score(int user, int item, int w) orderby (Score)
}

/// Synthetic-data parameters.
#[derive(Debug, Clone, Copy)]
pub struct BasketSpec {
    /// Number of order facts.
    pub orders: u32,
    /// Number of catalogued items (item ids are drawn from `0..items`,
    /// but only even ids are catalogued — so roughly half the orders
    /// join through, keeping the anti-join case exercised).
    pub items: u32,
    /// Number of categories; only categories `0..cats/2` carry weights.
    pub cats: u32,
    /// Loading tasks.
    pub tasks: u32,
    /// RNG seed.
    pub seed: u64,
}

impl BasketSpec {
    pub fn new(orders: u32, items: u32, cats: u32, tasks: u32, seed: u64) -> Self {
        assert!(items >= 1 && cats >= 1);
        BasketSpec {
            orders,
            items,
            cats: cats.max(2),
            tasks: tasks.max(1),
            seed,
        }
    }
}

/// The order facts as `(user, item)` pairs — a deterministic function
/// of the spec, shared by the rules and the baseline.
pub fn order_list(spec: &BasketSpec) -> Vec<(i64, i64)> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x9E37_79B9_7F4A_7C15);
    (0..spec.orders)
        .map(|_| {
            let user = rng.gen_range(0..spec.orders.max(1) / 4 + 1) as i64;
            let item = rng.gen_range(0..spec.items) as i64;
            (user, item)
        })
        .collect()
}

/// Category of a catalogued item (even ids only).
fn item_cat(item: i64, cats: u32) -> Option<i64> {
    (item % 2 == 0).then_some(item % cats as i64)
}

/// Weight of a weighted category (the lower half only).
fn cat_weight(cat: i64, cats: u32) -> Option<i64> {
    (cat < (cats / 2) as i64).then_some(cat * 10 + 1)
}

/// Nested-loop baseline: the sum of weights over all orders whose item
/// is catalogued into a weighted category.
pub fn baseline_total(spec: &BasketSpec) -> i64 {
    order_list(spec)
        .iter()
        .filter_map(|&(_, item)| item_cat(item, spec.cats))
        .filter_map(|cat| cat_weight(cat, spec.cats))
        .sum()
}

/// The built program plus handles.
pub struct BasketApp {
    pub program: Arc<Program>,
    pub order: TableId,
    pub catalog: TableId,
    pub weight: TableId,
    pub score: TableId,
}

/// Builds the basket-scoring program.
pub fn build_program(spec: BasketSpec) -> BasketApp {
    let mut p = ProgramBuilder::new();
    let load = p.relation::<Load>().id();
    let order = p.relation::<Order>().id();
    let catalog = p.relation::<Catalog>().id();
    let weight = p.relation::<Weight>().id();
    let score = p.relation::<Score>().id();
    p.order(&["Load", "Cat", "Wt", "Ord", "Score"]);

    // Loading: task 0 owns the dimensions, every task owns a slice of
    // the order facts. Dimension tables land in earlier strata than the
    // Order trigger, so every probe sees the complete build side.
    let orders = Arc::new(order_list(&spec));
    let (tasks, items, cats) = (spec.tasks, spec.items, spec.cats);
    let load_orders = Arc::clone(&orders);
    p.rule_rel("load-data", move |ctx, t: Load| {
        if t.id == 0 {
            for item in 0..items as i64 {
                if let Some(cat) = item_cat(item, cats) {
                    ctx.put_rel(Catalog { item, cat });
                }
            }
            for cat in 0..cats as i64 {
                if let Some(w) = cat_weight(cat, cats) {
                    ctx.put_rel(Weight { cat, w });
                }
            }
        }
        let per = load_orders.len().div_ceil(tasks as usize).max(1);
        let lo = (t.id as usize * per).min(load_orders.len());
        let hi = ((t.id as usize + 1) * per).min(load_orders.len());
        for &(user, item) in &load_orders[lo..hi] {
            ctx.put_rel(Order { user, item });
        }
    });

    // The whole chain in one rule: Order → Catalog (by item) → Weight
    // (by the category stage 1 produced).
    p.rule_rel_join2(
        "score-baskets",
        JoinOn::new().eq(Order::item, Catalog::item),
        JoinOn2::new().eq_p(Catalog::cat, Weight::cat),
        |_o: &Order, _c: &Catalog, _w: &Weight| true,
        |ctx, o: &Order, _c: &Catalog, w: &Weight| {
            ctx.put_rel(Score {
                user: o.user,
                item: o.item,
                w: w.w,
            });
        },
    );

    for task in 0..spec.tasks {
        p.put_rel(Load { id: task as i64 });
    }
    let _ = load;

    BasketApp {
        program: Arc::new(p.build().expect("basket program builds")),
        order,
        catalog,
        weight,
        score,
    }
}

/// Runs the program and returns the total score weight (each Score
/// tuple counted once — `Score` is a set, so duplicate orders collapse;
/// the baseline is compared per distinct chain via [`run_total`]'s
/// caller using matching dedup).
pub fn run_report(spec: BasketSpec, config: EngineConfig) -> Result<(i64, RunReport)> {
    let app = build_program(spec);
    let mut engine = Engine::new(Arc::clone(&app.program), config);
    let report = engine.run()?;
    let mut total = 0i64;
    engine.for_each_rel_gamma(Score::query(), |s: Score| {
        total += s.w;
        true
    });
    Ok((total, report))
}

/// Deduplicated baseline matching [`run_report`]'s set semantics: the
/// sum of weights over **distinct** `(user, item)` orders that join
/// through (the `Score` table is a set, so duplicate facts collapse).
pub fn baseline_distinct_total(spec: &BasketSpec) -> i64 {
    let mut seen = std::collections::BTreeSet::new();
    order_list(spec)
        .iter()
        .filter(|&&pair| seen.insert(pair))
        .filter_map(|&(_, item)| item_cat(item, spec.cats))
        .filter_map(|cat| cat_weight(cat, spec.cats))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> BasketSpec {
        BasketSpec::new(400, 50, 12, 4, 7)
    }

    #[test]
    fn order_list_is_deterministic() {
        let spec = small_spec();
        assert_eq!(order_list(&spec), order_list(&spec));
        assert_eq!(order_list(&spec).len(), spec.orders as usize);
    }

    #[test]
    fn rules_match_baseline_sequential_and_parallel() {
        let spec = small_spec();
        let want = baseline_distinct_total(&spec);
        assert!(want > 0, "spec should score something");
        let (seq, _) = run_report(spec, EngineConfig::sequential()).unwrap();
        assert_eq!(seq, want);
        for threads in [2, 4] {
            let (par, _) = run_report(spec, EngineConfig::parallel(threads)).unwrap();
            assert_eq!(par, want, "{threads} threads");
        }
    }

    #[test]
    fn strategies_agree_and_leapfrog_searches_less() {
        let spec = small_spec();
        let want = baseline_distinct_total(&spec);
        let (lf, lf_r) = run_report(spec, EngineConfig::sequential().delta_join_from(4)).unwrap();
        let (hp, hp_r) = run_report(
            spec,
            EngineConfig::sequential()
                .join_strategy(JoinStrategy::HashProbe)
                .delta_join_from(4),
        )
        .unwrap();
        assert_eq!(lf, want);
        assert_eq!(hp, want);
        assert!(lf_r.delta_join_classes > 0 && hp_r.delta_join_classes > 0);
        assert!(
            lf_r.gamma_probes + lf_r.join_seeks < hp_r.gamma_probes,
            "lf probes={} seeks={} vs hp probes={}",
            lf_r.gamma_probes,
            lf_r.join_seeks,
            hp_r.gamma_probes
        );
    }

    #[test]
    fn plan_carries_two_asymmetric_stages() {
        let app = build_program(small_spec());
        let rules = app.program.rules();
        let plan = rules[1].plan.as_ref().expect("score-baskets has a plan");
        assert_eq!(plan.stages.len(), 2);
        assert_eq!(plan.stages[0].probe_table, app.catalog);
        assert_eq!(plan.stages[1].probe_table, app.weight);
        assert_eq!(
            plan.stages[0].keys,
            vec![((0, 1), 0)],
            "Order.item = Catalog.item"
        );
        assert_eq!(
            plan.stages[1].keys,
            vec![((1, 1), 0)],
            "Catalog.cat = Weight.cat"
        );
    }

    #[test]
    fn empty_edges_of_the_data() {
        // No orders at all, and specs where nothing joins through.
        let none = BasketSpec::new(0, 10, 4, 2, 1);
        assert_eq!(run_report(none, EngineConfig::sequential()).unwrap().0, 0);
        // items=1 means only item 0 exists (catalogued, cat 0, weighted).
        let tiny = BasketSpec::new(5, 1, 2, 1, 3);
        let want = baseline_distinct_total(&tiny);
        assert_eq!(
            run_report(tiny, EngineConfig::sequential()).unwrap().0,
            want
        );
    }
}
