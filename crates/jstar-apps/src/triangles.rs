//! Triangle counting over a random undirected graph — the delta-join
//! showcase workload.
//!
//! The program lists each triangle `a < b < c` exactly once via two
//! relational join rules:
//!
//! 1. `Probe(a, b) ⋈ Edge(b, c)` with `b < c` emits the wedge
//!    `Wedge(a, b, c)` — a path `a–b–c` with strictly increasing
//!    endpoints, and
//! 2. `Wedge(a, b, c) ⋈ Edge(c, a)` closes the wedge into
//!    `Triangle(a, b, c)` (edges are stored in both directions, so the
//!    closing edge exists iff `a ~ c`).
//!
//! Both rules are registered through [`ProgramBuilder::rule_rel_join`],
//! so they carry inspectable [`JoinPlan`]s and every `Probe`/`Wedge`
//! stratum drains through the engine's batched delta-join pass: one
//! grouped Gamma probe per distinct join key instead of one probe per
//! tuple. The `delta_join` section of `bench_hotpath` A/B-compares the
//! two modes on this program and records the probe counters.

use jstar_core::jstar_table;
use jstar_core::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

jstar_table! {
    /// One graph-loading task (parallel class, like Dijkstra's GenTask).
    #[derive(Copy, Eq)]
    pub Load(int id) orderby (Load, par id)
}

jstar_table! {
    /// Directed half-edge; every undirected edge is stored both ways so
    /// joins can probe by source vertex.
    #[derive(Copy, Eq)]
    pub Edge(int from, int to) orderby (Edge)
}

jstar_table! {
    /// One probe per undirected edge `a < b`; the trigger of the wedge
    /// join. All probes share a single equivalence class.
    #[derive(Copy, Eq)]
    pub Probe(int a, int b) orderby (Probe)
}

jstar_table! {
    /// An open path `a–b–c` with `a < b < c`.
    #[derive(Copy, Eq)]
    pub Wedge(int a, int b, int c) orderby (Wedge)
}

jstar_table! {
    /// A closed triangle `a < b < c`, listed exactly once.
    #[derive(Copy, Eq)]
    pub Triangle(int a, int b, int c) orderby (Tri)
}

/// Random-graph parameters.
#[derive(Debug, Clone, Copy)]
pub struct TriSpec {
    /// Number of vertices.
    pub n: u32,
    /// Number of distinct undirected edges requested (the generator
    /// deduplicates, so the final count can be slightly lower).
    pub m: u32,
    /// Graph-loading tasks.
    pub tasks: u32,
    /// RNG seed.
    pub seed: u64,
}

impl TriSpec {
    pub fn new(n: u32, m: u32, tasks: u32, seed: u64) -> Self {
        assert!(n >= 1);
        TriSpec {
            n,
            m,
            tasks: tasks.max(1),
            seed,
        }
    }
}

/// The graph as a sorted, duplicate-free list of undirected edges
/// `(a, b)` with `a < b` — a deterministic function of the spec, so the
/// JStar rules and the baseline see exactly the same graph.
pub fn edge_list(spec: &TriSpec) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xA076_1D64_78BD_642F);
    let mut set = BTreeSet::new();
    if spec.n >= 2 {
        for _ in 0..spec.m {
            let a = rng.gen_range(0..spec.n);
            let b = rng.gen_range(0..spec.n);
            if a != b {
                set.insert((a.min(b), a.max(b)));
            }
        }
    }
    set.into_iter().collect()
}

/// The contiguous slice of [`edge_list`] owned by one loading task.
pub fn task_edges(edges: &[(u32, u32)], tasks: u32, task: u32) -> &[(u32, u32)] {
    let per = edges.len().div_ceil(tasks as usize).max(1);
    let lo = (task as usize * per).min(edges.len());
    let hi = ((task as usize + 1) * per).min(edges.len());
    &edges[lo..hi]
}

/// Hand-coded baseline: for each edge `a < b`, count the common
/// neighbours `c > b` via sorted higher-adjacency intersection. Each
/// triangle `a < b < c` is counted exactly once, matching the rules.
pub fn triangles_baseline(spec: &TriSpec) -> u64 {
    let edges = edge_list(spec);
    let mut higher = vec![Vec::new(); spec.n as usize];
    for &(a, b) in &edges {
        higher[a as usize].push(b);
    }
    // BTreeSet iteration already yields each adjacency list sorted.
    let mut count = 0u64;
    for &(a, b) in &edges {
        let (mut xs, mut ys) = (higher[a as usize].iter(), higher[b as usize].iter());
        let (mut x, mut y) = (xs.next(), ys.next());
        while let (Some(&cx), Some(&cy)) = (x, y) {
            match cx.cmp(&cy) {
                std::cmp::Ordering::Less => x = xs.next(),
                std::cmp::Ordering::Greater => y = ys.next(),
                std::cmp::Ordering::Equal => {
                    if cx > b {
                        count += 1;
                    }
                    x = xs.next();
                    y = ys.next();
                }
            }
        }
    }
    count
}

/// The built program plus handles.
pub struct TrianglesApp {
    pub program: Arc<Program>,
    pub load: TableId,
    pub edge: TableId,
    pub probe: TableId,
    pub wedge: TableId,
    pub tri: TableId,
}

/// Builds the triangle-counting program.
pub fn build_program(spec: TriSpec) -> TrianglesApp {
    let mut p = ProgramBuilder::new();

    let load = p.relation::<Load>().id();
    let edge = p.relation::<Edge>().id();
    let probe = p.relation::<Probe>().id();
    let wedge = p.relation::<Wedge>().id();
    let tri = p.relation::<Triangle>().id();
    // Strictly increasing strata: every put points forward, so the Law
    // of Causality holds by construction (no recursion anywhere).
    p.order(&["Load", "Edge", "Probe", "Wedge", "Tri"]);

    // Graph loading: each task stores its slice of the edge list both
    // ways and seeds one Probe per undirected edge. Opaque rule — no
    // join plan, always per-tuple.
    let edges = Arc::new(edge_list(&spec));
    let tasks = spec.tasks;
    let load_edges = Arc::clone(&edges);
    p.rule_rel("load-graph", move |ctx, t: Load| {
        for &(a, b) in task_edges(&load_edges, tasks, t.id as u32) {
            ctx.put_rel(Edge {
                from: a as i64,
                to: b as i64,
            });
            ctx.put_rel(Edge {
                from: b as i64,
                to: a as i64,
            });
            ctx.put_rel(Probe {
                a: a as i64,
                b: b as i64,
            });
        }
    });

    // Wedge rule: extend the edge a–b (a < b) by a higher neighbour of
    // b. Join key b = e.from; the residual b < e.to orders the path.
    p.rule_rel_join(
        "wedges",
        JoinOn::new().eq(Probe::b, Edge::from),
        |p: &Probe, e: &Edge| p.b < e.to,
        |ctx, p: &Probe, e: &Edge| {
            ctx.put_rel(Wedge {
                a: p.a,
                b: p.b,
                c: e.to,
            });
        },
    );

    // Closing rule: the wedge a–b–c is a triangle iff the edge c→a
    // exists (both directions are stored, so this needs no residual).
    p.rule_rel_join(
        "close-triangles",
        JoinOn::new()
            .eq(Wedge::c, Edge::from)
            .eq(Wedge::a, Edge::to),
        |_w: &Wedge, _e: &Edge| true,
        |ctx, w: &Wedge, _e: &Edge| {
            ctx.put_rel(Triangle {
                a: w.a,
                b: w.b,
                c: w.c,
            });
        },
    );

    for task in 0..spec.tasks {
        p.put_rel(Load { id: task as i64 });
    }

    TrianglesApp {
        program: Arc::new(p.build().expect("triangles program builds")),
        load,
        edge,
        probe,
        wedge,
        tri,
    }
}

/// Per-app optimisation flags in the paper's style: `Edge` never
/// triggers a rule (`-noDelta`) and is only ever probed by its `from`
/// field, so it gets a sharded hash index; `Load` and `Probe` are
/// trigger-only (`-noGamma`).
pub fn optimised_config(app: &TrianglesApp, config: EngineConfig) -> EngineConfig {
    config.no_delta(app.edge).no_gamma(app.load).store(
        app.edge,
        StoreKind::Hash {
            index_fields: vec!["from".into()],
            shards: 32,
        },
    )
}

/// Runs the JStar program and returns the triangle count.
pub fn run_jstar(spec: TriSpec, config: EngineConfig) -> Result<u64> {
    run_jstar_report(spec, config).map(|(count, _)| count)
}

/// Like [`run_jstar`], but also returns the engine's [`RunReport`] so
/// the benches can read the delta-join and Gamma probe counters.
pub fn run_jstar_report(spec: TriSpec, config: EngineConfig) -> Result<(u64, RunReport)> {
    let app = build_program(spec);
    let config = optimised_config(&app, config);
    let mut engine = Engine::new(Arc::clone(&app.program), config);
    let report = engine.run()?;
    let mut count = 0u64;
    engine.for_each_rel_gamma(Triangle::query(), |_t: Triangle| {
        count += 1;
        true
    });
    Ok((count, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> TriSpec {
        TriSpec::new(60, 150, 4, 42)
    }

    #[test]
    fn edge_list_is_deterministic_sorted_and_duplicate_free() {
        let spec = small_spec();
        let a = edge_list(&spec);
        assert_eq!(a, edge_list(&spec));
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&(x, y)| x < y && y < spec.n));
        let concat: Vec<_> = (0..spec.tasks)
            .flat_map(|t| task_edges(&a, spec.tasks, t).iter().copied())
            .collect();
        assert_eq!(concat, a, "tasks partition the edge list");
    }

    #[test]
    fn baseline_counts_a_known_graph() {
        // K4 has 4 triangles; removing one edge leaves 2.
        let k4 = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let count = |edges: &[(u32, u32)]| {
            let mut higher = vec![Vec::new(); 4];
            for &(a, b) in edges {
                higher[a as usize].push(b);
            }
            let mut c = 0u64;
            for &(a, b) in edges {
                for x in &higher[a as usize] {
                    if *x > b && higher[b as usize].contains(x) {
                        c += 1;
                    }
                }
            }
            c
        };
        assert_eq!(count(&k4), 4);
        assert_eq!(count(&k4[1..]), 2);
    }

    #[test]
    fn jstar_matches_baseline_sequential() {
        let spec = small_spec();
        let want = triangles_baseline(&spec);
        assert!(want > 0, "spec should contain triangles");
        let got = run_jstar(spec, EngineConfig::sequential()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn jstar_matches_baseline_parallel() {
        let spec = small_spec();
        let want = triangles_baseline(&spec);
        for threads in [2, 4] {
            let got = run_jstar(spec, EngineConfig::parallel(threads)).unwrap();
            assert_eq!(got, want, "{threads} threads");
        }
    }

    #[test]
    fn delta_join_and_per_tuple_agree_and_counters_move() {
        let spec = small_spec();
        let want = triangles_baseline(&spec);

        let (dj_count, dj) =
            run_jstar_report(spec, EngineConfig::sequential().delta_join_from(4)).unwrap();
        let (pt_count, pt) =
            run_jstar_report(spec, EngineConfig::sequential().delta_join_from(usize::MAX)).unwrap();

        assert_eq!(dj_count, want);
        assert_eq!(pt_count, want);
        assert!(dj.delta_join_classes > 0, "batched mode engaged: {dj:?}");
        assert!(dj.delta_join_probes > 0);
        assert!(dj.delta_join_build_tuples > 0);
        assert_eq!(pt.delta_join_classes, 0, "per-tuple mode engaged: {pt:?}");
        assert!(
            dj.gamma_probes < pt.gamma_probes,
            "batching shrinks probe count: dj={} pt={}",
            dj.gamma_probes,
            pt.gamma_probes
        );
    }

    #[test]
    fn join_rules_expose_plans() {
        let app = build_program(small_spec());
        let rules = app.program.rules();
        assert!(rules[0].plan.is_none(), "load-graph is opaque");
        let wedge_plan = rules[1].plan.as_ref().expect("wedges has a plan");
        assert_eq!(wedge_plan.probe_table, app.edge);
        assert_eq!(wedge_plan.keys, vec![(1, 0)]);
        let close_plan = rules[2].plan.as_ref().expect("close-triangles has a plan");
        assert_eq!(close_plan.keys, vec![(2, 0), (0, 1)]);
    }

    #[test]
    fn tiny_graphs() {
        for (n, m) in [(1, 0), (2, 1), (3, 3)] {
            let spec = TriSpec::new(n, m, 2, 7);
            let want = triangles_baseline(&spec);
            let got = run_jstar(spec, EngineConfig::sequential()).unwrap();
            assert_eq!(got, want, "n={n} m={m}");
        }
    }
}
