//! Triangle counting over a random undirected graph — the multi-way
//! join showcase workload.
//!
//! The program lists each triangle `a < b < c` exactly once via **one
//! two-stage join rule**: the trigger `Probe(a, b)` extends through
//! `Edge(b, c)` (stage 1, residual `b < c`) and closes through
//! `Edge(c, a)` (stage 2) in a single descent — no intermediate wedge
//! relation is materialised. The rule is registered through
//! [`ProgramBuilder::rule_rel_join2`], so it carries an inspectable
//! two-stage [`JoinPlan`] and every `Probe` stratum drains through the
//! engine's batched delta-join pass. Under the default
//! [`JoinStrategy::Leapfrog`] that pass is one coordinated sorted-merge
//! walk over the `Edge` indexes per class; under
//! [`JoinStrategy::HashProbe`] it is the PR 8 behaviour of one hash
//! probe per distinct key. The `wco_join` section of `bench_hotpath`
//! A/B-compares the strategies on this program and records the
//! probe/seek counters.
//!
//! The same count is also available *after* the run as a read-side
//! query: [`count_via_join3`] evaluates
//! `join3::<Edge, Edge, Edge>()` with a leapfrog intersection over the
//! stored half-edges — the query-layer face of the same walk.

use jstar_core::jstar_table;
use jstar_core::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

jstar_table! {
    /// One graph-loading task (parallel class, like Dijkstra's GenTask).
    #[derive(Copy, Eq)]
    pub Load(int id) orderby (Load, par id)
}

jstar_table! {
    /// Directed half-edge; every undirected edge is stored both ways so
    /// joins can probe by source vertex.
    #[derive(Copy, Eq)]
    pub Edge(int from, int to) orderby (Edge)
}

jstar_table! {
    /// One probe per undirected edge `a < b`; the trigger of the
    /// triangle join. All probes share a single equivalence class.
    #[derive(Copy, Eq)]
    pub Probe(int a, int b) orderby (Probe)
}

jstar_table! {
    /// A closed triangle `a < b < c`, listed exactly once.
    #[derive(Copy, Eq)]
    pub Triangle(int a, int b, int c) orderby (Tri)
}

/// Random-graph parameters.
#[derive(Debug, Clone, Copy)]
pub struct TriSpec {
    /// Number of vertices.
    pub n: u32,
    /// Number of distinct undirected edges requested (the generator
    /// deduplicates, so the final count can be slightly lower).
    pub m: u32,
    /// Graph-loading tasks.
    pub tasks: u32,
    /// RNG seed.
    pub seed: u64,
}

impl TriSpec {
    pub fn new(n: u32, m: u32, tasks: u32, seed: u64) -> Self {
        assert!(n >= 1);
        TriSpec {
            n,
            m,
            tasks: tasks.max(1),
            seed,
        }
    }
}

/// The graph as a sorted, duplicate-free list of undirected edges
/// `(a, b)` with `a < b` — a deterministic function of the spec, so the
/// JStar rules and the baseline see exactly the same graph.
pub fn edge_list(spec: &TriSpec) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xA076_1D64_78BD_642F);
    let mut set = BTreeSet::new();
    if spec.n >= 2 {
        for _ in 0..spec.m {
            let a = rng.gen_range(0..spec.n);
            let b = rng.gen_range(0..spec.n);
            if a != b {
                set.insert((a.min(b), a.max(b)));
            }
        }
    }
    set.into_iter().collect()
}

/// The contiguous slice of [`edge_list`] owned by one loading task.
pub fn task_edges(edges: &[(u32, u32)], tasks: u32, task: u32) -> &[(u32, u32)] {
    let per = edges.len().div_ceil(tasks as usize).max(1);
    let lo = (task as usize * per).min(edges.len());
    let hi = ((task as usize + 1) * per).min(edges.len());
    &edges[lo..hi]
}

/// Hand-coded baseline: for each edge `a < b`, count the common
/// neighbours `c > b` via sorted higher-adjacency intersection. Each
/// triangle `a < b < c` is counted exactly once, matching the rules.
pub fn triangles_baseline(spec: &TriSpec) -> u64 {
    let edges = edge_list(spec);
    let mut higher = vec![Vec::new(); spec.n as usize];
    for &(a, b) in &edges {
        higher[a as usize].push(b);
    }
    // BTreeSet iteration already yields each adjacency list sorted.
    let mut count = 0u64;
    for &(a, b) in &edges {
        let (mut xs, mut ys) = (higher[a as usize].iter(), higher[b as usize].iter());
        let (mut x, mut y) = (xs.next(), ys.next());
        while let (Some(&cx), Some(&cy)) = (x, y) {
            match cx.cmp(&cy) {
                std::cmp::Ordering::Less => x = xs.next(),
                std::cmp::Ordering::Greater => y = ys.next(),
                std::cmp::Ordering::Equal => {
                    if cx > b {
                        count += 1;
                    }
                    x = xs.next();
                    y = ys.next();
                }
            }
        }
    }
    count
}

/// The built program plus handles.
pub struct TrianglesApp {
    pub program: Arc<Program>,
    pub load: TableId,
    pub edge: TableId,
    pub probe: TableId,
    pub tri: TableId,
}

/// Builds the triangle-counting program.
pub fn build_program(spec: TriSpec) -> TrianglesApp {
    let mut p = ProgramBuilder::new();

    let load = p.relation::<Load>().id();
    let edge = p.relation::<Edge>().id();
    let probe = p.relation::<Probe>().id();
    let tri = p.relation::<Triangle>().id();
    // Strictly increasing strata: every put points forward, so the Law
    // of Causality holds by construction (no recursion anywhere).
    p.order(&["Load", "Edge", "Probe", "Tri"]);

    // Graph loading: each task stores its slice of the edge list both
    // ways and seeds one Probe per undirected edge. Opaque rule — no
    // join plan, always per-tuple.
    let edges = Arc::new(edge_list(&spec));
    let tasks = spec.tasks;
    let load_edges = Arc::clone(&edges);
    p.rule_rel("load-graph", move |ctx, t: Load| {
        for &(a, b) in task_edges(&load_edges, tasks, t.id as u32) {
            ctx.put_rel(Edge {
                from: a as i64,
                to: b as i64,
            });
            ctx.put_rel(Edge {
                from: b as i64,
                to: a as i64,
            });
            ctx.put_rel(Probe {
                a: a as i64,
                b: b as i64,
            });
        }
    });

    // The whole triangle in one rule: extend the edge a–b (a < b) by a
    // higher neighbour c of b (stage 1, residual b < c), then require
    // the closing edge c→a (stage 2 — both directions are stored, so it
    // exists iff a ~ c). Stage 2's leading key comes from stage 1's
    // tuple, which is what the leapfrog walk seeks on.
    p.rule_rel_join2(
        "triangles",
        JoinOn::new().eq(Probe::b, Edge::from),
        JoinOn2::new()
            .eq_p(Edge::to, Edge::from)
            .eq_t(Probe::a, Edge::to),
        |p: &Probe, e1: &Edge, _e2: &Edge| p.b < e1.to,
        |ctx, p: &Probe, e1: &Edge, _e2: &Edge| {
            ctx.put_rel(Triangle {
                a: p.a,
                b: p.b,
                c: e1.to,
            });
        },
    );

    for task in 0..spec.tasks {
        p.put_rel(Load { id: task as i64 });
    }

    TrianglesApp {
        program: Arc::new(p.build().expect("triangles program builds")),
        load,
        edge,
        probe,
        tri,
    }
}

/// Per-app optimisation flags in the paper's style: `Edge` never
/// triggers a rule (`-noDelta`) and is only ever probed by its `from`
/// field, so it gets a sharded hash index; `Load` and `Probe` are
/// trigger-only (`-noGamma`).
pub fn optimised_config(app: &TrianglesApp, config: EngineConfig) -> EngineConfig {
    config.no_delta(app.edge).no_gamma(app.load).store(
        app.edge,
        StoreKind::Hash {
            index_fields: vec!["from".into()],
            shards: 32,
        },
    )
}

/// Runs the JStar program and returns the triangle count.
pub fn run_jstar(spec: TriSpec, config: EngineConfig) -> Result<u64> {
    run_jstar_report(spec, config).map(|(count, _)| count)
}

/// Like [`run_jstar`], but also returns the engine's [`RunReport`] so
/// the benches can read the join probe/seek counters.
pub fn run_jstar_report(spec: TriSpec, config: EngineConfig) -> Result<(u64, RunReport)> {
    let app = build_program(spec);
    let config = optimised_config(&app, config);
    let mut engine = Engine::new(Arc::clone(&app.program), config);
    let report = engine.run()?;
    let mut count = 0u64;
    engine.for_each_rel_gamma(Triangle::query(), |_t: Triangle| {
        count += 1;
        true
    });
    Ok((count, report))
}

/// Counts triangles *after* a run as a read-side query: one ternary
/// `join3::<Edge, Edge, Edge>()` over the stored half-edges, evaluated
/// by [`Engine::join3_rel`]'s leapfrog walk. Each triangle appears in
/// six half-edge orientations; the `x < y < z` filter keeps exactly
/// one.
pub fn count_via_join3(engine: &Engine) -> u64 {
    let mut count = 0u64;
    engine.join3_rel(
        join3::<Edge, Edge, Edge>()
            .on_ab(Edge::to, Edge::from)
            .on_bc(Edge::to, Edge::from)
            .on_ac(Edge::from, Edge::to),
        |a: Edge, b: Edge, _c: Edge| {
            if a.from < a.to && a.to < b.to {
                count += 1;
            }
        },
    );
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> TriSpec {
        TriSpec::new(60, 150, 4, 42)
    }

    #[test]
    fn edge_list_is_deterministic_sorted_and_duplicate_free() {
        let spec = small_spec();
        let a = edge_list(&spec);
        assert_eq!(a, edge_list(&spec));
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&(x, y)| x < y && y < spec.n));
        let concat: Vec<_> = (0..spec.tasks)
            .flat_map(|t| task_edges(&a, spec.tasks, t).iter().copied())
            .collect();
        assert_eq!(concat, a, "tasks partition the edge list");
    }

    #[test]
    fn baseline_counts_a_known_graph() {
        // K4 has 4 triangles; removing one edge leaves 2.
        let k4 = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let count = |edges: &[(u32, u32)]| {
            let mut higher = vec![Vec::new(); 4];
            for &(a, b) in edges {
                higher[a as usize].push(b);
            }
            let mut c = 0u64;
            for &(a, b) in edges {
                for x in &higher[a as usize] {
                    if *x > b && higher[b as usize].contains(x) {
                        c += 1;
                    }
                }
            }
            c
        };
        assert_eq!(count(&k4), 4);
        assert_eq!(count(&k4[1..]), 2);
    }

    #[test]
    fn jstar_matches_baseline_sequential() {
        let spec = small_spec();
        let want = triangles_baseline(&spec);
        assert!(want > 0, "spec should contain triangles");
        let got = run_jstar(spec, EngineConfig::sequential()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn jstar_matches_baseline_parallel() {
        let spec = small_spec();
        let want = triangles_baseline(&spec);
        for threads in [2, 4] {
            let got = run_jstar(spec, EngineConfig::parallel(threads)).unwrap();
            assert_eq!(got, want, "{threads} threads");
        }
    }

    #[test]
    fn delta_join_and_per_tuple_agree_and_counters_move() {
        let spec = small_spec();
        let want = triangles_baseline(&spec);

        // Pin the PR 8 hash-probe strategy: this test is about the
        // batched-vs-per-tuple axis, not the walk.
        let hash = |threshold| {
            EngineConfig::sequential()
                .join_strategy(JoinStrategy::HashProbe)
                .delta_join_from(threshold)
        };
        let (dj_count, dj) = run_jstar_report(spec, hash(4)).unwrap();
        let (pt_count, pt) = run_jstar_report(spec, hash(usize::MAX)).unwrap();

        assert_eq!(dj_count, want);
        assert_eq!(pt_count, want);
        assert!(dj.delta_join_classes > 0, "batched mode engaged: {dj:?}");
        assert!(dj.delta_join_probes > 0);
        assert!(dj.delta_join_build_tuples > 0);
        assert_eq!(pt.delta_join_classes, 0, "per-tuple mode engaged: {pt:?}");
        assert!(
            dj.gamma_probes < pt.gamma_probes,
            "batching shrinks probe count: dj={} pt={}",
            dj.gamma_probes,
            pt.gamma_probes
        );
    }

    #[test]
    fn leapfrog_walk_beats_hash_probes_and_counts_seeks() {
        let spec = small_spec();
        let want = triangles_baseline(&spec);

        let (lf_count, lf) = run_jstar_report(
            spec,
            EngineConfig::sequential().delta_join_from(4), // Leapfrog is the default
        )
        .unwrap();
        let (hp_count, hp) = run_jstar_report(
            spec,
            EngineConfig::sequential()
                .join_strategy(JoinStrategy::HashProbe)
                .delta_join_from(4),
        )
        .unwrap();

        assert_eq!(lf_count, want);
        assert_eq!(hp_count, want);
        assert!(lf.delta_join_classes > 0, "walk engaged: {lf:?}");
        assert!(lf.join_cursor_opens > 0, "cursors opened: {lf:?}");
        assert_eq!(hp.join_cursor_opens, 0, "hash mode opens no cursors");
        assert_eq!(lf.delta_join_probes, 0, "walk mode issues no hash probes");
        assert!(
            lf.gamma_probes + lf.join_seeks < hp.gamma_probes,
            "merged walk does less store searching: lf probes={} seeks={} vs hp probes={}",
            lf.gamma_probes,
            lf.join_seeks,
            hp.gamma_probes
        );
    }

    #[test]
    fn join_rules_expose_plans() {
        let app = build_program(small_spec());
        let rules = app.program.rules();
        assert!(rules[0].plan.is_none(), "load-graph is opaque");
        let plan = rules[1].plan.as_ref().expect("triangles has a plan");
        assert_eq!(plan.stages.len(), 2, "one rule, two probe stages");
        assert_eq!(plan.stages[0].probe_table, app.edge);
        assert_eq!(
            plan.stages[0].keys,
            vec![((0, 1), 0)],
            "Probe.b = Edge.from"
        );
        assert_eq!(plan.stages[1].probe_table, app.edge);
        assert_eq!(
            plan.stages[1].keys,
            vec![((1, 1), 0), ((0, 0), 1)],
            "e1.to = e2.from (the walked column), Probe.a = e2.to (residual)"
        );
        assert_eq!(
            plan.first_stage().trigger_keys().collect::<Vec<_>>(),
            vec![(1, 0)]
        );
    }

    #[test]
    fn read_side_join3_matches_rule_count() {
        let spec = small_spec();
        let want = triangles_baseline(&spec);
        let app = build_program(spec);
        let config = optimised_config(&app, EngineConfig::sequential());
        let mut engine = Engine::new(Arc::clone(&app.program), config);
        engine.run().unwrap();
        let opens = |e: &Engine| {
            e.stats()
                .join_cursor_opens
                .load(std::sync::atomic::Ordering::Relaxed)
        };
        let before = opens(&engine);
        assert_eq!(count_via_join3(&engine), want);
        // The read-side walk opened three cursors and charged them to
        // the same counters the rule-side walk uses.
        assert_eq!(opens(&engine), before + 3);
    }

    #[test]
    fn tiny_graphs() {
        for (n, m) in [(1, 0), (2, 1), (3, 3)] {
            let spec = TriSpec::new(n, m, 2, 7);
            let want = triangles_baseline(&spec);
            let got = run_jstar(spec, EngineConfig::sequential()).unwrap();
            assert_eq!(got, want, "n={n} m={m}");
        }
    }
}
