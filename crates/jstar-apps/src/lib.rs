//! # jstar-apps — the paper's case-study programs (§3, §6)
//!
//! Each case study provides (a) the JStar program exactly as the paper
//! sketches it (tables, `order` declarations, rules, per-app optimisation
//! flags), (b) the hand-coded "Java-equivalent" baseline the paper compares
//! against in Fig. 6, and (c) small helpers the benches use to sweep
//! parameters.
//!
//! | Module | Paper | Program |
//! |---|---|---|
//! | [`ship`] | §3, Fig. 2 | Space-Invaders ship movement (the tutorial example) |
//! | [`pvwatts`] | §6.2–6.3, Figs. 4/7/8/9/10, Table 1 | map-reduce monthly solar statistics, plus the Disruptor redesign |
//! | [`matmul`] | §6.4, Fig. 11 | naive N×N matrix multiplication, one task per output row |
//! | [`shortest_path`] | §6.5, Fig. 5/12 | Dijkstra over a random graph, Delta tree as priority queue |
//! | [`median`] | §6.6, Fig. 13 | iterative pivot-partition median of a large double array |
//! | [`triangles`] | — | triangle counting via a two-stage join rule, the multi-way-join showcase |
//! | [`basket`] | — | three-relation basket scoring, the asymmetric join-chain workload |
//!
//! The paper's 192 MB `large1000.csv` input and its testbed hardware are
//! not available; [`pvwatts::generate_csv`] synthesises equivalent data at
//! any scale (see DESIGN.md for the substitution argument).

pub mod basket;
pub mod matmul;
pub mod median;
pub mod pvwatts;
pub mod ship;
pub mod shortest_path;
pub mod triangles;
