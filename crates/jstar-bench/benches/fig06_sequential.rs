//! Fig. 6 — absolute sequential speed of the JStar case-study programs
//! versus the hand-coded baselines.
//!
//! Paper bars (Intel i7-2600, seconds): PvWatts 4.7 vs 5.9 (JStar wins via
//! its byte-level CSV library); MatrixMult 21.9/8.1 vs 7.5/1.0 (JStar
//! loses; transposing wins big); Dijkstra 3.8 vs 1.8 (JStar ≈2× slower —
//! Delta tree vs PriorityQueue); Median 6.8 vs 13.4 (JStar wins —
//! partition-based vs full sort).
//!
//! Expected shape here: JStar ≥ baseline for Dijkstra; JStar beats the
//! full-sort Median baseline; the transposed multiply beats naive; the
//! byte-level CSV path beats the String-allocating one.

use criterion::{criterion_group, criterion_main, Criterion};
use jstar_apps::pvwatts::{self, InputOrder, Variant};
use jstar_apps::{matmul, median, shortest_path};
use jstar_core::prelude::*;
use std::hint::black_box;
use std::sync::Arc;

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_sequential");
    g.sample_size(10);

    // --- PvWatts (scaled to 1 year of records) ---
    let csv = Arc::new(pvwatts::generate_csv(8_760, InputOrder::Chronological));
    g.bench_function("pvwatts/jstar", |b| {
        b.iter(|| {
            pvwatts::run_jstar(
                Arc::clone(&csv),
                1,
                Variant::HashStore,
                EngineConfig::sequential(),
            )
            .unwrap()
        })
    });
    g.bench_function("pvwatts/java_string_style", |b| {
        b.iter(|| pvwatts::baseline::monthly_means_string_style(black_box(&csv)))
    });
    g.bench_function("pvwatts/byte_csv_style", |b| {
        b.iter(|| pvwatts::baseline::monthly_means_byte_style(black_box(&csv)))
    });

    // --- MatrixMult ---
    let n = 128;
    let a = Arc::new(matmul::gen_matrix(n, 11));
    let bm = Arc::new(matmul::gen_matrix(n, 22));
    g.bench_function("matmul/jstar", |b| {
        b.iter(|| {
            matmul::run_jstar(
                n,
                Arc::clone(&a),
                Arc::clone(&bm),
                EngineConfig::sequential(),
            )
            .unwrap()
        })
    });
    g.bench_function("matmul/naive", |b| {
        b.iter(|| matmul::multiply_naive(black_box(&a), black_box(&bm), n))
    });
    g.bench_function("matmul/transposed", |b| {
        b.iter(|| matmul::multiply_transposed(black_box(&a), black_box(&bm), n))
    });

    // --- ShortestPath ---
    let spec = shortest_path::GraphSpec::new(5_000, 5_000, 8, 42);
    let adj = shortest_path::adjacency(&spec);
    g.bench_function("dijkstra/jstar", |b| {
        b.iter(|| shortest_path::run_jstar(spec, EngineConfig::sequential()).unwrap())
    });
    g.bench_function("dijkstra/binary_heap", |b| {
        b.iter(|| shortest_path::dijkstra_baseline(black_box(&adj), 0))
    });

    // --- Median ---
    let data = Arc::new(median::gen_data(200_000, 7));
    g.bench_function("median/jstar", |b| {
        b.iter(|| median::run_jstar(Arc::clone(&data), 12, EngineConfig::sequential()).unwrap())
    });
    g.bench_function("median/full_sort", |b| {
        b.iter(|| median::median_by_sort(black_box(&data)))
    });
    g.bench_function("median/quickselect", |b| {
        b.iter(|| median::median_by_quickselect(black_box(&data)))
    });

    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
