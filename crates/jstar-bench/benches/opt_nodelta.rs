//! §6.2 — the `-noDelta=PvWatts` optimisation.
//!
//! Paper: "the sequential execution time is 23.0 seconds without the
//! optimisation and 8.44 seconds with the optimisation" (≈2.7×). Expected
//! shape: the naive variant (every PvWatts tuple staged in the Delta tree,
//! then moved to Gamma) is several times slower than the `-noDelta`
//! variants, and the hash/custom stores further beat the ordered default.

use criterion::{criterion_group, criterion_main, Criterion};
use jstar_apps::pvwatts::{self, InputOrder, Variant};
use jstar_core::prelude::*;
use std::sync::Arc;

fn bench_nodelta(c: &mut Criterion) {
    let csv = Arc::new(pvwatts::generate_csv(8_760, InputOrder::Chronological));
    let mut g = c.benchmark_group("opt_nodelta");
    g.sample_size(10);
    for variant in Variant::all() {
        g.bench_function(variant.name(), |b| {
            b.iter(|| {
                pvwatts::run_jstar(Arc::clone(&csv), 1, variant, EngineConfig::sequential())
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_nodelta);
criterion_main!(benches);
