//! Fig. 10 — execution times for the Disruptor version of PvWatts,
//! unsorted (chronological) vs sorted (round-robin) input.
//!
//! Paper (i7-2600, 4 cores + HT): with 8 threads the Disruptor version
//! gets 3.31× over sequential JStar on the default input and 2.52× on the
//! sorted input — the sorted input "makes both the sequential and parallel
//! programs faster", so its *speedup* is lower even though its absolute
//! time is lower. Expected shape: round-robin absolute times ≤
//! chronological at high consumer counts (better load balance), and both
//! beat one consumer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jstar_apps::pvwatts::{self, DisruptorConfig, InputOrder};

fn bench_fig10(c: &mut Criterion) {
    let unsorted = pvwatts::generate_csv(8_760 * 2, InputOrder::Chronological);
    let sorted = pvwatts::generate_csv(8_760 * 2, InputOrder::RoundRobin);
    let mut g = c.benchmark_group("fig10_disruptor");
    g.sample_size(10);
    for (name, csv) in [("unsorted", &unsorted), ("sorted", &sorted)] {
        for consumers in [1usize, 4, 12] {
            let cfg = DisruptorConfig {
                consumers,
                ..Default::default()
            };
            g.bench_with_input(BenchmarkId::new(name, consumers), &cfg, |b, cfg| {
                b.iter(|| pvwatts::disruptor_version::run(csv, *cfg))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
