//! Ablation: the paper's multi-level Delta **tree** versus a flat
//! whole-key ordered map (and versus the raw structures on a synthetic
//! Dijkstra-shaped stream).
//!
//! §6.5/§8 blame Dijkstra's mediocre scaling on the Delta tree ("it seems
//! to be a problem with the scalability of our Delta tree data
//! structures"); this bench isolates the Delta structure choice from the
//! rest of the engine. The tree shares prefixes across levels; the flat
//! map clones and compares whole keys. Shape expectation: similar at small
//! key depth (PvWatts-like, depth 1), tree advantage growing with key
//! depth and churn (Dijkstra-like, depth 3 with interleaved insert/pop).

use criterion::{criterion_group, criterion_main, Criterion};
use jstar_apps::shortest_path::{self, GraphSpec};
use jstar_core::delta::DeltaTree;
use jstar_core::delta::{DeltaKind, FlatDelta};
use jstar_core::orderby::{KeyPart, OrderKey};
use jstar_core::prelude::*;
use std::hint::black_box;

/// Synthetic Dijkstra-shaped churn: pop the min class, push a few tuples
/// slightly in the future, repeat.
fn churn_tree(seed_keys: &[(OrderKey, Tuple)], rounds: usize) -> usize {
    let mut tree = DeltaTree::new();
    for (k, t) in seed_keys {
        tree.insert(k, t.clone());
    }
    let mut processed = 0;
    for _ in 0..rounds {
        let Some((key, class)) = tree.pop_min_class() else {
            break;
        };
        processed += class.len();
        if let Some(KeyPart::Seq(Value::Int(d))) = key.0.get(1) {
            for (i, t) in class.iter().enumerate() {
                let mut k = key.clone();
                k.0[1] = KeyPart::Seq(Value::Int(d + 1 + (i % 3) as i64));
                tree.insert(&k, t.clone());
            }
        }
    }
    processed
}

fn churn_flat(seed_keys: &[(OrderKey, Tuple)], rounds: usize) -> usize {
    let mut flat = FlatDelta::new();
    for (k, t) in seed_keys {
        flat.insert(k, t.clone());
    }
    let mut processed = 0;
    for _ in 0..rounds {
        let Some((key, class)) = flat.pop_min_class() else {
            break;
        };
        processed += class.len();
        if let Some(KeyPart::Seq(Value::Int(d))) = key.0.get(1) {
            for (i, t) in class.iter().enumerate() {
                let mut k = key.clone();
                k.0[1] = KeyPart::Seq(Value::Int(d + 1 + (i % 3) as i64));
                flat.insert(&k, t.clone());
            }
        }
    }
    processed
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_delta");
    g.sample_size(10);

    // Raw structure churn.
    let seed: Vec<(OrderKey, Tuple)> = (0..2_000i64)
        .map(|i| {
            (
                OrderKey(vec![
                    KeyPart::Strat(0),
                    KeyPart::Seq(Value::Int(i % 50)),
                    KeyPart::Strat(1),
                ]),
                Tuple::new(TableId(0), vec![Value::Int(i)]),
            )
        })
        .collect();
    g.bench_function("raw/tree_churn", |b| {
        b.iter(|| churn_tree(black_box(&seed), 500))
    });
    g.bench_function("raw/flat_churn", |b| {
        b.iter(|| churn_flat(black_box(&seed), 500))
    });

    // Whole-program ablation: Dijkstra with each Delta kind.
    let spec = GraphSpec::new(10_000, 10_000, 8, 5);
    for (name, kind) in [("tree", DeltaKind::Tree), ("flat", DeltaKind::Flat)] {
        g.bench_function(format!("dijkstra/{name}"), |b| {
            b.iter(|| {
                shortest_path::run_jstar(spec, EngineConfig::sequential().delta_kind(kind)).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
