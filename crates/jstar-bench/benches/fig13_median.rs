//! Fig. 13 — speedup of the Median-Finding program with varying fork/join
//! pool size.
//!
//! Paper (quad-CPU Xeon E7-8837, 32 cores): "good speedup 8.6X up to 12
//! cores, and then a more gradual speedup up to a maximum of 14X with 32
//! cores." Expected shape: strong scaling at low thread counts that turns
//! gradual as the per-iteration controller (a serial section) starts to
//! dominate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jstar_apps::median;
use jstar_bench::workloads::par_config;
use std::sync::Arc;

fn bench_fig13(c: &mut Criterion) {
    let data = Arc::new(median::gen_data(1_000_000, 99));
    let cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    let mut g = c.benchmark_group("fig13_median");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8, 16] {
        if threads > cores {
            continue;
        }
        let regions = (threads * 4).max(12);
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| median::run_jstar(Arc::clone(&data), regions, par_config(t)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
