//! Fig. 12 — speedup of the Dijkstra Shortest Path program with varying
//! fork/join pool size.
//!
//! Paper (dual-CPU Xeon W5590, 8 cores): "This has mediocre speedup, with
//! a maximum speedup of only 4.0 (8 cores). This seems to be because the
//! inner loop of the program puts several million Estimate tuples through
//! the Delta tree, which is still not sufficiently scalable to cope with a
//! large number of threads contending for the same branches of the tree."
//! Expected shape: clearly sublinear scaling that flattens early — far
//! below MatrixMult's curve at the same thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jstar_apps::shortest_path::{self, GraphSpec};
use jstar_bench::workloads::par_config;

fn bench_fig12(c: &mut Criterion) {
    let spec = GraphSpec::new(20_000, 20_000, 24, 0xD1785);
    let mut g = c.benchmark_group("fig12_dijkstra");
    g.sample_size(10);
    // Full sweep regardless of core count — see fig11's note.
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| shortest_path::run_jstar(spec, par_config(t)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
