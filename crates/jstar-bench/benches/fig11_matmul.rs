//! Fig. 11 — speedup of the naive Matrix Multiplication program with
//! varying fork/join pool size.
//!
//! Paper (quad-CPU Xeon E7-8837, 32 cores): "This program is
//! embarrassingly parallel, and has a high computation to communication
//! ratio (after applying compiler optimisations, only one tuple per row of
//! the output matrix needs to go through the delta set), so shows good
//! speedup up to 20 cores." Expected shape: near-linear scaling over the
//! sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jstar_apps::matmul;
use jstar_bench::workloads::par_config;
use std::sync::Arc;

fn bench_fig11(c: &mut Criterion) {
    let n = 192;
    let a = Arc::new(matmul::gen_matrix(n, 11));
    let bm = Arc::new(matmul::gen_matrix(n, 22));
    let mut g = c.benchmark_group("fig11_matmul");
    g.sample_size(10);
    // Run the full sweep even above the machine's core count: oversubscribed
    // pools are exactly where coordinator overhead shows, and small CI boxes
    // would otherwise reduce the figure to a single point.
    for threads in [1usize, 2, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| matmul::run_jstar(n, Arc::clone(&a), Arc::clone(&bm), par_config(t)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
