//! Table 1 — Disruptor options used for PvWatts.
//!
//! Paper: "The best results with a single producer and 12 consumers were
//! with the BlockingWaitStrategy for the consumers, a ring buffer of 1024
//! elements, and a producer batch size of 256." This bench sweeps the same
//! three knobs. Expected shape: batch 256 beats batch 1 clearly (gate
//! checks and signals are amortised); very small rings are slower
//! (producer back-pressure); wait strategies are within the same ballpark
//! on a machine with idle cores, with Blocking cheapest in CPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jstar_apps::pvwatts::{self, DisruptorConfig, InputOrder};
use jstar_disruptor::WaitStrategyKind;

fn bench_table1(c: &mut Criterion) {
    let csv = pvwatts::generate_csv(8_760 * 2, InputOrder::Chronological);
    let mut g = c.benchmark_group("table1_disruptor_tuning");
    g.sample_size(10);

    for wait in WaitStrategyKind::all() {
        let cfg = DisruptorConfig {
            consumers: 12,
            ring_size: 1024,
            batch: 256,
            wait,
        };
        g.bench_with_input(BenchmarkId::new("wait", wait.name()), &cfg, |b, cfg| {
            b.iter(|| pvwatts::disruptor_version::run(&csv, *cfg))
        });
    }
    for ring in [64usize, 1024, 4096] {
        let cfg = DisruptorConfig {
            consumers: 12,
            ring_size: ring,
            batch: 256.min(ring),
            wait: WaitStrategyKind::Blocking,
        };
        g.bench_with_input(BenchmarkId::new("ring", ring), &cfg, |b, cfg| {
            b.iter(|| pvwatts::disruptor_version::run(&csv, *cfg))
        });
    }
    for batch in [1usize, 256] {
        let cfg = DisruptorConfig {
            consumers: 12,
            ring_size: 1024,
            batch,
            wait: WaitStrategyKind::Blocking,
        };
        g.bench_with_input(BenchmarkId::new("batch", batch), &cfg, |b, cfg| {
            b.iter(|| pvwatts::disruptor_version::run(&csv, *cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
