//! Fig. 8 — PvWatts relative speedup with varying fork/join pool size,
//! with alternative data structures for the PvWatts Gamma table.
//!
//! Paper (dual-CPU Xeon W5590, 8 cores): "the relative speedup is
//! average, reaching nearly 4X speedup with 8 threads", with the custom
//! array-of-hashsets store beating the generic concurrent stores.
//! Expected shape: sublinear scaling that flattens towards 8 threads, and
//! CustomStore ≤ HashStore ≤ NoDelta in absolute time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jstar_apps::pvwatts::{self, InputOrder, Variant};
use jstar_bench::workloads::par_config;
use std::sync::Arc;

fn bench_fig8(c: &mut Criterion) {
    let csv = Arc::new(pvwatts::generate_csv(8_760 * 2, InputOrder::Chronological));
    let mut g = c.benchmark_group("fig08_pvwatts_speedup");
    g.sample_size(10);
    // Full sweep regardless of core count — see fig11's note.
    for variant in [Variant::NoDelta, Variant::HashStore, Variant::CustomStore] {
        for threads in [1usize, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(variant.name(), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        pvwatts::run_jstar(
                            Arc::clone(&csv),
                            threads.max(2),
                            variant,
                            par_config(threads),
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
