//! # jstar-bench — harness regenerating the paper's evaluation
//!
//! Every table and figure of §6 has (a) a Criterion bench under
//! `benches/` (CI-scaled workloads) and (b) an entry in the `figures`
//! binary (`cargo run --release -p jstar-bench --bin figures -- all`),
//! which prints the same rows/series the paper reports and is the source
//! of the numbers in `EXPERIMENTS.md`.
//!
//! Absolute numbers cannot match the paper (different machine, Rust vs
//! JVM, synthetic input); the *shape* is what is reproduced: who wins each
//! Fig. 6 bar, the ≈2.7× `-noDelta` gain of §6.2, sublinear PvWatts
//! scaling (Fig. 8), near-linear MatrixMult scaling (Fig. 11), mediocre
//! Dijkstra scaling (Fig. 12), and good-then-gradual Median scaling
//! (Fig. 13).
//!
//! Workload sizes scale with the `JSTAR_BENCH_SCALE` environment variable
//! (default 1.0; the paper's full sizes correspond to roughly 100).

use std::time::{Duration, Instant};

pub mod workloads;

/// Global workload scale factor (`JSTAR_BENCH_SCALE`, default 1).
pub fn scale() -> f64 {
    std::env::var("JSTAR_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Scales a base count, keeping at least `min`.
pub fn scaled(base: usize, min: usize) -> usize {
    ((base as f64 * scale()) as usize).max(min)
}

/// The fork/join pool sizes swept by the speedup figures, capped at the
/// machine's parallelism (the paper sweeps 1..8 on the Xeon W5590 and
/// 1..32 on the E7-8837).
pub fn thread_sweep() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    [1usize, 2, 4, 6, 8, 12, 16, 24, 32]
        .into_iter()
        .filter(|&t| t <= cores)
        .collect()
}

/// Times one run of `f`.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Median-of-`runs` wall time with one warm-up run (the paper ignores the
/// first measurements while HotSpot warms up; Rust needs no JIT warm-up,
/// but one discarded run hides page-faulting and file-cache effects).
pub fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    let _ = f(); // warm-up
    let mut times: Vec<Duration> = (0..runs.max(1)).map(|_| time_once(&mut f).1).collect();
    times.sort();
    times[times.len() / 2]
}

/// Formats a duration in seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Prints a Markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Relative speedup series: `times[0] / times[i]` (speedup vs the
/// 1-thread parallel run, the paper's "relative speedup").
pub fn speedups(times: &[Duration]) -> Vec<f64> {
    let base = times[0].as_secs_f64();
    times.iter().map(|t| base / t.as_secs_f64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_respects_minimum() {
        assert!(scaled(100, 10) >= 10);
    }

    #[test]
    fn thread_sweep_starts_at_one() {
        let sweep = thread_sweep();
        assert_eq!(sweep[0], 1);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn time_median_runs_function() {
        let mut calls = 0;
        let d = time_median(3, || calls += 1);
        assert_eq!(calls, 4, "warm-up + 3 timed runs");
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn speedups_are_relative_to_first() {
        let times = vec![
            Duration::from_millis(100),
            Duration::from_millis(50),
            Duration::from_millis(25),
        ];
        let s = speedups(&times);
        assert!((s[0] - 1.0).abs() < 1e-9);
        assert!((s[1] - 2.0).abs() < 1e-9);
        assert!((s[2] - 4.0).abs() < 1e-9);
    }
}
