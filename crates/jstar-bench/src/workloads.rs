//! Shared workload builders and measured runners, used by both the
//! Criterion benches and the `figures` binary so that every exhibit runs
//! exactly the same code.

use crate::{scaled, time_once};
use jstar_apps::basket::{self, BasketSpec};
use jstar_apps::matmul;
use jstar_apps::median;
use jstar_apps::pvwatts::{self, DisruptorConfig, InputOrder, Variant};
use jstar_apps::shortest_path::{self, GraphSpec};
use jstar_apps::triangles::{self, TriSpec};
use jstar_core::prelude::*;
use jstar_pool::ThreadPool;
use std::sync::Arc;
use std::time::Duration;

/// PvWatts CSV at the harness scale. Scale 1 ≈ 87,600 records (1 % of the
/// paper's 8,760,000); scale 100 = the paper's full size.
pub fn pvwatts_csv(order: InputOrder) -> Arc<Vec<u8>> {
    Arc::new(pvwatts::generate_csv(scaled(87_600, 8_760), order))
}

/// MatrixMult dimension. Scale 1 → N=400 (paper's N=1000 ≈ scale 16,
/// since cost grows as N³).
pub fn matmul_n() -> usize {
    (400.0 * crate::scale().cbrt()) as usize
}

/// Dijkstra graph spec. Scale 1 → 50k vertices / 100k edges (paper: 1M/2M
/// at scale 20).
pub fn dijkstra_spec() -> GraphSpec {
    let n = scaled(50_000, 1_000) as u32;
    GraphSpec::new(n, n, 24, 0xD1785)
}

/// Median array length. Scale 1 → 10M doubles (paper: 100M at scale 10).
pub fn median_len() -> usize {
    scaled(10_000_000, 10_000)
}

/// Triangle-counting graph spec (the delta-join exhibit). Scale 1 →
/// 20k vertices, ~80k undirected edges; the `Probe` and `Wedge` strata
/// pop as single wide classes, so this is the workload where batched
/// delta-join execution shows up directly in the Gamma probe counters.
pub fn triangles_spec() -> TriSpec {
    let n = scaled(20_000, 500) as u32;
    TriSpec::new(n, 4 * n, 24, 0x7A1A)
}

/// Basket-scoring spec (the index-cache parity exhibit). The `Order`
/// stratum pops as one wide class, so the two-stage join opens the
/// `Catalog` and `Weight` indexes exactly once each — the workload
/// where the cache can never hit and therefore must cost nothing
/// (triangles, which re-opens `Edge` across strata, is the arm where
/// hits pay). Scale 1 → 60k orders over a 2k-item catalogue.
pub fn basket_spec() -> BasketSpec {
    BasketSpec::new(scaled(60_000, 2_000) as u32, 2_000, 64, 8, 0xBA5C)
}

/// Runs JStar basket scoring; returns wall time.
pub fn run_basket(spec: BasketSpec, config: EngineConfig) -> Duration {
    let ((total, _), d) = time_once(|| basket::run_report(spec, config).expect("basket runs"));
    assert!(total > 0, "the bench baskets must score");
    d
}

/// Runs PvWatts under a variant/engine config; returns wall time.
pub fn run_pvwatts(
    csv: &Arc<Vec<u8>>,
    readers: usize,
    variant: Variant,
    config: EngineConfig,
) -> Duration {
    let (result, d) = time_once(|| {
        pvwatts::run_jstar(Arc::clone(csv), readers, variant, config).expect("pvwatts runs")
    });
    assert!(!result.0.is_empty());
    d
}

/// Runs the Disruptor PvWatts; returns wall time.
pub fn run_pvwatts_disruptor(csv: &[u8], cfg: DisruptorConfig) -> Duration {
    let (result, d) = time_once(|| pvwatts::disruptor_version::run(csv, cfg));
    assert!(!result.is_empty());
    d
}

/// Runs the hand-coded PvWatts baseline; returns wall time.
pub fn run_pvwatts_baseline(csv: &[u8]) -> Duration {
    let (result, d) = time_once(|| pvwatts::baseline::monthly_means_string_style(csv));
    assert!(!result.is_empty());
    d
}

/// Runs JStar MatrixMult; returns wall time.
pub fn run_matmul(
    n: usize,
    a: &Arc<Vec<i64>>,
    b: &Arc<Vec<i64>>,
    config: EngineConfig,
) -> Duration {
    let (c, d) = time_once(|| {
        matmul::run_jstar(n, Arc::clone(a), Arc::clone(b), config).expect("matmul runs")
    });
    assert_eq!(c.len(), n * n);
    d
}

/// Runs JStar Dijkstra; returns wall time.
pub fn run_dijkstra(spec: GraphSpec, config: EngineConfig) -> Duration {
    let (dist, d) = time_once(|| shortest_path::run_jstar(spec, config).expect("dijkstra runs"));
    assert_eq!(dist[0], 0);
    d
}

/// Runs JStar triangle counting; returns wall time.
pub fn run_triangles(spec: TriSpec, config: EngineConfig) -> Duration {
    let (count, d) = time_once(|| triangles::run_jstar(spec, config).expect("triangles runs"));
    assert!(count > 0, "the bench graph must contain triangles");
    d
}

/// Runs JStar Median; returns wall time.
pub fn run_median(data: &Arc<Vec<f64>>, regions: usize, config: EngineConfig) -> Duration {
    let (m, d) =
        time_once(|| median::run_jstar(Arc::clone(data), regions, config).expect("median runs"));
    assert!(m.is_finite());
    d
}

/// §6.3's phase breakdown of the optimised PvWatts program at one thread:
/// read+parse / create-and-insert-Gamma / SumMonth-Delta / reduce.
/// Returns `(name, seconds)` per phase.
pub fn pvwatts_phase_breakdown(csv: &[u8]) -> Vec<(&'static str, f64)> {
    use jstar_core::delta::DeltaTree;

    // Phase 1: reading and parsing the input.
    let (records, t_read) = time_once(|| {
        jstar_csv::records(csv)
            .filter_map(|r| pvwatts::data::parse_record(&r))
            .collect::<Vec<_>>()
    });

    // Phase 2: creating PvWatts tuples and inserting into their Gamma
    // table (hash store on year/month, as in the optimised program).
    let def = Arc::new(
        jstar_core::schema::TableDefBuilder::standalone("PvWatts")
            .col_int("year")
            .col_int("month")
            .col_int("day")
            .col_int("hour")
            .col_int("power")
            .orderby(&[strat("PvWatts")])
            .build_def(TableId(0)),
    );
    let store = jstar_core::gamma::HashStore::new(Arc::clone(&def), vec![0, 1], 16);
    let (tuples, t_insert) = time_once(|| {
        let mut tuples = Vec::with_capacity(records.len());
        for r in &records {
            let t = Tuple::new(
                def.id,
                vec![
                    Value::Int(r.year),
                    Value::Int(r.month),
                    Value::Int(r.day),
                    Value::Int(r.hour),
                    Value::Int(r.power),
                ],
            );
            jstar_core::gamma::TableStore::insert(&store, t.clone());
            tuples.push(t);
        }
        tuples
    });

    // Phase 3: creating SumMonth tuples and inserting into the Delta tree.
    let sum_def = Arc::new(
        jstar_core::schema::TableDefBuilder::standalone("SumMonth")
            .col_int("year")
            .col_int("month")
            .orderby(&[strat("SumMonth")])
            .build_def(TableId(1)),
    );
    let key = jstar_core::orderby::OrderKey(vec![jstar_core::orderby::KeyPart::Strat(1)]);
    let (_, t_delta) = time_once(|| {
        let mut tree = DeltaTree::new();
        for t in &tuples {
            let sm = Tuple::new(sum_def.id, vec![t.get(0).clone(), t.get(1).clone()]);
            tree.insert(&key, sm);
        }
        tree.len()
    });

    // Phase 4: processing the SumMonth tuples with the Statistics reducer.
    let months: std::collections::BTreeSet<(i64, i64)> =
        records.iter().map(|r| (r.year, r.month)).collect();
    let (_, t_reduce) = time_once(|| {
        let mut total = 0.0f64;
        for &(y, m) in &months {
            let q = Query::on(def.id).eq(0, y).eq(1, m);
            let mut stats = jstar_core::reduce::Stats::empty();
            jstar_core::gamma::TableStore::query(&store, &q, &mut |t| {
                stats.add(t.int(4) as f64);
                true
            });
            total += stats.mean();
        }
        total
    });

    vec![
        ("reading and parsing the input file", t_read.as_secs_f64()),
        (
            "creating PvWatts tuples and inserting into Gamma",
            t_insert.as_secs_f64(),
        ),
        (
            "creating SumMonth tuples and inserting into the Delta tree",
            t_delta.as_secs_f64(),
        ),
        (
            "processing SumMonth tuples (Statistics reducer)",
            t_reduce.as_secs_f64(),
        ),
    ]
}

/// Amdahl bound from a serial fraction and worker count (the paper:
/// `1/(0.169 + (1-0.169)/12) = 4.2×`).
pub fn amdahl(serial_fraction: f64, workers: usize) -> f64 {
    1.0 / (serial_fraction + (1.0 - serial_fraction) / workers as f64)
}

/// A shared pool for sweeps, rebuilt per thread count.
pub fn pool_of(threads: usize) -> Arc<ThreadPool> {
    Arc::new(ThreadPool::new(threads))
}

/// Parallel engine config on a shared pool.
pub fn par_config(threads: usize) -> EngineConfig {
    let mut c = EngineConfig::parallel(threads);
    c.pool = Some(pool_of(threads));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_matches_paper() {
        // §6.3: "the maximum speedup we could expect would be 4.2X".
        let bound = amdahl(0.169, 12);
        assert!((bound - 4.2).abs() < 0.05, "{bound}");
    }

    #[test]
    fn phase_breakdown_sums_to_positive_time() {
        let csv = pvwatts::generate_csv(5_000, InputOrder::Chronological);
        let phases = pvwatts_phase_breakdown(&csv);
        assert_eq!(phases.len(), 4);
        assert!(phases.iter().all(|&(_, t)| t >= 0.0));
        assert!(phases.iter().map(|&(_, t)| t).sum::<f64>() > 0.0);
    }

    #[test]
    fn runners_smoke() {
        let csv = Arc::new(pvwatts::generate_csv(2_000, InputOrder::Chronological));
        run_pvwatts(&csv, 2, Variant::HashStore, EngineConfig::sequential());
        run_pvwatts_baseline(&csv);
        run_pvwatts_disruptor(
            &csv,
            DisruptorConfig {
                consumers: 2,
                ..Default::default()
            },
        );
        let n = 8;
        let a = Arc::new(matmul::gen_matrix(n, 1));
        let b = Arc::new(matmul::gen_matrix(n, 2));
        run_matmul(n, &a, &b, EngineConfig::sequential());
        run_dijkstra(GraphSpec::new(200, 200, 4, 1), EngineConfig::sequential());
        run_triangles(TriSpec::new(100, 400, 4, 1), EngineConfig::sequential());
        run_basket(
            BasketSpec::new(400, 50, 12, 4, 7),
            EngineConfig::sequential(),
        );
        let data = Arc::new(median::gen_data(1_000, 1));
        run_median(&data, 4, EngineConfig::sequential());
    }
}
