//! Machine-readable hot-path benchmark: `BENCH_hotpath.json`.
//!
//! ```text
//! cargo run --release -p jstar-bench --bin bench_hotpath
//! cargo run --release -p jstar-bench --bin bench_hotpath -- \
//!     --out BENCH_hotpath.json --runs 5 --check-drain 0.5
//! ```
//!
//! Measures the three scaling exhibits the hot-path work targets —
//! fig8 (PvWatts, hash store), fig11 (MatrixMult) and fig12 (Dijkstra)
//! — at 1/4/8 threads, **interleaved**: each timing round runs every
//! (workload, threads) cell once before any cell repeats, so ambient
//! machine noise lands on all cells evenly and cross-run medians are
//! comparable. One instrumented Dijkstra run per thread count also
//! records the coordinator's drain/partition/merge split.
//!
//! The JSON output is the repo's perf trajectory: CI uploads it as an
//! artifact per commit, and `--check-drain <ceiling>` turns the run
//! into a regression gate: non-zero exit when the fig12 drain fraction
//! exceeds the ceiling (the coordinator has become the bottleneck
//! again) **or** when any pipelined depth in the `depth_sweep` section
//! (fig12 at 1 thread, `pipeline_depth` 0/1/2/4, interleaved) regresses
//! beyond a noise allowance vs. the alternating loop (depth 0) — at one
//! thread there is nothing to overlap with and no join to hide the
//! lookahead behind, so every depth must be ≥ parity: the pipeline and
//! speculation machinery must not cost when they cannot pay. The
//! instrumented rows also report `overlap_fraction` (the share of drain
//! work hidden behind class execution) and the sweep rows the lookahead
//! hit/miss counts of an instrumented run per depth.
//!
//! The `checkpoint_overhead` section times fig8 (PvWatts) with one
//! real full-Gamma checkpoint per run vs. off, interleaved; under
//! `--check-drain` the checkpointed median must stay within 1.10x of
//! the plain run — durability is sold as cheap, so the quiesce +
//! serialize + rename cycle failing that bound is a regression, not a
//! tuning choice.
//!
//! The `delta_join` and `wco_join` sections share one three-arm
//! triangle-counting measurement, interleaved per round at 1/4/8
//! threads: per-tuple nested-loop firing, batched delta-join with hash
//! probes (the PR 8 path), and batched delta-join lowered onto the
//! leapfrog merged-cursor walk (the default). `delta_join` keeps its
//! v3 shape from the per-tuple and hash arms; `wco_join` reports all
//! three arms with the Gamma probe / join seek / cursor-open counters,
//! so the "coordinated walk searches less than per-key probing" claim
//! is measured, not asserted — under `--check-drain` the leapfrog
//! arm's `gamma_probes + join_seeks` must stay strictly below the hash
//! arm's `gamma_probes` at every thread count. The `delta_join_parity`
//! section runs pairwise per-tuple vs. delta-join A/B on
//! fig8/fig11/fig12 — programs with *no* join rules, where mode
//! selection must be free; `wco_join_parity` does the same for the
//! join-strategy knob (hash vs. leapfrog on join-free programs); under
//! `--check-drain`, any parity median beyond 1.10x fails the run. The
//! `depth2_soak` section runs the full app suite once at
//! `pipeline_depth = 2`, recording per-app lookahead hit rates — the
//! data the ROADMAP wants before flipping the default depth.
//!
//! The `index_cache` section A/Bs the cached column indexes on the two
//! join exhibits: cold (`IndexCachePolicy::Off`, every cursor open
//! rebuilds) vs warm (`EagerRefresh`, generation-stamped entries
//! caught up from the claim-journal suffix), interleaved per round at
//! 1/4/8 threads, with the hit/miss/catch-up/build counters of one
//! instrumented run per cell in the JSON. Triangles re-opens the
//! `Edge` index across strata, so warm must hit and build strictly
//! fewer tuples; basket opens each dimension index exactly once, so
//! warm must merely never build more. `index_cache_parity` runs the
//! same cold/warm pairs on the join-free exhibits, where no cursor is
//! ever opened and the cache must be free: under `--check-drain` any
//! warm pair-ratio median beyond 1.05x cold fails the run.

use jstar_apps::matmul;
use jstar_apps::median;
use jstar_apps::pvwatts::{InputOrder, Variant};
use jstar_apps::shortest_path;
use jstar_apps::triangles;
use jstar_bench::scale;
use jstar_bench::workloads::*;
use jstar_core::prelude::*;
use jstar_pool::ThreadPool;
use std::sync::Arc;
use std::time::Duration;

const THREADS: [usize; 3] = [1, 4, 8];
const WORKLOADS: [&str; 3] = ["fig8_pvwatts", "fig11_matmul", "fig12_dijkstra"];

struct Args {
    out: String,
    runs: usize,
    check_drain: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_hotpath.json".into(),
        runs: 5,
        check_drain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().expect("--out <path>"),
            "--runs" => args.runs = it.next().and_then(|v| v.parse().ok()).expect("--runs <n>"),
            "--check-drain" => {
                args.check_drain = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--check-drain <frac>"),
                )
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args.runs = args.runs.max(5); // the trajectory promises ≥5-run medians
    args
}

fn median(samples: &[Duration]) -> Duration {
    let mut sorted = samples.to_vec();
    sorted.sort();
    sorted[sorted.len() / 2]
}

fn json_f(v: f64) -> String {
    // JSON has no NaN/Inf; clamp degenerate timer output to 0.
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".into()
    }
}

fn main() {
    let args = parse_args();
    let runs = args.runs;

    // Shared inputs, generated once.
    let csv = pvwatts_csv(InputOrder::Chronological);
    let n = matmul_n();
    let a = Arc::new(matmul::gen_matrix(n, 11));
    let b = Arc::new(matmul::gen_matrix(n, 22));
    let spec = dijkstra_spec();
    // One pool per thread count, reused across every run so pool
    // spin-up never pollutes a sample.
    let pools: Vec<Arc<ThreadPool>> = THREADS.iter().map(|&t| pool_of(t)).collect();
    let config = |ti: usize| {
        let mut c = EngineConfig::parallel(THREADS[ti]);
        c.pool = Some(Arc::clone(&pools[ti]));
        c
    };

    // Warm-up round (discarded): page the inputs in, warm allocators.
    for (ti, &threads) in THREADS.iter().enumerate() {
        run_pvwatts(&csv, threads.max(2), Variant::HashStore, config(ti));
        run_matmul(n, &a, &b, config(ti));
        run_dijkstra(spec, config(ti));
    }

    // Interleaved timing rounds: cells[workload][threads] collects one
    // sample per round.
    let mut cells: Vec<Vec<Vec<Duration>>> =
        vec![vec![Vec::with_capacity(runs); THREADS.len()]; WORKLOADS.len()];
    for _round in 0..runs {
        for ti in 0..THREADS.len() {
            cells[0][ti].push(run_pvwatts(
                &csv,
                THREADS[ti].max(2),
                Variant::HashStore,
                config(ti),
            ));
            cells[1][ti].push(run_matmul(n, &a, &b, config(ti)));
            cells[2][ti].push(run_dijkstra(spec, config(ti)));
        }
    }

    // Instrumented Dijkstra runs: the coordinator's drain split and the
    // pipeline's overlap share.
    struct DrainRow {
        threads: usize,
        drain_fraction: f64,
        overlap_fraction: f64,
        partition_secs: f64,
        merge_secs: f64,
        overlap_secs: f64,
        execute_secs: f64,
        steps: u64,
    }
    let drain_rows: Vec<DrainRow> = (0..THREADS.len())
        .map(|ti| {
            let (_, report) = shortest_path::run_jstar_report(spec, config(ti).record_steps())
                .expect("dijkstra runs");
            DrainRow {
                threads: THREADS[ti],
                drain_fraction: report.drain_fraction(),
                overlap_fraction: report.overlap_fraction(),
                partition_secs: report.partition_time.as_secs_f64(),
                merge_secs: report.merge_time.as_secs_f64(),
                overlap_secs: report.overlap_time.as_secs_f64(),
                execute_secs: report.execute_time.as_secs_f64(),
                steps: report.steps,
            }
        })
        .collect();

    // Depth sweep: fig12 at 1 thread, pipeline_depth 0/1/2/4,
    // interleaved so noise lands on every arm evenly. At one thread
    // there is nothing to overlap with and no join to hide the
    // lookahead behind, so every pipelined depth must be ≥ parity with
    // the alternating loop — this is the gate that catches the
    // pipeline/speculation machinery itself becoming overhead.
    const SWEEP_DEPTHS: [usize; 4] = [0, 1, 2, 4];
    let sweep_config = |depth: usize| {
        let mut c = EngineConfig::parallel(1).pipeline_depth(depth);
        c.pool = Some(Arc::clone(&pools[0]));
        c
    };
    let mut sweep_cells: Vec<Vec<Duration>> = vec![Vec::with_capacity(runs); SWEEP_DEPTHS.len()];
    for &depth in &SWEEP_DEPTHS {
        run_dijkstra(spec, sweep_config(depth)); // warm-up, discarded
    }
    for _round in 0..runs {
        for (di, &depth) in SWEEP_DEPTHS.iter().enumerate() {
            sweep_cells[di].push(run_dijkstra(spec, sweep_config(depth)));
        }
    }
    struct SweepRow {
        depth: usize,
        median: Duration,
        ratio_vs_depth0: f64,
        effective_depth: usize,
        lookahead_hits: u64,
        lookahead_misses: u64,
    }
    let sweep_base = median(&sweep_cells[0]).as_secs_f64();
    let sweep_rows: Vec<SweepRow> = SWEEP_DEPTHS
        .iter()
        .zip(&sweep_cells)
        .map(|(&depth, samples)| {
            // One instrumented run per *lookahead-armed* depth for the
            // hit/miss counters (outside the timing cells —
            // record_steps is not free). Below depth 2 the lookahead
            // is disarmed, the counters are zero by construction and
            // the effective depth is the configured one, so the extra
            // run would buy nothing.
            let (effective_depth, hits, misses) = if depth >= 2 {
                let (_, report) =
                    shortest_path::run_jstar_report(spec, sweep_config(depth).record_steps())
                        .expect("dijkstra runs");
                (
                    report.pipeline_depth,
                    report.lookahead_hits,
                    report.lookahead_misses,
                )
            } else {
                (depth, 0, 0)
            };
            let med = median(samples);
            SweepRow {
                depth,
                median: med,
                ratio_vs_depth0: if sweep_base > 0.0 {
                    med.as_secs_f64() / sweep_base
                } else {
                    1.0
                },
                effective_depth,
                lookahead_hits: hits,
                lookahead_misses: misses,
            }
        })
        .collect();

    // Three-arm triangle A/B: the app's Probe stratum pops as one wide
    // class over a two-stage join rule, so the arms differ only in how
    // that class meets Gamma — per-tuple nested-loop firing (one
    // indexed probe per tuple per stage), batched delta-join with one
    // hash probe per distinct key (the PR 8 path), and the batched
    // class lowered onto the leapfrog merged-cursor walk (one
    // coordinated index walk per class, the default). Arms are
    // interleaved within each round so all three see the same ambient
    // noise; the `delta_join` section keeps its v3 shape from the
    // first two arms, `wco_join` reports all three.
    #[derive(Clone, Copy, PartialEq)]
    enum TriArm {
        PerTuple,
        HashDj,
        LeapfrogDj,
    }
    const TRI_ARMS: [TriArm; 3] = [TriArm::PerTuple, TriArm::HashDj, TriArm::LeapfrogDj];
    let tri_spec = triangles_spec();
    let tri_config = |ti: usize, arm: TriArm| {
        let mut c = config(ti);
        match arm {
            TriArm::PerTuple => c = c.delta_join_from(usize::MAX),
            TriArm::HashDj => c = c.join_strategy(JoinStrategy::HashProbe),
            TriArm::LeapfrogDj => {} // delta-join + leapfrog are the defaults
        }
        c
    };
    for &arm in &TRI_ARMS {
        run_triangles(tri_spec, tri_config(0, arm)); // warm-up, discarded
    }
    // tri_cells[threads][arm]: the arm loop is innermost so each
    // cell's three arms run back-to-back under the same ambient
    // conditions.
    let mut tri_cells: Vec<Vec<Vec<Duration>>> =
        vec![vec![Vec::with_capacity(runs); TRI_ARMS.len()]; THREADS.len()];
    for _round in 0..runs {
        for (ti, row) in tri_cells.iter_mut().enumerate() {
            for (cell, &arm) in row.iter_mut().zip(&TRI_ARMS) {
                cell.push(run_triangles(tri_spec, tri_config(ti, arm)));
            }
        }
    }
    // One counter run per (threads, arm): the probe/seek counters are
    // plain stats, always collected, so these runs are cheap and stay
    // outside the timing cells.
    struct DjRow {
        threads: usize,
        median_per_tuple: Duration,
        median_delta_join: Duration,
        ratio_dj_vs_pt: f64,
        pt_gamma_probes: u64,
        dj_gamma_probes: u64,
        dj_probes: u64,
        dj_classes: u64,
        dj_build_tuples: u64,
    }
    struct WcoRow {
        threads: usize,
        median_per_tuple: Duration,
        median_hash: Duration,
        median_leapfrog: Duration,
        ratio_lf_vs_pt: f64,
        ratio_lf_vs_hash: f64,
        pt_gamma_probes: u64,
        hash_gamma_probes: u64,
        hash_dj_probes: u64,
        lf_gamma_probes: u64,
        lf_join_seeks: u64,
        lf_cursor_opens: u64,
    }
    let mut dj_rows: Vec<DjRow> = Vec::with_capacity(THREADS.len());
    let mut wco_rows: Vec<WcoRow> = Vec::with_capacity(THREADS.len());
    for (ti, &tri_threads) in THREADS.iter().enumerate() {
        let (_, pt_report) =
            triangles::run_jstar_report(tri_spec, tri_config(ti, TriArm::PerTuple))
                .expect("triangles");
        let (_, hash_report) =
            triangles::run_jstar_report(tri_spec, tri_config(ti, TriArm::HashDj))
                .expect("triangles");
        let (_, lf_report) =
            triangles::run_jstar_report(tri_spec, tri_config(ti, TriArm::LeapfrogDj))
                .expect("triangles");
        assert_eq!(
            pt_report.delta_join_classes, 0,
            "per-tuple arm must not batch"
        );
        assert!(
            hash_report.delta_join_classes > 0 && lf_report.delta_join_classes > 0,
            "delta-join arms must batch"
        );
        assert_eq!(
            lf_report.delta_join_probes, 0,
            "the leapfrog walk must not hash-probe"
        );
        let med_pt = median(&tri_cells[ti][0]);
        let med_hash = median(&tri_cells[ti][1]);
        let med_lf = median(&tri_cells[ti][2]);
        let ratio = |num: Duration, den: Duration| {
            if den.as_secs_f64() > 0.0 {
                num.as_secs_f64() / den.as_secs_f64()
            } else {
                1.0
            }
        };
        dj_rows.push(DjRow {
            threads: tri_threads,
            median_per_tuple: med_pt,
            median_delta_join: med_hash,
            ratio_dj_vs_pt: ratio(med_hash, med_pt),
            pt_gamma_probes: pt_report.gamma_probes,
            dj_gamma_probes: hash_report.gamma_probes,
            dj_probes: hash_report.delta_join_probes,
            dj_classes: hash_report.delta_join_classes,
            dj_build_tuples: hash_report.delta_join_build_tuples,
        });
        wco_rows.push(WcoRow {
            threads: tri_threads,
            median_per_tuple: med_pt,
            median_hash: med_hash,
            median_leapfrog: med_lf,
            ratio_lf_vs_pt: ratio(med_lf, med_pt),
            ratio_lf_vs_hash: ratio(med_lf, med_hash),
            pt_gamma_probes: pt_report.gamma_probes,
            hash_gamma_probes: hash_report.gamma_probes,
            hash_dj_probes: hash_report.delta_join_probes,
            lf_gamma_probes: lf_report.gamma_probes,
            lf_join_seeks: lf_report.join_seeks,
            lf_cursor_opens: lf_report.join_cursor_opens,
        });
    }

    // Delta-join parity on the join-free exhibits: fig8/fig11/fig12
    // have no join-plan rules, so enabling delta-join must cost nothing
    // beyond the scheduler's per-class eligibility check. Matched
    // interleaved pairs at the mid thread count, gated on the median
    // pair ratio like the checkpoint section.
    struct ParityRow {
        workload: &'static str,
        median_per_tuple: Duration,
        median_delta_join: Duration,
        ratio: f64,
    }
    let parity_ti = 1; // 4 threads — the mid cell
    let mut parity_rows: Vec<ParityRow> = Vec::new();
    {
        let parity_config = |dj: bool| {
            let mut c = config(parity_ti);
            if !dj {
                c = c.delta_join_from(usize::MAX);
            }
            c
        };
        let mut measure = |workload: &'static str, f: &mut dyn FnMut(EngineConfig) -> Duration| {
            let mut pt: Vec<Duration> = Vec::with_capacity(runs);
            let mut dj: Vec<Duration> = Vec::with_capacity(runs);
            for _round in 0..runs {
                pt.push(f(parity_config(false)));
                dj.push(f(parity_config(true)));
            }
            let mut ratios: Vec<f64> = pt
                .iter()
                .zip(&dj)
                .filter(|(p, _)| p.as_secs_f64() > 0.0)
                .map(|(p, d)| d.as_secs_f64() / p.as_secs_f64())
                .collect();
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            parity_rows.push(ParityRow {
                workload,
                median_per_tuple: median(&pt),
                median_delta_join: median(&dj),
                ratio: ratios.get(ratios.len() / 2).copied().unwrap_or(1.0),
            });
        };
        measure("fig8_pvwatts", &mut |c| {
            run_pvwatts(&csv, THREADS[parity_ti].max(2), Variant::HashStore, c)
        });
        measure("fig11_matmul", &mut |c| run_matmul(n, &a, &b, c));
        measure("fig12_dijkstra", &mut |c| run_dijkstra(spec, c));
    }

    // Join-strategy parity on the same join-free exhibits: the
    // leapfrog default only changes how *join-plan* classes execute,
    // so on programs with no join rules the strategy knob must be
    // invisible. Matched interleaved pairs (hash then leapfrog within
    // each round), gated on the median pair ratio like the delta-join
    // section above.
    struct WcoParityRow {
        workload: &'static str,
        median_hash: Duration,
        median_leapfrog: Duration,
        ratio: f64,
    }
    let mut wco_parity_rows: Vec<WcoParityRow> = Vec::new();
    {
        let strategy_config = |lf: bool| {
            config(parity_ti).join_strategy(if lf {
                JoinStrategy::Leapfrog
            } else {
                JoinStrategy::HashProbe
            })
        };
        let mut measure = |workload: &'static str, f: &mut dyn FnMut(EngineConfig) -> Duration| {
            let mut hash: Vec<Duration> = Vec::with_capacity(runs);
            let mut lf: Vec<Duration> = Vec::with_capacity(runs);
            for _round in 0..runs {
                hash.push(f(strategy_config(false)));
                lf.push(f(strategy_config(true)));
            }
            let mut ratios: Vec<f64> = hash
                .iter()
                .zip(&lf)
                .filter(|(h, _)| h.as_secs_f64() > 0.0)
                .map(|(h, l)| l.as_secs_f64() / h.as_secs_f64())
                .collect();
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            wco_parity_rows.push(WcoParityRow {
                workload,
                median_hash: median(&hash),
                median_leapfrog: median(&lf),
                ratio: ratios.get(ratios.len() / 2).copied().unwrap_or(1.0),
            });
        };
        measure("fig8_pvwatts", &mut |c| {
            run_pvwatts(&csv, THREADS[parity_ti].max(2), Variant::HashStore, c)
        });
        measure("fig11_matmul", &mut |c| run_matmul(n, &a, &b, c));
        measure("fig12_dijkstra", &mut |c| run_dijkstra(spec, c));
    }

    // Index-cache A/B on the join exhibits: cold (`Off`) rebuilds every
    // column index at every cursor open; warm (`EagerRefresh`) reuses
    // generation-stamped entries and catches up from the claim-journal
    // suffix, with refresh jobs overlapping the maintain phase. Arms
    // interleave within each round; one instrumented run per cell
    // (outside the timing cells) records the hit/catch-up counters the
    // claim rests on.
    #[derive(Clone, Copy)]
    enum CacheArm {
        Cold,
        Warm,
    }
    const CACHE_ARMS: [CacheArm; 2] = [CacheArm::Cold, CacheArm::Warm];
    const CACHE_WORKLOADS: [&str; 2] = ["triangles", "basket"];
    let basket = basket_spec();
    let cache_config = |ti: usize, arm: CacheArm| {
        config(ti).index_cache(match arm {
            CacheArm::Cold => IndexCachePolicy::Off,
            CacheArm::Warm => IndexCachePolicy::EagerRefresh,
        })
    };
    let cache_run = |wi: usize, ti: usize, arm: CacheArm| match wi {
        0 => run_triangles(tri_spec, cache_config(ti, arm)),
        _ => run_basket(basket, cache_config(ti, arm)),
    };
    for wi in 0..CACHE_WORKLOADS.len() {
        for &arm in &CACHE_ARMS {
            cache_run(wi, 0, arm); // warm-up, discarded
        }
    }
    // cache_cells[workload][threads][arm], arms innermost so each pair
    // runs back-to-back under the same ambient conditions.
    let mut cache_cells: Vec<Vec<Vec<Vec<Duration>>>> =
        vec![vec![vec![Vec::with_capacity(runs); CACHE_ARMS.len()]; THREADS.len()]; 2];
    for _round in 0..runs {
        for (wi, table) in cache_cells.iter_mut().enumerate() {
            for (ti, row) in table.iter_mut().enumerate() {
                for (cell, &arm) in row.iter_mut().zip(&CACHE_ARMS) {
                    cell.push(cache_run(wi, ti, arm));
                }
            }
        }
    }
    struct CacheRow {
        workload: &'static str,
        threads: usize,
        median_cold: Duration,
        median_warm: Duration,
        ratio_warm_vs_cold: f64,
        cold_build_tuples: u64,
        warm_hits: u64,
        warm_misses: u64,
        warm_catchup_tuples: u64,
        warm_build_tuples: u64,
        warm_hit_rate: f64,
    }
    let mut cache_rows: Vec<CacheRow> = Vec::with_capacity(CACHE_WORKLOADS.len() * THREADS.len());
    for (wi, &workload) in CACHE_WORKLOADS.iter().enumerate() {
        for (ti, &threads) in THREADS.iter().enumerate() {
            let report_of = |arm: CacheArm| match wi {
                0 => {
                    triangles::run_jstar_report(tri_spec, cache_config(ti, arm))
                        .expect("triangles")
                        .1
                }
                _ => {
                    jstar_apps::basket::run_report(basket, cache_config(ti, arm))
                        .expect("basket")
                        .1
                }
            };
            let cold_report = report_of(CacheArm::Cold);
            let warm_report = report_of(CacheArm::Warm);
            assert_eq!(
                cold_report.index_cache_hits, 0,
                "the Off policy must never hit"
            );
            let med_cold = median(&cache_cells[wi][ti][0]);
            let med_warm = median(&cache_cells[wi][ti][1]);
            cache_rows.push(CacheRow {
                workload,
                threads,
                median_cold: med_cold,
                median_warm: med_warm,
                ratio_warm_vs_cold: if med_cold.as_secs_f64() > 0.0 {
                    med_warm.as_secs_f64() / med_cold.as_secs_f64()
                } else {
                    1.0
                },
                cold_build_tuples: cold_report.index_build_tuples,
                warm_hits: warm_report.index_cache_hits,
                warm_misses: warm_report.index_cache_misses,
                warm_catchup_tuples: warm_report.index_catchup_tuples,
                warm_build_tuples: warm_report.index_build_tuples,
                warm_hit_rate: warm_report.index_cache_hit_rate(),
            });
        }
    }

    // Index-cache parity on the join-free exhibits: fig8/fig11/fig12
    // never open a column cursor, so the cache — stamping, the
    // maintain-phase refresh hook, the eager policy's empty job batches
    // — must cost nothing. Matched interleaved pairs at the mid thread
    // count, gated on the median pair ratio like the delta-join
    // section.
    struct CacheParityRow {
        workload: &'static str,
        median_cold: Duration,
        median_warm: Duration,
        ratio: f64,
    }
    let mut cache_parity_rows: Vec<CacheParityRow> = Vec::new();
    {
        let parity_cache_config = |warm: bool| {
            config(parity_ti).index_cache(if warm {
                IndexCachePolicy::EagerRefresh
            } else {
                IndexCachePolicy::Off
            })
        };
        let mut measure = |workload: &'static str, f: &mut dyn FnMut(EngineConfig) -> Duration| {
            let mut cold: Vec<Duration> = Vec::with_capacity(runs);
            let mut warm: Vec<Duration> = Vec::with_capacity(runs);
            for _round in 0..runs {
                cold.push(f(parity_cache_config(false)));
                warm.push(f(parity_cache_config(true)));
            }
            let mut ratios: Vec<f64> = cold
                .iter()
                .zip(&warm)
                .filter(|(c, _)| c.as_secs_f64() > 0.0)
                .map(|(c, w)| w.as_secs_f64() / c.as_secs_f64())
                .collect();
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            cache_parity_rows.push(CacheParityRow {
                workload,
                median_cold: median(&cold),
                median_warm: median(&warm),
                ratio: ratios.get(ratios.len() / 2).copied().unwrap_or(1.0),
            });
        };
        measure("fig8_pvwatts", &mut |c| {
            run_pvwatts(&csv, THREADS[parity_ti].max(2), Variant::HashStore, c)
        });
        measure("fig11_matmul", &mut |c| run_matmul(n, &a, &b, c));
        measure("fig12_dijkstra", &mut |c| run_dijkstra(spec, c));
    }

    // Depth-2 soak: every app once at pipeline_depth 2 with the
    // lookahead armed, recording per-app hit rates. Hit/miss counters
    // need record_steps, so these runs stay out of the timing cells.
    struct SoakRow {
        app: &'static str,
        steps: u64,
        lookahead_hits: u64,
        lookahead_misses: u64,
        hit_rate: f64,
    }
    let soak_config = || config(1).pipeline_depth(2).record_steps();
    let soak_rows: Vec<SoakRow> = {
        let soak = |app: &'static str, report: &jstar_core::engine::RunReport| SoakRow {
            app,
            steps: report.steps,
            lookahead_hits: report.lookahead_hits,
            lookahead_misses: report.lookahead_misses,
            hit_rate: report.lookahead_hit_rate(),
        };
        let (_, r8) = jstar_apps::pvwatts::run_jstar(
            Arc::clone(&csv),
            THREADS[1].max(2),
            Variant::HashStore,
            soak_config(),
        )
        .expect("pvwatts runs");
        let (_, r11) = matmul::run_jstar_report(n, Arc::clone(&a), Arc::clone(&b), soak_config())
            .expect("matmul runs");
        let (_, r12) = shortest_path::run_jstar_report(spec, soak_config()).expect("dijkstra runs");
        let med_data = Arc::new(median::gen_data(median_len(), 99));
        let (_, r13) = median::run_jstar_report(med_data, 24, soak_config()).expect("median runs");
        let (_, rtri) = triangles::run_jstar_report(tri_spec, soak_config()).expect("triangles");
        vec![
            soak("fig8_pvwatts", &r8),
            soak("fig11_matmul", &r11),
            soak("fig12_dijkstra", &r12),
            soak("fig13_median", &r13),
            soak("triangles", &rtri),
        ]
    };

    // Checkpoint overhead: fig8 with periodic checkpointing on vs. off,
    // interleaved. The checkpoint path quiesces the Delta queue,
    // serializes every Gamma store and publishes via temp + rename —
    // all on the coordinator — so this ratio is the full durability
    // cost as the user experiences it. fig8 pops exactly two very wide
    // classes, so the interval is 2: one real checkpoint per run (the
    // full-Gamma post-aggregation one) — anything coarser would never
    // fire here and the gate would be vacuous. The section's CSV is a
    // fixed size, deliberately exempt from `JSTAR_BENCH_SCALE`: the
    // true overhead ratio is scale-invariant (checkpoint and run cost
    // both grow with rows), but the *measurement* is not — a scaled-
    // down sub-40ms run is commensurate with one scheduler timeslice,
    // so a single preemption swings a pair ratio by more than the
    // tolerance margin. A multi-hundred-ms run keeps scheduler and
    // pipeline-shape noise well inside the 10% budget and adds only a
    // few seconds to the whole bench.
    const CHECKPOINT_EVERY: u64 = 2;
    let ckpt_rows = 175_200;
    let ckpt_csv = Arc::new(jstar_apps::pvwatts::generate_csv(
        ckpt_rows,
        InputOrder::Chronological,
    ));
    let ckpt_runs = runs.max(9);
    // Checkpoints land on tmpfs when the host has one: the gate
    // guards the engine-side serialization cost, and ext4/overlay
    // commit latency for the same 400 KB image varies ~3x across CI
    // hosts — exactly the noise a regression gate must not inherit.
    let ckpt_base = if std::path::Path::new("/dev/shm").is_dir() {
        std::path::PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    let ckpt_dir = ckpt_base.join(format!("jstar-bench-ckpt-{}", std::process::id()));
    let ckpt_threads_idx = 1; // 4 threads — the mid cell
    let ckpt_config = |on: bool| {
        let mut c = EngineConfig::parallel(THREADS[ckpt_threads_idx]);
        c.pool = Some(Arc::clone(&pools[ckpt_threads_idx]));
        if on {
            c = c.checkpoint(&ckpt_dir, CHECKPOINT_EVERY).checkpoint_keep(2);
        }
        c
    };
    let ckpt_run = |on: bool| {
        run_pvwatts(
            &ckpt_csv,
            THREADS[ckpt_threads_idx].max(2),
            Variant::HashStore,
            ckpt_config(on),
        )
    };
    ckpt_run(false); // warm-up, discarded
    ckpt_run(true);
    let mut ckpt_off: Vec<Duration> = Vec::with_capacity(ckpt_runs);
    let mut ckpt_on: Vec<Duration> = Vec::with_capacity(ckpt_runs);
    for _round in 0..ckpt_runs {
        ckpt_off.push(ckpt_run(false));
        ckpt_on.push(ckpt_run(true));
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let ckpt_off_median = median(&ckpt_off);
    let ckpt_on_median = median(&ckpt_on);
    // The gated ratio is the median of the per-round on/off ratios.
    // The arms interleave, so each round is a matched pair taken under
    // the same machine conditions — the pairwise ratio cancels drift
    // (thermal, cache, background load) that a cross-arm median
    // inherits, and the median over rounds discards the occasional
    // lucky-scheduler outlier that makes per-arm minima fragile: one
    // anomalously fast `off` sample shifts a min-based ratio by
    // several points but moves one pair's ratio, not the middle one.
    let mut pair_ratios: Vec<f64> = ckpt_off
        .iter()
        .zip(&ckpt_on)
        .filter(|(off, _)| off.as_secs_f64() > 0.0)
        .map(|(off, on)| on.as_secs_f64() / off.as_secs_f64())
        .collect();
    pair_ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let ckpt_ratio = pair_ratios
        .get(pair_ratios.len() / 2)
        .copied()
        .unwrap_or(1.0);

    // Hand-rolled JSON (the workspace deliberately vendors no serde).
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"jstar-hotpath/v5\",\n");
    out.push_str(&format!("  \"scale\": {},\n", json_f(scale())));
    out.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    ));
    out.push_str(&format!("  \"runs_per_cell\": {runs},\n"));
    out.push_str("  \"results\": [\n");
    let mut first = true;
    for (wi, workload) in WORKLOADS.iter().enumerate() {
        for (ti, &threads) in THREADS.iter().enumerate() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let samples = &cells[wi][ti];
            let runs_json: Vec<String> = samples.iter().map(|d| json_f(d.as_secs_f64())).collect();
            out.push_str(&format!(
                "    {{\"workload\": \"{workload}\", \"threads\": {threads}, \
                 \"median_secs\": {}, \"runs_secs\": [{}]}}",
                json_f(median(samples).as_secs_f64()),
                runs_json.join(", ")
            ));
        }
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"dijkstra_drain\": [\n");
    for (i, row) in drain_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"drain_fraction\": {}, \"overlap_fraction\": {}, \
             \"partition_secs\": {}, \"merge_secs\": {}, \"overlap_secs\": {}, \
             \"execute_secs\": {}, \"steps\": {}}}{}\n",
            row.threads,
            json_f(row.drain_fraction),
            json_f(row.overlap_fraction),
            json_f(row.partition_secs),
            json_f(row.merge_secs),
            json_f(row.overlap_secs),
            json_f(row.execute_secs),
            row.steps,
            if i + 1 < drain_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"depth_sweep\": [\n");
    for (i, row) in sweep_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"fig12_dijkstra\", \"threads\": 1, \"depth\": {}, \
             \"effective_depth\": {}, \"median_secs\": {}, \"ratio_vs_depth0\": {}, \
             \"lookahead_hits\": {}, \"lookahead_misses\": {}}}{}\n",
            row.depth,
            row.effective_depth,
            json_f(row.median.as_secs_f64()),
            json_f(row.ratio_vs_depth0),
            row.lookahead_hits,
            row.lookahead_misses,
            if i + 1 < sweep_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"delta_join\": [\n");
    for (i, row) in dj_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"triangles\", \"threads\": {}, \
             \"median_per_tuple_secs\": {}, \"median_delta_join_secs\": {}, \
             \"ratio_dj_vs_pt\": {}, \"per_tuple_gamma_probes\": {}, \
             \"delta_join_gamma_probes\": {}, \"delta_join_probes\": {}, \
             \"delta_join_classes\": {}, \"delta_join_build_tuples\": {}}}{}\n",
            row.threads,
            json_f(row.median_per_tuple.as_secs_f64()),
            json_f(row.median_delta_join.as_secs_f64()),
            json_f(row.ratio_dj_vs_pt),
            row.pt_gamma_probes,
            row.dj_gamma_probes,
            row.dj_probes,
            row.dj_classes,
            row.dj_build_tuples,
            if i + 1 < dj_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"wco_join\": [\n");
    for (i, row) in wco_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"triangles\", \"threads\": {}, \
             \"median_per_tuple_secs\": {}, \"median_hash_secs\": {}, \
             \"median_leapfrog_secs\": {}, \"ratio_lf_vs_pt\": {}, \
             \"ratio_lf_vs_hash\": {}, \"per_tuple_gamma_probes\": {}, \
             \"hash_gamma_probes\": {}, \"hash_delta_join_probes\": {}, \
             \"leapfrog_gamma_probes\": {}, \"leapfrog_join_seeks\": {}, \
             \"leapfrog_cursor_opens\": {}}}{}\n",
            row.threads,
            json_f(row.median_per_tuple.as_secs_f64()),
            json_f(row.median_hash.as_secs_f64()),
            json_f(row.median_leapfrog.as_secs_f64()),
            json_f(row.ratio_lf_vs_pt),
            json_f(row.ratio_lf_vs_hash),
            row.pt_gamma_probes,
            row.hash_gamma_probes,
            row.hash_dj_probes,
            row.lf_gamma_probes,
            row.lf_join_seeks,
            row.lf_cursor_opens,
            if i + 1 < wco_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"wco_join_parity\": [\n");
    for (i, row) in wco_parity_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"median_hash_secs\": {}, \
             \"median_leapfrog_secs\": {}, \"ratio_lf_vs_hash\": {}}}{}\n",
            row.workload,
            THREADS[parity_ti],
            json_f(row.median_hash.as_secs_f64()),
            json_f(row.median_leapfrog.as_secs_f64()),
            json_f(row.ratio),
            if i + 1 < wco_parity_rows.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"delta_join_parity\": [\n");
    for (i, row) in parity_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"median_per_tuple_secs\": {}, \
             \"median_delta_join_secs\": {}, \"ratio_dj_vs_pt\": {}}}{}\n",
            row.workload,
            THREADS[parity_ti],
            json_f(row.median_per_tuple.as_secs_f64()),
            json_f(row.median_delta_join.as_secs_f64()),
            json_f(row.ratio),
            if i + 1 < parity_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"index_cache\": [\n");
    for (i, row) in cache_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"median_cold_secs\": {}, \
             \"median_warm_secs\": {}, \"ratio_warm_vs_cold\": {}, \
             \"cold_index_build_tuples\": {}, \"warm_index_cache_hits\": {}, \
             \"warm_index_cache_misses\": {}, \"warm_index_catchup_tuples\": {}, \
             \"warm_index_build_tuples\": {}, \"warm_hit_rate\": {}}}{}\n",
            row.workload,
            row.threads,
            json_f(row.median_cold.as_secs_f64()),
            json_f(row.median_warm.as_secs_f64()),
            json_f(row.ratio_warm_vs_cold),
            row.cold_build_tuples,
            row.warm_hits,
            row.warm_misses,
            row.warm_catchup_tuples,
            row.warm_build_tuples,
            json_f(row.warm_hit_rate),
            if i + 1 < cache_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"index_cache_parity\": [\n");
    for (i, row) in cache_parity_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"median_cold_secs\": {}, \
             \"median_warm_secs\": {}, \"ratio_warm_vs_cold\": {}}}{}\n",
            row.workload,
            THREADS[parity_ti],
            json_f(row.median_cold.as_secs_f64()),
            json_f(row.median_warm.as_secs_f64()),
            json_f(row.ratio),
            if i + 1 < cache_parity_rows.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"depth2_soak\": [\n");
    for (i, row) in soak_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"threads\": {}, \"depth\": 2, \"steps\": {}, \
             \"lookahead_hits\": {}, \"lookahead_misses\": {}, \"hit_rate\": {}}}{}\n",
            row.app,
            THREADS[1],
            row.steps,
            row.lookahead_hits,
            row.lookahead_misses,
            json_f(row.hit_rate),
            if i + 1 < soak_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"checkpoint_overhead\": {{\"workload\": \"fig8_pvwatts\", \"threads\": {}, \
         \"checkpoint_every\": {CHECKPOINT_EVERY}, \"csv_rows\": {ckpt_rows}, \
         \"runs_per_arm\": {ckpt_runs}, \"median_off_secs\": {}, \
         \"median_on_secs\": {}, \"pair_ratios\": [{}], \
         \"ratio_on_vs_off\": {}}}\n",
        THREADS[ckpt_threads_idx],
        json_f(ckpt_off_median.as_secs_f64()),
        json_f(ckpt_on_median.as_secs_f64()),
        pair_ratios
            .iter()
            .map(|r| json_f(*r))
            .collect::<Vec<_>>()
            .join(", "),
        json_f(ckpt_ratio)
    ));
    out.push_str("}\n");

    std::fs::write(&args.out, &out).expect("write BENCH_hotpath.json");
    println!(
        "wrote {} ({} workloads x {} thread counts, {} runs each)",
        args.out,
        WORKLOADS.len(),
        THREADS.len(),
        runs
    );

    if let Some(ceiling) = args.check_drain {
        let worst = drain_rows
            .iter()
            .map(|r| r.drain_fraction)
            .fold(0.0f64, f64::max);
        if worst > ceiling {
            eprintln!(
                "FAIL: fig12 drain fraction {worst:.3} exceeds the {ceiling:.3} ceiling \
                 — the coordinator drain is the bottleneck again"
            );
            std::process::exit(1);
        }
        println!("drain check ok: worst fig12 drain fraction {worst:.3} <= {ceiling:.3}");

        // Depth-sweep parity gate: at 1 thread the pipelined
        // coordinator has no idle workers to exploit and no join to
        // hide speculation behind, so anything beyond a noise allowance
        // over the alternating loop — at *any* depth — is pure
        // pipeline/lookahead overhead. Fail before it ships.
        const SWEEP_TOLERANCE: f64 = 1.30;
        for row in sweep_rows.iter().filter(|r| r.depth > 0) {
            if row.ratio_vs_depth0 > SWEEP_TOLERANCE {
                eprintln!(
                    "FAIL: fig12 single-thread depth{} median {:.4}s is {:.2}x the alternating \
                     loop's {sweep_base:.4}s (tolerance {SWEEP_TOLERANCE:.2}x) — \
                     pipeline_depth={} regressed the no-overlap case",
                    row.depth,
                    row.median.as_secs_f64(),
                    row.ratio_vs_depth0,
                    row.depth,
                );
                std::process::exit(1);
            }
        }
        let ratios: Vec<String> = sweep_rows
            .iter()
            .map(|r| format!("depth{} {:.3}", r.depth, r.ratio_vs_depth0))
            .collect();
        println!(
            "depth sweep ok: fig12 1-thread medians vs depth0 — {}",
            ratios.join(", ")
        );

        // Delta-join parity gate: on programs with no join rules, the
        // batched mode must be indistinguishable from per-tuple firing
        // — the scheduler's eligibility check is the only code the mode
        // adds to their hot path, and it must stay free.
        const DJ_TOLERANCE: f64 = 1.10;
        for row in &parity_rows {
            if row.ratio > DJ_TOLERANCE {
                eprintln!(
                    "FAIL: {} in delta-join mode is {:.3}x per-tuple mode (medians {:.4}s vs \
                     {:.4}s, tolerance {DJ_TOLERANCE:.2}x) — mode selection is no longer free \
                     on join-free programs",
                    row.workload,
                    row.ratio,
                    row.median_delta_join.as_secs_f64(),
                    row.median_per_tuple.as_secs_f64(),
                );
                std::process::exit(1);
            }
        }
        let parity: Vec<String> = parity_rows
            .iter()
            .map(|r| format!("{} {:.3}", r.workload, r.ratio))
            .collect();
        println!(
            "delta-join parity ok (pair-ratio medians vs per-tuple): {}",
            parity.join(", ")
        );

        // WCO-join search gate: the leapfrog walk's whole claim is
        // that one coordinated index walk per class searches less than
        // one hash probe per distinct key. The counters are
        // deterministic, so this is exact: at every thread count the
        // leapfrog arm's probes + counted seeks must stay strictly
        // below the hash arm's probes.
        for row in &wco_rows {
            if row.lf_gamma_probes + row.lf_join_seeks >= row.hash_gamma_probes {
                eprintln!(
                    "FAIL: triangles at {} threads — leapfrog gamma_probes {} + join_seeks {} \
                     is not below the hash arm's gamma_probes {} — the merged-cursor walk no \
                     longer searches less than per-key probing",
                    row.threads, row.lf_gamma_probes, row.lf_join_seeks, row.hash_gamma_probes,
                );
                std::process::exit(1);
            }
        }
        let searches: Vec<String> = wco_rows
            .iter()
            .map(|r| {
                format!(
                    "{}t {}+{} < {}",
                    r.threads, r.lf_gamma_probes, r.lf_join_seeks, r.hash_gamma_probes
                )
            })
            .collect();
        println!(
            "wco-join search ok (leapfrog probes+seeks vs hash probes): {}",
            searches.join(", ")
        );

        // Join-strategy parity gate: on programs with no join rules
        // the leapfrog default must be indistinguishable from hash
        // probing — the strategy only selects how join-plan classes
        // execute, and these programs have none.
        for row in &wco_parity_rows {
            if row.ratio > DJ_TOLERANCE {
                eprintln!(
                    "FAIL: {} under the leapfrog strategy is {:.3}x the hash strategy (medians \
                     {:.4}s vs {:.4}s, tolerance {DJ_TOLERANCE:.2}x) — strategy selection is no \
                     longer free on join-free programs",
                    row.workload,
                    row.ratio,
                    row.median_leapfrog.as_secs_f64(),
                    row.median_hash.as_secs_f64(),
                );
                std::process::exit(1);
            }
        }
        let wco_parity: Vec<String> = wco_parity_rows
            .iter()
            .map(|r| format!("{} {:.3}", r.workload, r.ratio))
            .collect();
        println!(
            "wco-join strategy parity ok (pair-ratio medians vs hash): {}",
            wco_parity.join(", ")
        );

        // Index-cache parity gate: on programs that never open a column
        // cursor the cache must be free — generation stamping, the
        // maintain-phase refresh hook and the eager policy's empty job
        // batches are the only code it adds to their hot path.
        const CACHE_TOLERANCE: f64 = 1.05;
        for row in &cache_parity_rows {
            if row.ratio > CACHE_TOLERANCE {
                eprintln!(
                    "FAIL: {} with the warm index cache is {:.3}x the cold run (medians {:.4}s \
                     vs {:.4}s, tolerance {CACHE_TOLERANCE:.2}x) — the index cache is no longer \
                     free on join-free programs",
                    row.workload,
                    row.ratio,
                    row.median_warm.as_secs_f64(),
                    row.median_cold.as_secs_f64(),
                );
                std::process::exit(1);
            }
        }
        let cache_parity: Vec<String> = cache_parity_rows
            .iter()
            .map(|r| format!("{} {:.3}", r.workload, r.ratio))
            .collect();
        println!(
            "index-cache parity ok (pair-ratio medians warm vs cold): {}",
            cache_parity.join(", ")
        );

        // Index-cache effectiveness: the warm arm's whole claim is that
        // cached entries replace rebuilds. Triangles re-opens the Edge
        // index across the Wedge and Probe strata, so its warm run must
        // hit and sort strictly fewer tuples from scratch than cold at
        // every thread count; basket's single wide Order class opens
        // each dimension index exactly once, so the exact bound there
        // is parity — warm must never build *more*. Counters, not
        // wall-clock — deterministic, so the bounds are exact.
        for row in &cache_rows {
            let reopens = row.workload == "triangles";
            let ok = if reopens {
                row.warm_hits > 0 && row.warm_build_tuples < row.cold_build_tuples
            } else {
                row.warm_build_tuples <= row.cold_build_tuples
            };
            if !ok {
                eprintln!(
                    "FAIL: {} at {} threads — warm cache built {} tuples (hits {}) vs the cold \
                     arm's {} — the cache is not replacing index rebuilds",
                    row.workload,
                    row.threads,
                    row.warm_build_tuples,
                    row.warm_hits,
                    row.cold_build_tuples,
                );
                std::process::exit(1);
            }
        }
        let cache_effect: Vec<String> = cache_rows
            .iter()
            .map(|r| {
                format!(
                    "{} {}t {}b vs {}b hit {:.0}%",
                    r.workload,
                    r.threads,
                    r.warm_build_tuples,
                    r.cold_build_tuples,
                    100.0 * r.warm_hit_rate
                )
            })
            .collect();
        println!(
            "index-cache effectiveness ok (warm vs cold build tuples): {}",
            cache_effect.join(", ")
        );

        // Checkpoint-overhead gate: periodic durability must stay a
        // rounding error on the run it protects.
        const CHECKPOINT_TOLERANCE: f64 = 1.10;
        if ckpt_ratio > CHECKPOINT_TOLERANCE {
            eprintln!(
                "FAIL: fig8 with checkpointing every {CHECKPOINT_EVERY} steps is \
                 {ckpt_ratio:.3}x the plain run (medians {:.4}s vs {:.4}s, tolerance \
                 {CHECKPOINT_TOLERANCE:.2}x) — the checkpoint path got expensive",
                ckpt_on_median.as_secs_f64(),
                ckpt_off_median.as_secs_f64(),
            );
            std::process::exit(1);
        }
        println!(
            "checkpoint overhead ok: fig8 on/off ratio {ckpt_ratio:.3} <= {CHECKPOINT_TOLERANCE:.2}"
        );
    }
}
