//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! cargo run --release -p jstar-bench --bin figures -- all
//! cargo run --release -p jstar-bench --bin figures -- fig6 fig8 table1
//! JSTAR_BENCH_SCALE=10 cargo run --release -p jstar-bench --bin figures -- fig12
//! ```
//!
//! Output is Markdown, pasted into EXPERIMENTS.md.

use jstar_apps::matmul;
use jstar_apps::median;
use jstar_apps::pvwatts::{DisruptorConfig, InputOrder, Variant};
use jstar_apps::shortest_path;
use jstar_bench::workloads::*;
use jstar_bench::{print_table, scale, secs, speedups, thread_sweep, time_median};
use jstar_core::prelude::*;
use jstar_disruptor::WaitStrategyKind;
use std::sync::Arc;
use std::time::Duration;

const RUNS: usize = 3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    println!("# JStar paper exhibits (scale = {})", scale());
    println!(
        "\nMachine: {} hardware threads.",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(0)
    );

    if want("hotpath") {
        hotpath();
    }
    if want("fig6") {
        fig6();
    }
    if want("nodelta") {
        nodelta();
    }
    if want("fig8") {
        fig8();
    }
    if want("phases") {
        phases();
    }
    if want("table1") {
        table1();
    }
    if want("fig10") {
        fig10();
    }
    if want("fig11") {
        fig11();
    }
    if want("fig12") {
        fig12();
    }
    if want("fig13") {
        fig13();
    }
}

/// Hot-path profile: Delta throughput and the coordinator's drain/execute
/// split per engine mode, from [`RunReport`]'s derived metrics. This is
/// the exhibit that tracks the sharded-inbox pipeline across PRs (the
/// BENCH_*.json trajectories) — a rising drain fraction means the
/// coordinator is becoming the bottleneck again.
fn hotpath() {
    fn row(name: String, report: &jstar_core::engine::RunReport) -> Vec<String> {
        let (drain_step, exec_step) = report.per_step();
        let steps = report.steps.max(1) as f64;
        let per_step_us = |d: std::time::Duration| d.as_nanos() as f64 / steps / 1000.0;
        let lookahead = if report.lookahead_hits + report.lookahead_misses > 0 {
            format!("{:.1}%", 100.0 * report.lookahead_hit_rate())
        } else {
            "-".into()
        };
        // Execution mode: how many popped classes took the batched
        // delta-join pass instead of per-tuple firing, plus the Gamma
        // probe counters the pass exists to shrink.
        let exec_mode = if report.delta_join_classes > 0 {
            format!("delta-join ({} classes)", report.delta_join_classes)
        } else {
            "per-tuple".into()
        };
        let cache_hit_rate = if report.index_cache_hits + report.index_cache_misses > 0 {
            format!("{:.1}%", 100.0 * report.index_cache_hit_rate())
        } else {
            "-".into()
        };
        vec![
            name,
            format!("{}", report.pipeline_depth),
            report.steps.to_string(),
            report.tuples_processed.to_string(),
            format!("{:.0}", report.tuples_per_sec()),
            format!("{:.1}%", 100.0 * report.drain_fraction()),
            format!("{:.1}%", 100.0 * report.overlap_fraction()),
            lookahead,
            format!("{:.1}", drain_step.as_nanos() as f64 / 1000.0),
            format!("{:.1}", per_step_us(report.partition_time)),
            format!("{:.1}", per_step_us(report.merge_time)),
            format!("{:.1}", per_step_us(report.overlap_time)),
            format!("{:.1}", exec_step.as_nanos() as f64 / 1000.0),
            format!("{}/{}", report.inline_classes, report.forked_classes),
            exec_mode,
            report.gamma_probes.to_string(),
            report.delta_join_probes.to_string(),
            report.join_seeks.to_string(),
            report.join_cursor_opens.to_string(),
            cache_hit_rate,
            report.index_catchup_tuples.to_string(),
        ]
    }
    let csv = pvwatts_csv(InputOrder::Chronological);
    let mut rows = Vec::new();
    let mut run = |name: String, threads: usize, config: EngineConfig| {
        // record_steps also enables the drain/execute timers.
        let (_, report) = jstar_apps::pvwatts::run_jstar(
            Arc::clone(&csv),
            threads.max(2),
            jstar_apps::pvwatts::Variant::HashStore,
            config.record_steps(),
        )
        .expect("pvwatts runs");
        rows.push(row(name, &report));
    };
    run("pvwatts sequential".into(), 1, EngineConfig::sequential());
    for threads in [1usize, 4] {
        run(
            format!("pvwatts parallel({threads})"),
            threads,
            par_config(threads),
        );
    }
    let spec = dijkstra_spec();
    for threads in [1usize, 4] {
        let (_, report) = shortest_path::run_jstar_report(spec, par_config(threads).record_steps())
            .expect("dijkstra runs");
        rows.push(row(format!("dijkstra parallel({threads})"), &report));
    }
    // One lookahead row per workload: pipeline_depth 2 arms the
    // speculative next-class extraction, whose hit rate lands in the
    // "lookahead hits" column.
    let threads = 4usize;
    let (_, report) = jstar_apps::pvwatts::run_jstar(
        Arc::clone(&csv),
        threads.max(2),
        jstar_apps::pvwatts::Variant::HashStore,
        par_config(threads).pipeline_depth(2).record_steps(),
    )
    .expect("pvwatts runs");
    rows.push(row(format!("pvwatts parallel({threads}) depth2"), &report));
    let (_, report) =
        shortest_path::run_jstar_report(spec, par_config(threads).pipeline_depth(2).record_steps())
            .expect("dijkstra runs");
    rows.push(row(format!("dijkstra parallel({threads}) depth2"), &report));
    // Triangle counting in all three execution modes: per-tuple
    // nested-loop firing, batched delta-join with hash probes, and the
    // batched class on the leapfrog merged-cursor walk. The gamma
    // probe / join seek / cursor-open columns put the search-count
    // reduction of each step on record.
    let tri_spec = triangles_spec();
    let (_, report) = jstar_apps::triangles::run_jstar_report(
        tri_spec,
        par_config(threads)
            .delta_join_from(usize::MAX)
            .record_steps(),
    )
    .expect("triangles runs");
    rows.push(row(
        format!("triangles parallel({threads}) per-tuple"),
        &report,
    ));
    let (_, report) = jstar_apps::triangles::run_jstar_report(
        tri_spec,
        par_config(threads)
            .join_strategy(JoinStrategy::HashProbe)
            .record_steps(),
    )
    .expect("triangles runs");
    rows.push(row(
        format!("triangles parallel({threads}) delta-join hash"),
        &report,
    ));
    let (_, report) =
        jstar_apps::triangles::run_jstar_report(tri_spec, par_config(threads).record_steps())
            .expect("triangles runs");
    rows.push(row(
        format!("triangles parallel({threads}) delta-join leapfrog"),
        &report,
    ));
    print_table(
        "Hot path — Delta throughput, coordinator drain/execute split, pipeline overlap, \
         lookahead and execution mode (PvWatts hash store; Dijkstra; Triangles)",
        &[
            "engine",
            "depth",
            "steps",
            "tuples",
            "tuples/sec",
            "drain share",
            "overlap share",
            "lookahead hit rate",
            "drain µs/step",
            "partition µs/step",
            "merge µs/step",
            "overlap µs/step",
            "execute µs/step",
            "inline/forked classes",
            "exec mode",
            "gamma probes",
            "delta-join probes",
            "join seeks",
            "cursor opens",
            "cache hit rate",
            "catchup tuples",
        ],
        &rows,
    );
}

/// Fig. 6: absolute sequential speed, JStar vs hand-coded baselines.
fn fig6() {
    let mut rows = Vec::new();

    // PvWatts: JStar (byte CSV + hash store) vs Java-style baseline.
    let csv = pvwatts_csv(InputOrder::Chronological);
    let jstar = time_median(RUNS, || {
        run_pvwatts(&csv, 1, Variant::CustomStore, EngineConfig::sequential())
    });
    let java = time_median(RUNS, || run_pvwatts_baseline(&csv));
    rows.push(vec![
        "PvWatts".into(),
        secs(jstar),
        secs(java),
        String::new(),
    ]);

    // MatrixMult: JStar vs naive ijk vs transposed.
    let n = matmul_n();
    let a = Arc::new(matmul::gen_matrix(n, 11));
    let b = Arc::new(matmul::gen_matrix(n, 22));
    let jstar = time_median(RUNS, || run_matmul(n, &a, &b, EngineConfig::sequential()));
    let naive = time_median(RUNS, || {
        jstar_bench::time_once(|| matmul::multiply_naive(&a, &b, n)).1
    });
    let trans = time_median(RUNS, || {
        jstar_bench::time_once(|| matmul::multiply_transposed(&a, &b, n)).1
    });
    rows.push(vec![
        format!("MatrixMult (N={n})"),
        secs(jstar),
        secs(naive),
        format!("transposed: {}", secs(trans)),
    ]);

    // ShortestPath: JStar (Delta tree as priority queue) vs BinaryHeap.
    let spec = dijkstra_spec();
    let jstar = time_median(RUNS, || run_dijkstra(spec, EngineConfig::sequential()));
    let adj = shortest_path::adjacency(&spec);
    let heap = time_median(RUNS, || {
        jstar_bench::time_once(|| shortest_path::dijkstra_baseline(&adj, 0)).1
    });
    rows.push(vec![
        format!("ShortestPath (V={}, E≈{})", spec.n, spec.n + spec.extra),
        secs(jstar),
        secs(heap),
        String::new(),
    ]);

    // Median: JStar (iterative partition) vs full sort vs quickselect.
    let data = Arc::new(median::gen_data(median_len(), 1234));
    let jstar = time_median(RUNS, || run_median(&data, 12, EngineConfig::sequential()));
    let sort = time_median(RUNS, || {
        jstar_bench::time_once(|| median::median_by_sort(&data)).1
    });
    let qsel = time_median(RUNS, || {
        jstar_bench::time_once(|| median::median_by_quickselect(&data)).1
    });
    rows.push(vec![
        format!("Median (n={})", data.len()),
        secs(jstar),
        secs(sort),
        format!("quickselect: {}", secs(qsel)),
    ]);

    print_table(
        "Fig. 6 — absolute sequential time (s): JStar vs hand-coded",
        &["program", "JStar -sequential", "hand-coded", "notes"],
        &rows,
    );
}

/// §6.2: the -noDelta=PvWatts optimisation (23.0 s → 8.44 s in the paper).
fn nodelta() {
    let csv = pvwatts_csv(InputOrder::Chronological);
    let mut rows = Vec::new();
    let mut base_time = Duration::ZERO;
    for variant in Variant::all() {
        let t = time_median(RUNS, || {
            run_pvwatts(&csv, 1, variant, EngineConfig::sequential())
        });
        if variant == Variant::Naive {
            base_time = t;
        }
        rows.push(vec![
            variant.name().into(),
            secs(t),
            format!("{:.2}x", base_time.as_secs_f64() / t.as_secs_f64()),
        ]);
    }
    print_table(
        "§6.2 — sequential PvWatts with/without -noDelta (paper: 23.0 s → 8.44 s, 2.7×)",
        &["variant", "time (s)", "speedup vs naive"],
        &rows,
    );
}

/// Fig. 8: PvWatts relative speedup vs fork/join pool size, per store.
fn fig8() {
    let csv = pvwatts_csv(InputOrder::Chronological);
    let sweep = thread_sweep();
    let mut rows = Vec::new();
    for variant in [Variant::NoDelta, Variant::HashStore, Variant::CustomStore] {
        let times: Vec<Duration> = sweep
            .iter()
            .map(|&t| time_median(RUNS, || run_pvwatts(&csv, t.max(2), variant, par_config(t))))
            .collect();
        let sp = speedups(&times);
        for ((&t, time), s) in sweep.iter().zip(&times).zip(&sp) {
            rows.push(vec![
                variant.name().into(),
                t.to_string(),
                secs(*time),
                format!("{s:.2}"),
            ]);
        }
    }
    print_table(
        "Fig. 8 — PvWatts relative speedup vs pool size (paper: ≈4× at 8 threads)",
        &["gamma store", "threads", "time (s)", "relative speedup"],
        &rows,
    );
}

/// §6.3: phase breakdown and the Amdahl bound.
fn phases() {
    let csv = pvwatts_csv(InputOrder::Chronological);
    let phases = pvwatts_phase_breakdown(&csv);
    let total: f64 = phases.iter().map(|&(_, t)| t).sum();
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|&(name, t)| vec![name.into(), format!("{:.1}%", 100.0 * t / total)])
        .collect();
    print_table(
        "§6.3 — PvWatts phase breakdown at 1 thread (paper: 16.9 / 63.7 / 3.8 / 15.6 %)",
        &["phase", "share"],
        &rows,
    );
    let read_frac = phases[0].1 / total;
    println!(
        "\nAmdahl bound with a single reader and 12 consumers: {:.1}x (paper: 4.2x)",
        amdahl(read_frac, 12)
    );
}

/// Table 1: Disruptor tuning — wait strategies, ring sizes, batch sizes.
fn table1() {
    let csv = pvwatts_csv(InputOrder::Chronological);
    let mut rows = Vec::new();
    // Wait-strategy sweep at the paper's ring/batch settings.
    for wait in WaitStrategyKind::all() {
        let cfg = DisruptorConfig {
            consumers: 12,
            ring_size: 1024,
            batch: 256,
            wait,
        };
        let t = time_median(RUNS, || run_pvwatts_disruptor(&csv, cfg));
        rows.push(vec![
            wait.name().into(),
            "1024".into(),
            "256".into(),
            secs(t),
        ]);
    }
    // Ring-size sweep at the chosen wait strategy.
    for ring in [64, 256, 1024, 4096] {
        let cfg = DisruptorConfig {
            consumers: 12,
            ring_size: ring,
            batch: 256.min(ring),
            wait: WaitStrategyKind::Blocking,
        };
        let t = time_median(RUNS, || run_pvwatts_disruptor(&csv, cfg));
        rows.push(vec![
            "BlockingWaitStrategy".into(),
            ring.to_string(),
            256.min(ring).to_string(),
            secs(t),
        ]);
    }
    // Batch-size sweep.
    for batch in [1, 16, 256] {
        let cfg = DisruptorConfig {
            consumers: 12,
            ring_size: 1024,
            batch,
            wait: WaitStrategyKind::Blocking,
        };
        let t = time_median(RUNS, || run_pvwatts_disruptor(&csv, cfg));
        rows.push(vec![
            "BlockingWaitStrategy".into(),
            "1024".into(),
            batch.to_string(),
            secs(t),
        ]);
    }
    print_table(
        "Table 1 — Disruptor tuning (paper's best: Blocking, ring 1024, batch 256, 12 consumers)",
        &["wait strategy", "ring size", "producer batch", "time (s)"],
        &rows,
    );

    // Claim-strategy sweep: single-threaded claim vs multi-producer.
    let mut rows = Vec::new();
    let single = time_median(RUNS, || {
        run_pvwatts_disruptor(&csv, DisruptorConfig::default())
    });
    rows.push(vec![
        "SingleThreaded-ClaimStrategy".into(),
        "1".into(),
        secs(single),
    ]);
    for producers in [1usize, 2, 4] {
        let t = time_median(RUNS, || {
            jstar_bench::time_once(|| {
                jstar_apps::pvwatts::disruptor_version::run_multi_producer(
                    &csv,
                    producers,
                    DisruptorConfig::default(),
                )
            })
            .1
        });
        rows.push(vec![
            "MultiThreaded-ClaimStrategy".into(),
            producers.to_string(),
            secs(t),
        ]);
    }
    print_table(
        "Table 1 (cont.) — claim strategy: single vs multi producer",
        &["claim strategy", "producers", "time (s)"],
        &rows,
    );
}

/// Fig. 10: Disruptor PvWatts, sorted vs unsorted input, consumer sweep.
fn fig10() {
    let unsorted = pvwatts_csv(InputOrder::Chronological);
    let sorted = pvwatts_csv(InputOrder::RoundRobin);
    // Sequential JStar reference (the paper's comparison base).
    let seq = time_median(RUNS, || {
        run_pvwatts(&unsorted, 1, Variant::HashStore, EngineConfig::sequential())
    });
    let mut rows = Vec::new();
    for (name, csv) in [
        ("unsorted (chronological)", &unsorted),
        ("sorted (round-robin)", &sorted),
    ] {
        for consumers in [1usize, 2, 4, 8, 12] {
            let cfg = DisruptorConfig {
                consumers,
                ..Default::default()
            };
            let t = time_median(RUNS, || run_pvwatts_disruptor(csv, cfg));
            rows.push(vec![
                name.into(),
                consumers.to_string(),
                secs(t),
                format!("{:.2}x", seq.as_secs_f64() / t.as_secs_f64()),
            ]);
        }
    }
    print_table(
        &format!(
            "Fig. 10 — Disruptor PvWatts vs sequential JStar ({} s); paper: 3.31×/2.52× at 8 threads",
            secs(seq)
        ),
        &["input ordering", "consumers", "time (s)", "speedup vs sequential JStar"],
        &rows,
    );
}

/// Fig. 11: MatrixMult speedup vs pool size.
fn fig11() {
    let n = matmul_n();
    let a = Arc::new(matmul::gen_matrix(n, 11));
    let b = Arc::new(matmul::gen_matrix(n, 22));
    let sweep = thread_sweep();
    let times: Vec<Duration> = sweep
        .iter()
        .map(|&t| time_median(RUNS, || run_matmul(n, &a, &b, par_config(t))))
        .collect();
    let sp = speedups(&times);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .zip(&times)
        .zip(&sp)
        .map(|((&t, time), s)| vec![t.to_string(), secs(*time), format!("{s:.2}")])
        .collect();
    print_table(
        &format!(
            "Fig. 11 — MatrixMult (N={n}) speedup vs pool size (paper: good scaling to 20 cores)"
        ),
        &["threads", "time (s)", "relative speedup"],
        &rows,
    );
}

/// Fig. 12: Dijkstra speedup vs pool size.
fn fig12() {
    let spec = dijkstra_spec();
    let sweep = thread_sweep();
    let times: Vec<Duration> = sweep
        .iter()
        .map(|&t| time_median(RUNS, || run_dijkstra(spec, par_config(t))))
        .collect();
    let sp = speedups(&times);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .zip(&times)
        .zip(&sp)
        .map(|((&t, time), s)| vec![t.to_string(), secs(*time), format!("{s:.2}")])
        .collect();
    print_table(
        &format!(
            "Fig. 12 — Dijkstra (V={}, E≈{}) speedup vs pool size (paper: mediocre, ≤4.0×)",
            spec.n,
            spec.n + spec.extra
        ),
        &["threads", "time (s)", "relative speedup"],
        &rows,
    );
}

/// Fig. 13: Median speedup vs pool size.
fn fig13() {
    let data = Arc::new(median::gen_data(median_len(), 99));
    let sweep = thread_sweep();
    let times: Vec<Duration> = sweep
        .iter()
        .map(|&t| {
            let regions = (t * 2).max(12);
            time_median(RUNS, || run_median(&data, regions, par_config(t)))
        })
        .collect();
    let sp = speedups(&times);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .zip(&times)
        .zip(&sp)
        .map(|((&t, time), s)| vec![t.to_string(), secs(*time), format!("{s:.2}")])
        .collect();
    print_table(
        &format!(
            "Fig. 13 — Median (n={}) speedup vs pool size (paper: 8.6× @12, 14× @32)",
            data.len()
        ),
        &["threads", "time (s)", "relative speedup"],
        &rows,
    );
}
