fn main() {
    // Placeholder; the lint driver lands with the lib.
    std::process::exit(jstar_lint::run(
        std::env::args().nth(1).as_deref().unwrap_or("."),
    ));
}
