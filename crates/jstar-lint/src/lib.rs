//! Source-level concurrency-invariant lints for the JStar workspace.
//!
//! `cargo run -p jstar-lint [ROOT]` scans every `.rs` file under `ROOT`
//! (skipping `target/` and the model checker's own internals) and enforces
//! the commenting discipline the concurrency kernels rely on:
//!
//! * **R1 `safety`** — every `unsafe` site carries a `// SAFETY:` comment
//!   (or a `# Safety` doc section) within the preceding lines.
//! * **R2 `ordering`** — every atomic `Ordering::…` use in the core crates
//!   carries a `// ord:` rationale nearby. Files that predate the shim
//!   migration are allowlisted in [`R2_ALLOWLIST`]; shrink that list, never
//!   grow it.
//! * **R2b `seqcst`** — `Ordering::SeqCst` additionally needs a comment
//!   that names `SeqCst` and argues why a total order is required. (The
//!   usual fix is a downgrade, not a justification.)
//! * **R3 `unwrap`/`expect`/`std-sync`** — hot-path modules (`engine/`,
//!   `gamma/`, `jstar-pool`) must not panic via `.unwrap()`/`.expect(…)`
//!   or reach for `std::sync` primitives directly.
//! * **R4 `shim`** — files migrated onto `jstar_check::sync` must not
//!   regress to `std::sync::atomic` or `parking_lot` anywhere, tests
//!   included, or the model checker silently loses sight of them.
//!
//! Any rule is waivable at a specific site with
//! `// lint: allow(RULE): reason` on the line or within the three lines
//! above it — the reason is mandatory and the waiver is deliberately loud
//! in review diffs.
//!
//! The scanner is a comment/string-aware lexer, not a parser: strings and
//! comments are stripped before rule matching, so doc examples and
//! `"parking_lot"` inside a string never trip a rule, while the comment
//! text itself is what satisfies the SAFETY/ord requirements.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Files exempt from **R2** (`ord:` rationale) because they still use
/// plain `std` atomics with self-evident or legacy orderings. The goal is
/// to migrate these onto the shim and delete the entry; additions need a
/// PR argument.
pub const R2_ALLOWLIST: &[&str] = &[
    "crates/jstar-core/src/engine/coordinator.rs",
    "crates/jstar-core/src/engine/ctx.rs",
    "crates/jstar-core/src/engine/pipeline.rs",
    "crates/jstar-core/src/engine/runtime.rs",
    "crates/jstar-core/src/engine/schedule.rs",
    "crates/jstar-pool/src/parfor.rs",
];

/// Files that have been migrated onto `jstar_check::sync` and must stay
/// there (**R4**): a raw `std::sync::atomic`/`parking_lot` reference in one
/// of these would be invisible to the model checker.
pub const SHIM_MANDATED: &[&str] = &[
    "crates/jstar-core/src/delta.rs",
    "crates/jstar-core/src/gamma/concurrent.rs",
    "crates/jstar-core/src/gamma/reservation.rs",
    "crates/jstar-core/src/relation.rs",
    "crates/jstar-core/src/stats.rs",
    "crates/jstar-disruptor/src/lib.rs",
    "crates/jstar-disruptor/src/multi.rs",
    "crates/jstar-disruptor/src/ring.rs",
    "crates/jstar-disruptor/src/sequence.rs",
    "crates/jstar-disruptor/src/wait.rs",
    "crates/jstar-pool/src/batch.rs",
    "crates/jstar-pool/src/latch.rs",
    "crates/jstar-pool/src/pool.rs",
    "crates/jstar-pool/src/scope.rs",
];

/// Directories whose non-test code is a hot path (**R3**).
const HOT_PATHS: &[&str] = &[
    "crates/jstar-core/src/engine/",
    "crates/jstar-core/src/gamma/",
    "crates/jstar-pool/src/",
    "crates/jstar-disruptor/src/",
];

/// Crates whose atomics require `ord:` rationales (**R2**).
const CORE_CRATES: &[&str] = &[
    "crates/jstar-core/src/",
    "crates/jstar-pool/src/",
    "crates/jstar-disruptor/src/",
];

/// Paths never linted: generated output and the model checker's own
/// internals (which implement the instrumented primitives and so must use
/// raw `std::sync`/`parking_lot` and every `Ordering` variant).
const SKIP: &[&str] = &["target/", "crates/jstar-check/"];

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// A source line split into executable code and comment text.
#[derive(Default)]
struct Line {
    code: String,
    comment: String,
}

/// Comment/string-aware split of `src` into per-line code and comment
/// channels. String and char literal *contents* are elided from the code
/// channel (the quotes remain), so tokens inside literals never match a
/// rule; comment text goes to the comment channel where the SAFETY/ord
/// markers are looked up.
fn lex(src: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut out: Vec<Line> = vec![Line::default()];
    let mut state = State::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            out.push(Line::default());
            i += 1;
            continue;
        }
        let cur = out.last_mut().expect("one line always open");
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match (c, next) {
                    ('/', Some('/')) => {
                        state = State::LineComment;
                        i += 2;
                    }
                    ('/', Some('*')) => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    ('"', _) => {
                        cur.code.push('"');
                        state = State::Str;
                        i += 1;
                    }
                    ('r', Some('"')) | ('r', Some('#')) => {
                        // Possible raw string r"…" / r#"…"#.
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            cur.code.push('"');
                            state = State::RawStr(hashes);
                            i = j + 1;
                        } else {
                            cur.code.push(c);
                            i += 1;
                        }
                    }
                    ('\'', _) => {
                        // Char literal vs lifetime: a literal is 'x' or an
                        // escape; a lifetime has no closing quote nearby.
                        if next == Some('\\') || chars.get(i + 2) == Some(&'\'') {
                            cur.code.push('\'');
                            state = State::Char;
                            i += 1;
                        } else {
                            cur.code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                    }
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        cur.code.push('"');
                        state = State::Code;
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    out
}

/// True if `hay` contains `needle` as a standalone identifier (not part of
/// a longer identifier or path segment).
fn has_word(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// The atomic `Ordering::` variants referenced on this code line.
fn atomic_orderings(code: &str) -> Vec<&'static str> {
    let mut found = Vec::new();
    let mut start = 0;
    while let Some(pos) = code[start..].find("Ordering::") {
        let after = &code[start + pos + "Ordering::".len()..];
        for &v in ATOMIC_ORDERINGS {
            if after.starts_with(v) {
                let rest = after.as_bytes().get(v.len()).copied();
                let boundary = !rest.is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_');
                if boundary {
                    found.push(v);
                }
            }
        }
        start += pos + "Ordering::".len();
    }
    found
}

/// Does any comment within `[line-window, line]` (0-indexed) contain
/// `marker`?
fn comment_nearby(lines: &[Line], line: usize, window: usize, marker: &str) -> bool {
    let lo = line.saturating_sub(window);
    lines[lo..=line].iter().any(|l| l.comment.contains(marker))
}

/// Is the site waived via `// lint: allow(rule): reason`?
fn waived(lines: &[Line], line: usize, rule: &str) -> bool {
    let lo = line.saturating_sub(3);
    let tag = format!("lint: allow({rule})");
    lines[lo..=line].iter().any(|l| {
        if let Some(pos) = l.comment.find(&tag) {
            // The reason after the closing "):" is mandatory.
            let rest = l.comment[pos + tag.len()..].trim_start();
            rest.starts_with(':') && rest[1..].trim().len() >= 3
        } else {
            false
        }
    })
}

fn path_matches(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

/// First line (0-indexed) of the file's test region, if any. Test modules
/// in this workspace sit at the end of each file, so everything from the
/// first `#[cfg(test)]`-style attribute (or the whole file, under a
/// `tests/` directory) is treated as test code.
fn test_region_start(rel: &str, lines: &[Line]) -> usize {
    // Whole-file test code: integration test dirs, plus the out-of-line
    // test/testutil modules the parent includes under `#[cfg(test)]`.
    if rel.contains("/tests/")
        || rel.starts_with("tests/")
        || rel.ends_with("/tests.rs")
        || rel.ends_with("/testutil.rs")
        || rel.ends_with("/bench.rs")
    {
        return 0;
    }
    lines
        .iter()
        .position(|l| {
            let c = &l.code;
            c.contains("#[cfg(test)]") || c.contains("#[cfg(all(test")
        })
        .unwrap_or(lines.len())
}

/// Lints one file's source. `rel` is the path relative to the workspace
/// root, with `/` separators.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if path_matches(rel, SKIP) {
        return findings;
    }
    let lines = lex(src);
    let test_start = test_region_start(rel, &lines);
    let in_core = path_matches(rel, CORE_CRATES);
    let in_hot = path_matches(rel, HOT_PATHS);
    let shim_file = SHIM_MANDATED.contains(&rel);
    let r2_allowed = R2_ALLOWLIST.contains(&rel);

    let mut push = |line: usize, rule: &'static str, message: String| {
        findings.push(Finding {
            file: rel.to_string(),
            line: line + 1,
            rule,
            message,
        });
    };

    for (n, l) in lines.iter().enumerate() {
        let code = &l.code;
        let in_test = n >= test_start;

        // R1: unsafe needs a SAFETY comment (everywhere, tests included).
        if has_word(code, "unsafe")
            && !comment_nearby(&lines, n, 6, "SAFETY")
            && !comment_nearby(&lines, n, 6, "# Safety")
            && !waived(&lines, n, "safety")
        {
            push(
                n,
                "safety",
                "`unsafe` without a `// SAFETY:` comment within 6 lines".into(),
            );
        }

        let ords = atomic_orderings(code);

        // R2: atomic orderings in core crates need an `ord:` rationale.
        if !ords.is_empty()
            && in_core
            && !in_test
            && !r2_allowed
            && !comment_nearby(&lines, n, 10, "ord:")
            && !waived(&lines, n, "ordering")
        {
            push(
                n,
                "ordering",
                format!(
                    "`Ordering::{}` without an `// ord:` rationale within 10 lines",
                    ords[0]
                ),
            );
        }

        // R2b: SeqCst needs an explicit named justification, everywhere.
        if ords.contains(&"SeqCst")
            && !comment_nearby(&lines, n, 10, "SeqCst")
            && !waived(&lines, n, "seqcst")
        {
            push(
                n,
                "seqcst",
                "`Ordering::SeqCst` without a comment justifying the total order \
                 (prefer a downgrade)"
                    .into(),
            );
        }

        // R3: hot-path hygiene (non-test code only).
        if in_hot && !in_test {
            if code.contains(".unwrap()") && !waived(&lines, n, "unwrap") {
                push(n, "unwrap", "`.unwrap()` on a hot path".into());
            }
            if code.contains(".expect(") && !waived(&lines, n, "expect") {
                push(n, "expect", "`.expect(…)` on a hot path".into());
            }
            // `std::sync::Arc` is fine; the ban is on blocking/channel
            // primitives (locks live in jstar_check::sync or parking_lot,
            // coordination in jstar-pool). Atomics are R2/R4's business.
            let std_sync_lock = code.contains("std::sync::")
                && ["Mutex", "RwLock", "Condvar", "Barrier", "mpsc"]
                    .iter()
                    .any(|w| has_word(code, w));
            if std_sync_lock && !waived(&lines, n, "std-sync") {
                push(
                    n,
                    "std-sync",
                    "direct `std::sync` primitive on a hot path (use jstar_check::sync \
                     or jstar-pool)"
                        .into(),
                );
            }
        }

        // R4: shim-mandated files must not regress to raw primitives.
        if shim_file {
            for pat in ["std::sync::atomic", "parking_lot"] {
                if code.contains(pat) && !waived(&lines, n, "shim") {
                    push(
                        n,
                        "shim",
                        format!(
                            "`{pat}` in a shim-mandated file (use jstar_check::sync so \
                             the model checker sees this)"
                        ),
                    );
                }
            }
        }
    }
    findings
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lints every `.rs` file under `root`; returns all findings sorted by
/// path and line.
pub fn lint_tree(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    walk(root, &mut files);
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        findings.extend(lint_source(&rel, &src));
    }
    findings
}

/// CLI driver: prints findings, returns the process exit code.
pub fn run(root: &str) -> i32 {
    let findings = lint_tree(Path::new(root));
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("jstar-lint: clean");
        0
    } else {
        println!("jstar-lint: {} finding(s)", findings.len());
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORE: &str = "crates/jstar-core/src/gamma/somefile.rs";

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn bare_unsafe_fails() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(rules(&lint_source(CORE, src)), ["safety"]);
    }

    #[test]
    fn safety_comment_satisfies_r1() {
        let src =
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller contract.\n    unsafe { *p }\n}\n";
        assert!(lint_source(CORE, src).is_empty());
    }

    #[test]
    fn safety_doc_section_satisfies_r1() {
        let src = "/// # Safety\n/// Caller must own `p`.\npub unsafe fn f(p: *const u8) {}\n";
        assert!(lint_source(CORE, src).is_empty());
    }

    #[test]
    fn unsafe_in_string_is_ignored() {
        let src = "fn f() { let _ = \"unsafe { }\"; }\n";
        assert!(lint_source(CORE, src).is_empty());
    }

    #[test]
    fn unsafe_in_raw_string_and_comment_is_ignored() {
        let src = "fn f() { let _ = r#\"unsafe\"#; }\n// unsafe unsafe unsafe\n/* unsafe */\n";
        assert!(lint_source(CORE, src).is_empty());
    }

    #[test]
    fn ordering_without_rationale_fails_in_core() {
        let src = "fn f(a: &A) { a.x.store(1, Ordering::Release); }\n";
        assert_eq!(rules(&lint_source(CORE, src)), ["ordering"]);
    }

    #[test]
    fn ord_comment_satisfies_r2() {
        let src = "fn f(a: &A) {\n    // ord: Release — publishes the init above.\n    a.x.store(1, Ordering::Release);\n}\n";
        assert!(lint_source(CORE, src).is_empty());
    }

    #[test]
    fn cmp_ordering_is_not_atomic() {
        let src = "fn f(a: i32) -> bool { a.cmp(&0) == Ordering::Less }\n";
        assert!(lint_source(CORE, src).is_empty());
    }

    #[test]
    fn ordering_outside_core_crates_is_free() {
        let src = "fn f(a: &A) { a.x.store(1, Ordering::Release); }\n";
        assert!(lint_source("crates/jstar-apps/src/x.rs", src).is_empty());
    }

    #[test]
    fn allowlisted_file_skips_r2() {
        let src = "fn f(a: &A) { a.x.store(1, Ordering::Release); }\n";
        assert!(lint_source("crates/jstar-pool/src/parfor.rs", src).is_empty());
    }

    #[test]
    fn test_region_skips_r2_but_not_r1() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(a: &A) { a.x.load(Ordering::Acquire); }\n    fn g(p: *const u8) -> u8 { unsafe { *p } }\n}\n";
        assert_eq!(rules(&lint_source(CORE, src)), ["safety"]);
    }

    #[test]
    fn seqcst_needs_named_justification() {
        // An ord: comment that does not mention SeqCst is not enough.
        let src = "fn f(a: &A) {\n    // ord: total order needed.\n    a.x.store(1, Ordering::SeqCst);\n}\n";
        assert_eq!(rules(&lint_source(CORE, src)), ["seqcst"]);
        let ok = "fn f(a: &A) {\n    // ord: SeqCst — asymmetric Dekker handoff needs a total order.\n    a.x.store(1, Ordering::SeqCst);\n}\n";
        assert!(lint_source(CORE, ok).is_empty());
    }

    #[test]
    fn hot_path_unwrap_fails_and_waiver_passes() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }\n";
        assert_eq!(rules(&lint_source(CORE, src)), ["unwrap"]);
        let ok = "fn f(o: Option<u8>) -> u8 {\n    // lint: allow(unwrap): o is Some by construction two lines up.\n    o.unwrap()\n}\n";
        assert!(lint_source(CORE, ok).is_empty());
    }

    #[test]
    fn waiver_without_reason_is_rejected() {
        let src = "fn f(o: Option<u8>) -> u8 {\n    // lint: allow(unwrap):\n    o.unwrap()\n}\n";
        assert_eq!(rules(&lint_source(CORE, src)), ["unwrap"]);
    }

    #[test]
    fn unwrap_in_tests_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(o: Option<u8>) -> u8 { o.unwrap() }\n}\n";
        assert!(lint_source(CORE, src).is_empty());
    }

    #[test]
    fn std_sync_lock_on_hot_path_fails_but_arc_is_fine() {
        let src = "use std::sync::{Arc, Mutex};\n";
        assert_eq!(rules(&lint_source(CORE, src)), ["std-sync"]);
        assert!(lint_source(CORE, "use std::sync::Arc;\n").is_empty());
    }

    #[test]
    fn shim_file_rejects_raw_primitives_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicU64;\n}\n";
        let f = lint_source("crates/jstar-core/src/delta.rs", src);
        assert_eq!(rules(&f), ["shim"]);
        let pl = "fn f() { let _ = parking_lot::Mutex::new(()); }\n";
        assert_eq!(
            rules(&lint_source("crates/jstar-core/src/delta.rs", pl)),
            ["shim"]
        );
    }

    #[test]
    fn shim_tokens_in_doc_comments_are_fine() {
        let src = "//! ```\n//! use std::sync::atomic::AtomicI64;\n//! let m = parking_lot::Mutex::new(());\n//! ```\n";
        assert!(lint_source("crates/jstar-core/src/delta.rs", src).is_empty());
    }

    #[test]
    fn checker_internals_are_skipped() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert!(lint_source("crates/jstar-check/src/exec.rs", src).is_empty());
    }

    #[test]
    fn lifetimes_do_not_confuse_the_lexer() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g() -> char { 'x' }\nfn h() -> char { '\\'' }\n";
        assert!(lint_source(CORE, src).is_empty());
    }

    #[test]
    fn findings_carry_one_based_lines() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let f = lint_source(CORE, src);
        assert_eq!((f[0].line, f[0].rule), (2, "safety"));
    }
}
