//! Property-based tests for the CSV substrate: the region protocol must
//! deliver every record exactly once for arbitrary content and region
//! counts, and byte-level parsing must agree with the standard library.

use jstar_csv::{parse_f64, parse_i64, records, split_regions, RegionReader};
use proptest::prelude::*;

proptest! {
    /// Every record is read exactly once no matter how the buffer is cut
    /// into regions.
    #[test]
    fn regions_partition_records_exactly(
        values in prop::collection::vec(0i64..1_000_000, 0..120),
        n_regions in 1usize..12,
        trailing_newline in any::<bool>(),
    ) {
        let mut data = Vec::new();
        for (i, v) in values.iter().enumerate() {
            data.extend_from_slice(format!("{i},{v}").as_bytes());
            if i + 1 < values.len() || trailing_newline {
                data.push(b'\n');
            }
        }
        let mut got = Vec::new();
        for (lo, hi) in split_regions(data.len(), n_regions) {
            for rec in RegionReader::new(&data, lo, hi).records() {
                got.push(parse_i64(rec.field(0).unwrap()).unwrap() as usize);
            }
        }
        got.sort();
        let want: Vec<usize> = (0..values.len()).collect();
        prop_assert_eq!(got, want);
    }

    /// Region-parallel reading equals whole-buffer reading field by field.
    #[test]
    fn region_fields_match_whole_buffer(
        rows in prop::collection::vec(
            prop::collection::vec(0i64..100, 1..5),
            1..40,
        ),
        n_regions in 1usize..8,
    ) {
        let mut data = Vec::new();
        for row in &rows {
            let fields: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            data.extend_from_slice(fields.join(",").as_bytes());
            data.push(b'\n');
        }
        let whole: Vec<Vec<i64>> = records(&data)
            .map(|r| r.fields().map(|f| parse_i64(f).unwrap()).collect())
            .collect();
        let mut by_region: Vec<Vec<i64>> = Vec::new();
        for (lo, hi) in split_regions(data.len(), n_regions) {
            for rec in RegionReader::new(&data, lo, hi).records() {
                by_region.push(rec.fields().map(|f| parse_i64(f).unwrap()).collect());
            }
        }
        prop_assert_eq!(whole.clone(), rows);
        prop_assert_eq!(by_region, whole);
    }

    /// parse_i64 agrees with str::parse on arbitrary integers.
    #[test]
    fn parse_i64_matches_std(v in any::<i64>()) {
        let s = v.to_string();
        prop_assert_eq!(parse_i64(s.as_bytes()), Ok(v));
    }

    /// parse_f64 agrees with str::parse on plain decimals with up to six
    /// fractional digits (exact in binary for the scales used here is not
    /// guaranteed, so compare within 1 ULP-ish tolerance).
    #[test]
    fn parse_f64_close_to_std(int_part in -10_000i64..10_000, frac in 0u32..1_000_000) {
        let s = format!("{int_part}.{frac:06}");
        let ours = parse_f64(s.as_bytes()).unwrap();
        let std: f64 = s.parse().unwrap();
        prop_assert!((ours - std).abs() <= std.abs() * 1e-12 + 1e-12, "{s}: {ours} vs {std}");
    }

    /// Garbage never panics the parsers.
    #[test]
    fn parsers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..32)) {
        let _ = parse_i64(&bytes);
        let _ = parse_f64(&bytes);
        let _ = records(&bytes).count();
    }
}
