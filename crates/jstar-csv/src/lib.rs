//! # jstar-csv — byte-oriented CSV reading substrate
//!
//! The paper attributes JStar's PvWatts win over hand-coded Java to "its
//! own more efficient CSV library that keeps lines as byte arrays and
//! avoids conversion to strings as much as possible" (§6.1), and to a
//! Hadoop-style parallel reader: "the CSV reader library can run several
//! readers in parallel, on different parts of the input file. (Each reader
//! continues reading a little way past the end of its region, to ensure
//! that all records have been read.)" (§6.2).
//!
//! This crate is that library:
//!
//! * [`Record`] / [`records`] — zero-copy iteration over lines and fields
//!   as `&[u8]` slices;
//! * [`parse_i64`] / [`parse_f64`] — numeric parsing straight from bytes;
//! * [`split_regions`] + [`RegionReader`] — the parallel region protocol:
//!   a reader skips the partial record at its region start (the previous
//!   reader finishes it past its own end), so every record is read exactly
//!   once;
//! * [`read_parallel`] — N region readers on a [`jstar_pool::ThreadPool`].

mod parse;
mod reader;
mod region;

pub use parse::{parse_f64, parse_i64, ParseNumError};
pub use reader::{records, FieldIter, Record};
pub use region::{read_parallel, split_regions, RegionReader};
