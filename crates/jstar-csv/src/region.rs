//! Hadoop-style parallel region reading (§6.2).
//!
//! The buffer is split into N byte regions. Each reader owns the records
//! that *start* within its region: it skips the partial record at its
//! region start (unless the region starts the buffer or sits exactly on a
//! record boundary) and keeps reading past its region end to finish the
//! final record it started. Every record is therefore read exactly once,
//! with no coordination between readers.

use crate::reader::{records, Record};
use jstar_pool::ThreadPool;

/// Splits `len` bytes into at most `n` contiguous regions of roughly equal
/// size. Returns `(start, end)` pairs; regions are non-empty.
pub fn split_regions(len: usize, n: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let n = n.clamp(1, len);
    let base = len / n;
    let extra = len % n;
    let mut regions = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        regions.push((start, start + size));
        start += size;
    }
    regions
}

/// Iterates the records owned by one region of `data`.
pub struct RegionReader<'a> {
    data: &'a [u8],
    start: usize,
    end: usize,
}

impl<'a> RegionReader<'a> {
    /// Creates a reader for `data[start..end)` under the region protocol.
    pub fn new(data: &'a [u8], start: usize, end: usize) -> Self {
        RegionReader { data, start, end }
    }

    /// Iterates the records that start within this region. The final
    /// record may extend past `end` — that is the "reads a little way past
    /// the end of its region" part of the protocol.
    pub fn records(&self) -> impl Iterator<Item = Record<'a>> + use<'a> {
        let data = self.data;
        let end = self.end;
        // A region starting mid-buffer owns records *starting* inside it;
        // the record containing byte `start` belongs to the previous
        // region, so skip to the next newline.
        let first = if self.start == 0 {
            0
        } else {
            match data[self.start - 1..end.min(data.len())]
                .iter()
                .position(|&b| b == b'\n')
            {
                // start-1 lets a region whose start sits exactly after a
                // newline own the record beginning at `start`.
                Some(i) => self.start - 1 + i + 1,
                None => data.len(), // no record starts in this region
            }
        };
        records(&data[first..])
            .take_while(move |r| first + r.offset() < end)
            .map(move |r| RecordAt {
                rec: r,
                base: first,
            })
            .map(|ra| ra.rebase())
    }
}

/// Helper to rebase record offsets to the whole buffer.
struct RecordAt<'a> {
    rec: Record<'a>,
    base: usize,
}

impl<'a> RecordAt<'a> {
    fn rebase(self) -> Record<'a> {
        // Record is Copy with private fields; reconstruct via the public
        // surface: offset is only advisory, so re-wrap the same line.
        self.rec.with_offset(self.base + self.rec.offset())
    }
}

/// Reads all regions of `data` in parallel on `pool`, mapping each record
/// through `f` and collecting per-region result vectors (in region order,
/// so concatenation preserves file order).
pub fn read_parallel<R, F>(pool: &ThreadPool, data: &[u8], n_regions: usize, f: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(Record<'_>) -> R + Sync,
{
    let regions = split_regions(data.len(), n_regions);
    let mut out: Vec<Vec<R>> = (0..regions.len()).map(|_| Vec::new()).collect();
    let f = &f;
    pool.scope(|s| {
        for ((start, end), slot) in regions.iter().copied().zip(out.iter_mut()) {
            s.spawn(move |_| {
                let reader = RegionReader::new(data, start, end);
                *slot = reader.records().map(f).collect();
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(n: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..n {
            out.extend_from_slice(format!("{i},{}\n", i * 2).as_bytes());
        }
        out
    }

    fn read_with_regions(data: &[u8], n: usize) -> Vec<i64> {
        let regions = split_regions(data.len(), n);
        let mut all = Vec::new();
        for (s, e) in regions {
            let rr = RegionReader::new(data, s, e);
            for rec in rr.records() {
                all.push(crate::parse_i64(rec.field(0).unwrap()).unwrap());
            }
        }
        all
    }

    #[test]
    fn split_covers_everything_without_overlap() {
        let regions = split_regions(100, 7);
        assert_eq!(regions.len(), 7);
        assert_eq!(regions[0].0, 0);
        assert_eq!(regions.last().unwrap().1, 100);
        for w in regions.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn split_edge_cases() {
        assert!(split_regions(0, 4).is_empty());
        assert_eq!(split_regions(3, 10), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(split_regions(10, 1), vec![(0, 10)]);
    }

    #[test]
    fn every_record_read_exactly_once_any_region_count() {
        let data = lines(101);
        let expected: Vec<i64> = (0..101).collect();
        for n in [1, 2, 3, 5, 8, 13, 50] {
            let mut got = read_with_regions(&data, n);
            got.sort();
            assert_eq!(got, expected, "region count {n}");
        }
    }

    #[test]
    fn region_boundary_on_newline_exact() {
        // Craft data where a region boundary lands exactly after a \n.
        let data = b"aa\nbb\ncc\n".to_vec();
        // Boundary at 3 = exactly the start of "bb".
        let r0: Vec<_> = RegionReader::new(&data, 0, 3)
            .records()
            .map(|r| r.bytes().to_vec())
            .collect();
        let r1: Vec<_> = RegionReader::new(&data, 3, 9)
            .records()
            .map(|r| r.bytes().to_vec())
            .collect();
        assert_eq!(r0, vec![b"aa".to_vec()]);
        assert_eq!(r1, vec![b"bb".to_vec(), b"cc".to_vec()]);
    }

    #[test]
    fn region_with_no_record_start_is_empty() {
        // One long record spanning all regions: only region 0 owns it.
        let data = b"0123456789012345678901234567890123456789\n".to_vec();
        let regions = split_regions(data.len(), 4);
        let counts: Vec<usize> = regions
            .iter()
            .map(|&(s, e)| RegionReader::new(&data, s, e).records().count())
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 1);
        assert_eq!(counts[0], 1);
    }

    #[test]
    fn last_record_without_newline_is_owned_once() {
        let mut data = lines(10);
        data.extend_from_slice(b"999,0"); // no trailing newline
        for n in [1, 2, 3, 4] {
            let got = read_with_regions(&data, n);
            assert_eq!(got.iter().filter(|&&v| v == 999).count(), 1, "regions {n}");
            assert_eq!(got.len(), 11);
        }
    }

    #[test]
    fn parallel_read_matches_sequential() {
        let pool = ThreadPool::new(4);
        let data = lines(1000);
        let chunks = read_parallel(&pool, &data, 8, |rec| {
            crate::parse_i64(rec.field(0).unwrap()).unwrap()
        });
        let mut got: Vec<i64> = chunks.into_iter().flatten().collect();
        // Region order == file order, so even unsorted it should match.
        assert_eq!(got, (0..1000).collect::<Vec<i64>>());
        got.sort();
        assert_eq!(got.len(), 1000);
    }
}
