//! Zero-copy record and field iteration over CSV bytes.

/// One CSV record: a line of the input, kept as a byte slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record<'a> {
    line: &'a [u8],
    /// Byte offset of the line start within the original buffer.
    offset: usize,
}

impl<'a> Record<'a> {
    /// The raw line bytes (no trailing newline).
    pub fn bytes(&self) -> &'a [u8] {
        self.line
    }

    /// Byte offset of this record in the input buffer.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Rebases the advisory offset (used by the region reader to report
    /// whole-buffer offsets).
    pub(crate) fn with_offset(self, offset: usize) -> Record<'a> {
        Record {
            line: self.line,
            offset,
        }
    }

    /// Iterates the comma-separated fields as byte slices.
    pub fn fields(&self) -> FieldIter<'a> {
        FieldIter {
            rest: Some(self.line),
        }
    }

    /// The `i`-th field, if present.
    pub fn field(&self, i: usize) -> Option<&'a [u8]> {
        self.fields().nth(i)
    }
}

/// Iterator over the comma-separated fields of one record.
pub struct FieldIter<'a> {
    rest: Option<&'a [u8]>,
}

impl<'a> Iterator for FieldIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let rest = self.rest?;
        match rest.iter().position(|&b| b == b',') {
            Some(i) => {
                self.rest = Some(&rest[i + 1..]);
                Some(&rest[..i])
            }
            None => {
                self.rest = None;
                Some(rest)
            }
        }
    }
}

/// Iterates the records (lines) of `data`, handling `\n` and `\r\n`
/// endings and a missing final newline. Empty lines are skipped.
pub fn records(data: &[u8]) -> impl Iterator<Item = Record<'_>> {
    RecordIter { data, pos: 0 }
}

struct RecordIter<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for RecordIter<'a> {
    type Item = Record<'a>;

    fn next(&mut self) -> Option<Record<'a>> {
        loop {
            if self.pos >= self.data.len() {
                return None;
            }
            let start = self.pos;
            let rest = &self.data[start..];
            let (mut line, consumed) = match rest.iter().position(|&b| b == b'\n') {
                Some(i) => (&rest[..i], i + 1),
                None => (rest, rest.len()),
            };
            self.pos = start + consumed;
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            if line.is_empty() {
                continue;
            }
            return Some(Record {
                line,
                offset: start,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_lines_and_fields() {
        let data = b"2023,1,15,0:00,120\n2023,1,15,1:00,0\n";
        let recs: Vec<Record> = records(data).collect();
        assert_eq!(recs.len(), 2);
        let fields: Vec<&[u8]> = recs[0].fields().collect();
        assert_eq!(fields, vec![&b"2023"[..], b"1", b"15", b"0:00", b"120"]);
        assert_eq!(recs[1].field(4), Some(&b"0"[..]));
    }

    #[test]
    fn handles_missing_final_newline() {
        let data = b"a,b\nc,d";
        let recs: Vec<Record> = records(data).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].field(1), Some(&b"d"[..]));
    }

    #[test]
    fn handles_crlf() {
        let data = b"a,b\r\nc,d\r\n";
        let recs: Vec<Record> = records(data).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].field(1), Some(&b"b"[..]));
    }

    #[test]
    fn skips_empty_lines() {
        let data = b"a\n\n\nb\n";
        let recs: Vec<Record> = records(data).collect();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert_eq!(records(b"").count(), 0);
        assert_eq!(records(b"\n\n").count(), 0);
    }

    #[test]
    fn empty_fields_are_preserved() {
        let data = b"a,,c\n";
        let recs: Vec<Record> = records(data).collect();
        let fields: Vec<&[u8]> = recs[0].fields().collect();
        assert_eq!(fields, vec![&b"a"[..], b"", b"c"]);
    }

    #[test]
    fn offsets_point_into_buffer() {
        let data = b"aa\nbb\ncc\n";
        let offs: Vec<usize> = records(data).map(|r| r.offset()).collect();
        assert_eq!(offs, vec![0, 3, 6]);
    }

    #[test]
    fn field_iterator_count() {
        let data = b"1,2,3,4,5\n";
        let rec = records(data).next().unwrap();
        assert_eq!(rec.fields().count(), 5);
        assert_eq!(rec.field(5), None);
    }
}
