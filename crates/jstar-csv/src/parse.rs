//! Numeric parsing straight from byte slices — no `String` conversion.

use std::fmt;

/// Error parsing a numeric field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseNumError;

impl fmt::Display for ParseNumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed numeric field")
    }
}

impl std::error::Error for ParseNumError {}

/// Parses a decimal integer (optional leading `-`/`+`, surrounding ASCII
/// whitespace tolerated) from raw bytes.
pub fn parse_i64(field: &[u8]) -> Result<i64, ParseNumError> {
    let field = trim(field);
    if field.is_empty() {
        return Err(ParseNumError);
    }
    let (neg, digits) = match field[0] {
        b'-' => (true, &field[1..]),
        b'+' => (false, &field[1..]),
        _ => (false, field),
    };
    if digits.is_empty() {
        return Err(ParseNumError);
    }
    let mut acc: i64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return Err(ParseNumError);
        }
        acc = acc
            .checked_mul(10)
            .and_then(|a| a.checked_add((b - b'0') as i64))
            .ok_or(ParseNumError)?;
    }
    Ok(if neg { -acc } else { acc })
}

/// Parses a simple decimal float (`-12.5`, `3`, `.25`, `1e3` is *not*
/// supported — PVWatts data has plain decimals) from raw bytes.
pub fn parse_f64(field: &[u8]) -> Result<f64, ParseNumError> {
    let field = trim(field);
    if field.is_empty() {
        return Err(ParseNumError);
    }
    let (neg, rest) = match field[0] {
        b'-' => (true, &field[1..]),
        b'+' => (false, &field[1..]),
        _ => (false, field),
    };
    let mut int_part: f64 = 0.0;
    let mut frac_part: f64 = 0.0;
    let mut frac_scale: f64 = 1.0;
    let mut seen_digit = false;
    let mut in_frac = false;
    for &b in rest {
        match b {
            b'0'..=b'9' => {
                seen_digit = true;
                let d = (b - b'0') as f64;
                if in_frac {
                    frac_scale *= 0.1;
                    frac_part += d * frac_scale;
                } else {
                    int_part = int_part * 10.0 + d;
                }
            }
            b'.' if !in_frac => in_frac = true,
            _ => return Err(ParseNumError),
        }
    }
    if !seen_digit {
        return Err(ParseNumError);
    }
    let v = int_part + frac_part;
    Ok(if neg { -v } else { v })
}

fn trim(mut field: &[u8]) -> &[u8] {
    while let [b, rest @ ..] = field {
        if b.is_ascii_whitespace() {
            field = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., b] = field {
        if b.is_ascii_whitespace() {
            field = rest;
        } else {
            break;
        }
    }
    field
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_integers() {
        assert_eq!(parse_i64(b"0"), Ok(0));
        assert_eq!(parse_i64(b"12345"), Ok(12345));
        assert_eq!(parse_i64(b"-42"), Ok(-42));
        assert_eq!(parse_i64(b"+7"), Ok(7));
        assert_eq!(parse_i64(b" 99 "), Ok(99));
    }

    #[test]
    fn rejects_bad_integers() {
        assert!(parse_i64(b"").is_err());
        assert!(parse_i64(b"-").is_err());
        assert!(parse_i64(b"12a").is_err());
        assert!(parse_i64(b"1.5").is_err());
        assert!(parse_i64(b"999999999999999999999999").is_err(), "overflow");
    }

    #[test]
    fn int_extremes() {
        assert_eq!(parse_i64(b"9223372036854775807"), Ok(i64::MAX));
        assert_eq!(parse_i64(b"9223372036854775808"), Err(ParseNumError));
    }

    #[test]
    fn parses_floats() {
        assert_eq!(parse_f64(b"0"), Ok(0.0));
        assert_eq!(parse_f64(b"3.25"), Ok(3.25));
        assert_eq!(parse_f64(b"-1.5"), Ok(-1.5));
        assert_eq!(parse_f64(b".5"), Ok(0.5));
        assert_eq!(parse_f64(b"10."), Ok(10.0));
        assert_eq!(parse_f64(b" 2.0 "), Ok(2.0));
    }

    #[test]
    fn rejects_bad_floats() {
        assert!(parse_f64(b"").is_err());
        assert!(parse_f64(b".").is_err());
        assert!(parse_f64(b"1.2.3").is_err());
        assert!(parse_f64(b"1e3").is_err(), "scientific not supported");
        assert!(parse_f64(b"nan").is_err());
    }

    #[test]
    fn float_agrees_with_std_on_plain_decimals() {
        for s in ["0.125", "123.5", "-7.75", "1000000.0", "42"] {
            let ours = parse_f64(s.as_bytes()).unwrap();
            let std: f64 = s.parse().unwrap();
            assert_eq!(ours, std, "{s}");
        }
    }
}
