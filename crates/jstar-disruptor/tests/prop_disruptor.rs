//! Property-based tests for the ring buffer: exactly-once in-order
//! delivery must survive arbitrary ring sizes, batch patterns, consumer
//! counts and wait strategies.

use jstar_disruptor::{Disruptor, WaitStrategyKind};
use proptest::prelude::*;
use std::ops::ControlFlow;
use std::sync::Mutex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One producer, K consumers, arbitrary publish batching: every
    /// consumer sees 0..n in order, exactly once.
    #[test]
    fn broadcast_exactly_once_in_order(
        ring_pow in 2u32..8,
        batches in prop::collection::vec(1usize..20, 1..30),
        consumers in 1usize..5,
        wait_idx in 0usize..4,
    ) {
        let ring = 1usize << ring_pow;
        let wait = WaitStrategyKind::all()[wait_idx];
        let mut d = Disruptor::<i64>::new(ring, wait);
        let handles: Vec<_> = (0..consumers).map(|_| d.add_consumer()).collect();
        let mut producer = d.into_producer();
        let seen: Vec<Mutex<Vec<i64>>> = (0..consumers).map(|_| Mutex::new(Vec::new())).collect();
        let total: usize = batches.iter().sum();
        std::thread::scope(|s| {
            for (c, log) in handles.iter().zip(&seen) {
                s.spawn(move || {
                    c.run(|&v, _| {
                        if v < 0 {
                            return ControlFlow::Break(());
                        }
                        log.lock().unwrap().push(v);
                        ControlFlow::Continue(())
                    });
                });
            }
            let mut next = 0i64;
            for &b in &batches {
                let b = b.min(ring);
                producer.publish_batch(b, |i, slot| *slot = next + i as i64);
                next += b as i64;
            }
            producer.publish(|slot| *slot = -1);
        });
        let clamped_total: i64 = batches.iter().map(|&b| b.min(ring) as i64).sum();
        let want: Vec<i64> = (0..clamped_total).collect();
        let _ = total;
        for log in &seen {
            prop_assert_eq!(&*log.lock().unwrap(), &want);
        }
    }

    /// The producer gate never lets a slot be overwritten before every
    /// consumer has passed it, even with a deliberately slow consumer.
    #[test]
    fn no_overwrites_with_slow_consumer(
        ring_pow in 1u32..5,
        n in 1i64..400,
    ) {
        let ring = 1usize << ring_pow;
        let mut d = Disruptor::<i64>::new(ring, WaitStrategyKind::Yielding);
        let consumer = d.add_consumer();
        let mut producer = d.into_producer();
        let sum = std::sync::atomic::AtomicI64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut slow = 0u32;
                consumer.run(|&v, _| {
                    if v < 0 {
                        return ControlFlow::Break(());
                    }
                    slow += 1;
                    if slow.is_multiple_of(7) {
                        std::thread::yield_now();
                    }
                    sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    ControlFlow::Continue(())
                });
            });
            for i in 1..=n {
                producer.publish(|slot| *slot = i);
            }
            producer.publish(|slot| *slot = -1);
        });
        prop_assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), n * (n + 1) / 2);
    }
}
