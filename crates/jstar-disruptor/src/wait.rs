//! Consumer wait strategies (Table 1's "Wait Strategy" row).
//!
//! The Disruptor offers "several alternative waiting strategies for
//! consumers" trading CPU for latency. The paper's best PvWatts result
//! used `BlockingWaitStrategy`; the benchmarks in `jstar-bench` sweep all
//! four, regenerating the Table 1 tuning exercise.

use crate::sequence::Sequence;
// Shim lock/condvar: parking_lot in production, instrumented modelled
// types under `--features model-check` (see crates/jstar-check).
use jstar_check::sync::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// How a consumer waits for the producer cursor to reach a sequence.
pub trait WaitStrategy: Send + Sync {
    /// Blocks until `cursor >= needed`; returns the available cursor value.
    fn wait_for(&self, needed: i64, cursor: &Sequence) -> i64;

    /// Called by the producer after advancing the cursor; wakes blocked
    /// consumers (no-op for spinning strategies).
    fn signal(&self) {}
}

/// Selector for the built-in strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStrategyKind {
    /// Lock + condition variable: lowest CPU, highest latency. The paper's
    /// chosen setting for PvWatts.
    Blocking,
    /// Spin briefly, then `yield_now` — a latency/CPU compromise.
    Yielding,
    /// Pure spin: lowest latency, one core burned per waiting consumer.
    BusySpin,
    /// Spin, yield, then sleep in short naps: near-blocking CPU use
    /// without needing producer signals.
    Sleeping,
}

impl WaitStrategyKind {
    /// Instantiates the strategy.
    pub fn build(self) -> Arc<dyn WaitStrategy> {
        match self {
            WaitStrategyKind::Blocking => Arc::new(BlockingWaitStrategy::new()),
            WaitStrategyKind::Yielding => Arc::new(YieldingWaitStrategy),
            WaitStrategyKind::BusySpin => Arc::new(BusySpinWaitStrategy),
            WaitStrategyKind::Sleeping => Arc::new(SleepingWaitStrategy),
        }
    }

    /// All strategies, for benchmark sweeps.
    pub fn all() -> [WaitStrategyKind; 4] {
        [
            WaitStrategyKind::Blocking,
            WaitStrategyKind::Yielding,
            WaitStrategyKind::BusySpin,
            WaitStrategyKind::Sleeping,
        ]
    }

    /// Display name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            WaitStrategyKind::Blocking => "BlockingWaitStrategy",
            WaitStrategyKind::Yielding => "YieldingWaitStrategy",
            WaitStrategyKind::BusySpin => "BusySpinWaitStrategy",
            WaitStrategyKind::Sleeping => "SleepingWaitStrategy",
        }
    }
}

/// Condvar-based waiting with producer signals.
pub struct BlockingWaitStrategy {
    lock: Mutex<()>,
    cond: Condvar,
}

impl BlockingWaitStrategy {
    pub fn new() -> Self {
        BlockingWaitStrategy {
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }
}

impl Default for BlockingWaitStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitStrategy for BlockingWaitStrategy {
    fn wait_for(&self, needed: i64, cursor: &Sequence) -> i64 {
        let mut available = cursor.get();
        if available >= needed {
            return available;
        }
        let mut guard = self.lock.lock();
        loop {
            available = cursor.get();
            if available >= needed {
                return available;
            }
            // Timeout guards against a signal racing between the cursor
            // check and the sleep.
            self.cond.wait_for(&mut guard, Duration::from_millis(1));
        }
    }

    fn signal(&self) {
        let _guard = self.lock.lock();
        self.cond.notify_all();
    }
}

/// Spin then yield.
pub struct YieldingWaitStrategy;

impl WaitStrategy for YieldingWaitStrategy {
    fn wait_for(&self, needed: i64, cursor: &Sequence) -> i64 {
        let mut spins = 100u32;
        loop {
            let available = cursor.get();
            if available >= needed {
                return available;
            }
            if spins > 0 {
                spins -= 1;
                jstar_check::sync::spin_loop();
            } else {
                jstar_check::sync::yield_now();
            }
        }
    }
}

/// Pure busy spin.
pub struct BusySpinWaitStrategy;

impl WaitStrategy for BusySpinWaitStrategy {
    fn wait_for(&self, needed: i64, cursor: &Sequence) -> i64 {
        loop {
            let available = cursor.get();
            if available >= needed {
                return available;
            }
            jstar_check::sync::spin_loop();
        }
    }
}

/// Spin, yield, then nap.
pub struct SleepingWaitStrategy;

impl WaitStrategy for SleepingWaitStrategy {
    fn wait_for(&self, needed: i64, cursor: &Sequence) -> i64 {
        let mut stage = 0u32;
        loop {
            let available = cursor.get();
            if available >= needed {
                return available;
            }
            stage += 1;
            if stage < 100 {
                jstar_check::sync::spin_loop();
            } else if stage < 200 {
                jstar_check::sync::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn exercise(kind: WaitStrategyKind) {
        let strategy = kind.build();
        let cursor = Arc::new(Sequence::new());
        let c2 = Arc::clone(&cursor);
        let s2 = Arc::clone(&strategy);
        let waiter = thread::spawn(move || s2.wait_for(5, &c2));
        thread::sleep(Duration::from_millis(10));
        cursor.set(3);
        strategy.signal();
        thread::sleep(Duration::from_millis(5));
        cursor.set(7);
        strategy.signal();
        let available = waiter.join().unwrap();
        assert!(available >= 5);
    }

    #[test]
    fn blocking_wakes() {
        exercise(WaitStrategyKind::Blocking);
    }

    #[test]
    fn yielding_wakes() {
        exercise(WaitStrategyKind::Yielding);
    }

    #[test]
    fn busy_spin_wakes() {
        exercise(WaitStrategyKind::BusySpin);
    }

    #[test]
    fn sleeping_wakes() {
        exercise(WaitStrategyKind::Sleeping);
    }

    #[test]
    fn immediate_availability_returns_fast() {
        for kind in WaitStrategyKind::all() {
            let strategy = kind.build();
            let cursor = Sequence::new();
            cursor.set(10);
            assert_eq!(strategy.wait_for(5, &cursor), 10, "{}", kind.name());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(WaitStrategyKind::Blocking.name(), "BlockingWaitStrategy");
        assert_eq!(WaitStrategyKind::all().len(), 4);
    }
}
