//! Multi-producer claim strategy.
//!
//! Table 1 lists the claim strategy as a tunable ("SingleThreaded-
//! ClaimStrategy"; the Disruptor is "quite flexible, with alternative
//! implementations for single or multiple producers"). This module is the
//! multi-producer alternative: producers claim slots with an atomic
//! fetch-add and publish via a per-slot **availability buffer** (the LMAX
//! design), so consumers can compute the highest contiguously published
//! sequence without coordinating with producers.

use crate::ring::RingBuffer;
use crate::sequence::Sequence;
use crate::wait::{WaitStrategy, WaitStrategyKind};
use std::ops::ControlFlow;
// Shim atomics: real std types in production, instrumented model-checked
// types under `--features model-check` (see crates/jstar-check).
use jstar_check::sync::{AtomicI64, Ordering};
use std::sync::Arc;

/// Shared state of a multi-producer disruptor.
struct MpShared<T> {
    ring: Arc<RingBuffer<T>>,
    /// Highest claimed (not necessarily published) sequence.
    claimed: AtomicI64,
    /// `available[seq & mask]` stores the sequence number most recently
    /// published into that slot; a slot is readable at `seq` iff the entry
    /// equals `seq`.
    available: Box<[AtomicI64]>,
    wait: Arc<dyn WaitStrategy>,
    gates: Vec<Arc<Sequence>>,
}

impl<T> MpShared<T> {
    fn highest_published(&self, from: i64, upper_bound: i64) -> i64 {
        let mask = self.ring.capacity() - 1;
        let mut seq = from;
        while seq <= upper_bound {
            // ord: Acquire — pairs with the publishing producer's
            // Release store so the slot's contents are visible.
            if self.available[(seq as usize) & mask].load(Ordering::Acquire) != seq {
                return seq - 1;
            }
            seq += 1;
        }
        upper_bound
    }

    fn min_gate(&self) -> i64 {
        self.gates.iter().map(|g| g.get()).min().unwrap_or(i64::MAX)
    }
}

/// Builder: declare consumer and producer counts up front, then publish.
pub struct MultiDisruptorBuilder {
    capacity: usize,
    wait: WaitStrategyKind,
}

impl MultiDisruptorBuilder {
    pub fn new(capacity: usize, wait: WaitStrategyKind) -> Self {
        MultiDisruptorBuilder { capacity, wait }
    }

    /// Builds `producers` producer handles and `consumers` consumer
    /// handles over one shared ring.
    pub fn build<T: Default + Send + Sync + 'static>(
        self,
        producers: usize,
        consumers: usize,
    ) -> (Vec<MultiProducer<T>>, Vec<MultiConsumer<T>>) {
        assert!(producers >= 1 && consumers >= 1);
        let ring = Arc::new(RingBuffer::new(self.capacity));
        let available: Box<[AtomicI64]> =
            (0..ring.capacity()).map(|_| AtomicI64::new(-1)).collect();
        let consumer_seqs: Vec<Arc<Sequence>> =
            (0..consumers).map(|_| Arc::new(Sequence::new())).collect();
        let shared = Arc::new(MpShared {
            ring,
            claimed: AtomicI64::new(-1),
            available,
            wait: self.wait.build(),
            gates: consumer_seqs.clone(),
        });
        let producer_handles = (0..producers)
            .map(|_| MultiProducer {
                shared: Arc::clone(&shared),
            })
            .collect();
        let consumer_handles = consumer_seqs
            .into_iter()
            .map(|sequence| MultiConsumer {
                shared: Arc::clone(&shared),
                sequence,
            })
            .collect();
        (producer_handles, consumer_handles)
    }
}

/// One of several concurrent producers.
pub struct MultiProducer<T> {
    shared: Arc<MpShared<T>>,
}

impl<T: Send + Sync> MultiProducer<T> {
    /// Publishes one event. Claims a sequence with fetch-add, waits for
    /// ring capacity if consumers are behind, fills the slot and marks it
    /// available.
    pub fn publish(&self, fill: impl FnOnce(&mut T)) {
        let shared = &self.shared;
        // ord: AcqRel — the RMW makes each claim unique and totally
        // ordered; Acquire additionally sorts our gate check after any
        // prior producer's claim of the same wrap window.
        let seq = shared.claimed.fetch_add(1, Ordering::AcqRel) + 1;
        let wrap_point = seq - shared.ring.capacity() as i64;
        // Wait until every consumer has passed the slot we are lapping.
        while wrap_point > shared.min_gate() {
            jstar_check::sync::yield_now();
        }
        // SAFETY: the fetch-add gives this producer exclusive ownership of
        // `seq`, and the gate check above ensures no consumer still reads
        // the lapped slot.
        unsafe { fill(shared.ring.slot_mut(seq)) };
        let mask = shared.ring.capacity() - 1;
        // ord: Release — publishes the slot fill above; pairs with the
        // consumers' Acquire availability loads.
        shared.available[(seq as usize) & mask].store(seq, Ordering::Release);
        shared.wait.signal();
    }

    /// Highest claimed sequence so far (diagnostics).
    pub fn claimed(&self) -> i64 {
        // ord: Acquire — symmetric with the claim RMW; diagnostics read
        // a claim only after its predecessor effects.
        self.shared.claimed.load(Ordering::Acquire)
    }
}

/// A broadcast consumer of a multi-producer ring.
pub struct MultiConsumer<T> {
    shared: Arc<MpShared<T>>,
    sequence: Arc<Sequence>,
}

impl<T: Send + Sync> MultiConsumer<T> {
    /// Processes events in sequence order until the handler breaks.
    ///
    /// Unlike the single-producer path there is no published *cursor*;
    /// availability is read per slot, so after waiting we advance to the
    /// highest contiguously available sequence.
    pub fn run(&self, mut handler: impl FnMut(&T, i64) -> ControlFlow<()>) {
        let shared = &self.shared;
        let mut next = self.sequence.get() + 1;
        let mask = shared.ring.capacity() - 1;
        loop {
            // Wait until slot `next` is published.
            let mut spins = 0u32;
            // ord: Acquire — pairs with the producer's Release
            // availability store; observing `next` makes the slot fill
            // visible to the handler below.
            while shared.available[(next as usize) & mask].load(Ordering::Acquire) != next {
                spins += 1;
                if spins < 64 {
                    jstar_check::sync::spin_loop();
                } else {
                    jstar_check::sync::yield_now();
                }
            }
            // ord: Acquire — an upper bound for the availability scan;
            // each slot's visibility still rides on its own entry.
            let upper = shared.highest_published(next, shared.claimed.load(Ordering::Acquire));
            for seq in next..=upper {
                // SAFETY: availability == seq ⇒ published; our own gate
                // keeps the producer from lapping until we advance.
                let slot = unsafe { shared.ring.slot(seq) };
                let flow = handler(slot, seq);
                self.sequence.set(seq);
                if flow.is_break() {
                    return;
                }
            }
            next = upper + 1;
        }
    }

    /// Highest fully processed sequence.
    pub fn sequence(&self) -> i64 {
        self.sequence.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jstar_check::sync::AtomicI64 as TestAtomic;

    #[test]
    fn two_producers_one_consumer_nothing_lost() {
        let (producers, mut consumers) =
            MultiDisruptorBuilder::new(64, WaitStrategyKind::Yielding).build::<i64>(2, 1);
        let consumer = consumers.pop().unwrap();
        let sum = TestAtomic::new(0);
        let done = TestAtomic::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                consumer.run(|&v, _| {
                    if v < 0 {
                        // Two producers send one sentinel each; stop at the
                        // second so all payloads are consumed first.
                        // ord: Relaxed (not SeqCst) — `done` is only ever
                        // touched from this single consumer thread.
                        if done.fetch_add(1, Ordering::Relaxed) == 1 {
                            return ControlFlow::Break(());
                        }
                        return ControlFlow::Continue(());
                    }
                    sum.fetch_add(v, Ordering::Relaxed);
                    ControlFlow::Continue(())
                });
            });
            let mut handles = Vec::new();
            for (pi, p) in producers.into_iter().enumerate() {
                handles.push(s.spawn(move || {
                    for i in 1..=500i64 {
                        p.publish(|slot| *slot = i + pi as i64 * 1000);
                    }
                    p.publish(|slot| *slot = -1);
                }));
            }
        });
        // Producer 0 sends 1..=500, producer 1 sends 1001..=1500.
        let expected: i64 = (1..=500).sum::<i64>() + (1001..=1500).sum::<i64>();
        assert_eq!(sum.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn sequences_are_claimed_uniquely() {
        let (producers, mut consumers) =
            MultiDisruptorBuilder::new(128, WaitStrategyKind::Yielding).build::<i64>(4, 1);
        let consumer = consumers.pop().unwrap();
        let seen = jstar_check::sync::Mutex::new(Vec::new());
        let done = TestAtomic::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                consumer.run(|&v, seq| {
                    if v < 0 {
                        // ord: Relaxed (not SeqCst) — single consumer
                        // thread owns this counter.
                        if done.fetch_add(1, Ordering::Relaxed) == 3 {
                            return ControlFlow::Break(());
                        }
                        return ControlFlow::Continue(());
                    }
                    seen.lock().push(seq);
                    ControlFlow::Continue(())
                });
            });
            for p in producers {
                s.spawn(move || {
                    for i in 0..250i64 {
                        p.publish(|slot| *slot = i);
                    }
                    p.publish(|slot| *slot = -1);
                });
            }
        });
        let seen = seen.into_inner();
        assert_eq!(seen.len(), 1000);
        // Sequence numbers are strictly increasing (in-order consumption)…
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn multiple_consumers_broadcast() {
        let (producers, consumers) =
            MultiDisruptorBuilder::new(32, WaitStrategyKind::Yielding).build::<i64>(2, 3);
        let sums: Vec<TestAtomic> = (0..3).map(|_| TestAtomic::new(0)).collect();
        std::thread::scope(|s| {
            for (c, sum) in consumers.into_iter().zip(&sums) {
                let dones = TestAtomic::new(0);
                s.spawn(move || {
                    c.run(|&v, _| {
                        if v < 0 {
                            // ord: Relaxed (not SeqCst) — per-consumer
                            // counter, touched only by its own thread.
                            if dones.fetch_add(1, Ordering::Relaxed) == 1 {
                                return ControlFlow::Break(());
                            }
                            return ControlFlow::Continue(());
                        }
                        sum.fetch_add(v, Ordering::Relaxed);
                        ControlFlow::Continue(())
                    });
                });
            }
            for p in producers {
                s.spawn(move || {
                    for i in 1..=200i64 {
                        p.publish(|slot| *slot = i);
                    }
                    p.publish(|slot| *slot = -1);
                });
            }
        });
        for sum in &sums {
            assert_eq!(sum.load(Ordering::Relaxed), 2 * (1..=200i64).sum::<i64>());
        }
    }
}

#[cfg(all(test, feature = "model-check"))]
mod model_tests {
    use super::*;
    use jstar_check::{thread, Checker};

    /// Two producers race the fetch-add claim while a consumer drains:
    /// in every interleaving each sequence is claimed exactly once, the
    /// consumer observes both payloads (in sequence order, whatever the
    /// claim order was), and the per-slot availability handoff never
    /// lets it read an unpublished slot.
    #[test]
    fn racing_producers_claim_uniquely() {
        let report = Checker::new().check(|| {
            let (mut producers, mut consumers) =
                MultiDisruptorBuilder::new(4, WaitStrategyKind::BusySpin).build::<i64>(2, 1);
            let consumer = consumers.pop().unwrap();
            let cons = thread::spawn(move || {
                let mut seen = Vec::new();
                consumer.run(|&v, seq| {
                    seen.push((seq, v));
                    if seen.len() == 2 {
                        return ControlFlow::Break(());
                    }
                    ControlFlow::Continue(())
                });
                seen
            });
            let workers: Vec<_> = producers
                .drain(..)
                .enumerate()
                .map(|(i, p)| {
                    thread::spawn(move || {
                        p.publish(|slot| *slot = i as i64 + 1);
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
            let seen = cons.join();
            // Sequences 0 and 1, each claimed once, consumed in order.
            assert_eq!((seen[0].0, seen[1].0), (0, 1));
            // Both payloads arrive — claim order may differ by schedule.
            let mut vals = [seen[0].1, seen[1].1];
            vals.sort_unstable();
            assert_eq!(vals, [1, 2]);
        });
        report.assert_ok();
        assert!(report.complete, "exploration hit a budget cap");
    }
}
