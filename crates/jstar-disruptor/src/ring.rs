//! The pre-allocated ring of recycled event slots.

// Shim cell: a plain `std::cell::UnsafeCell` in production, a
// race-checked instrumented cell under `--features model-check` (see
// crates/jstar-check).
use jstar_check::sync::UnsafeCell;

/// A power-of-two ring of slots addressed by sequence number.
///
/// Slots are created once (from `T::default()`) and recycled forever — the
/// Disruptor's object-recycling design, which avoids garbage on the hot
/// path. Synchronisation is *external*: the producer/consumer protocol
/// (claim gate + published cursor) guarantees that `slot_mut` and `slot`
/// are never used concurrently on the same slot, which is why the accessors
/// are `unsafe`.
pub struct RingBuffer<T> {
    slots: Box<[UnsafeCell<T>]>,
    mask: usize,
}

// SAFETY: access discipline is enforced by the sequence protocol (see
// `SingleProducer::publish_batch` and `Consumer::run`).
unsafe impl<T: Send> Send for RingBuffer<T> {}
unsafe impl<T: Send + Sync> Sync for RingBuffer<T> {}

impl<T: Default> RingBuffer<T> {
    /// Allocates a ring with `capacity` slots, rounded up to a power of two
    /// (so sequence-to-index mapping is a mask, not a modulo).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[UnsafeCell<T>]> = (0..cap).map(|_| UnsafeCell::new(T::default())).collect();
        RingBuffer {
            slots,
            mask: cap - 1,
        }
    }
}

impl<T> RingBuffer<T> {
    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn index(&self, sequence: i64) -> usize {
        debug_assert!(sequence >= 0);
        (sequence as usize) & self.mask
    }

    /// Shared access to the slot for `sequence`.
    ///
    /// # Safety
    /// The caller must guarantee `sequence` has been published (is at or
    /// below the producer cursor) and will not be reclaimed (the caller's
    /// consumer sequence has not yet passed it).
    pub unsafe fn slot(&self, sequence: i64) -> &T {
        // SAFETY: per the caller contract the slot was published by a
        // cursor Release the caller acquired, and no writer can reclaim
        // it while the reference lives.
        self.slots[self.index(sequence)].with(|p| unsafe { &*p })
    }

    /// Exclusive access to the slot for `sequence`.
    ///
    /// # Safety
    /// The caller must hold the unique claim on `sequence`: it is above
    /// every consumer gate minus capacity and not yet published.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slot_mut(&self, sequence: i64) -> &mut T {
        // SAFETY: per the caller contract this thread holds the unique
        // claim on `sequence`, so no other access overlaps the slot.
        self.slots[self.index(sequence)].with_mut(|p| unsafe { &mut *p })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_capacity_to_power_of_two() {
        assert_eq!(RingBuffer::<u64>::new(1000).capacity(), 1024);
        assert_eq!(RingBuffer::<u64>::new(8).capacity(), 8);
        assert_eq!(RingBuffer::<u64>::new(0).capacity(), 2);
    }

    #[test]
    fn sequences_wrap_to_same_slot() {
        let ring = RingBuffer::<u64>::new(8);
        // SAFETY: single-threaded test — every claim is trivially unique
        // and nothing is reclaimed concurrently.
        unsafe {
            *ring.slot_mut(3) = 42;
            assert_eq!(*ring.slot(3), 42);
            // Sequence 11 maps to the same physical slot as 3.
            assert_eq!(*ring.slot(11), 42);
            *ring.slot_mut(11) = 7;
            assert_eq!(*ring.slot(3), 7);
        }
    }

    #[test]
    fn slots_start_default() {
        let ring = RingBuffer::<i64>::new(4);
        // SAFETY: single-threaded test; no concurrent claims.
        unsafe {
            for s in 0..4 {
                assert_eq!(*ring.slot(s), 0);
            }
        }
    }
}
