//! # jstar-disruptor — a Disruptor-style ring buffer
//!
//! The paper's §6.3 rebuilds PvWatts on the LMAX Disruptor, "a Java library
//! developed for high-speed real-time financial exchange applications ...
//! a highly efficient ring-buffer to move data between producer and
//! consumer processes", tuned via Table 1 (ring size 1024, blocking wait
//! strategy, single producer claiming slots in batches of 256, 12
//! consumers). This crate reimplements that machinery in Rust:
//!
//! * [`RingBuffer`] — a power-of-two ring of pre-allocated, recycled slots
//!   (no per-event allocation, as the Disruptor recycles objects);
//! * [`Sequence`] — cache-padded monotone counters, one per producer cursor
//!   and per consumer, manipulated with acquire/release atomics rather
//!   than locks (the Disruptor's CAS-not-locks design);
//! * [`WaitStrategy`] — Blocking, Yielding, BusySpin and Sleeping waiting
//!   policies (Table 1's "Wait Strategy" row);
//! * [`SingleProducer`] — the single-threaded claim strategy with batch
//!   claims (Table 1's "Claim slots in a batch of 256");
//! * [`Consumer`] — broadcast consumers, each observing every published
//!   slot, gated so the producer can never overwrite unread data.
//!
//! ## Example
//!
//! ```
//! use jstar_disruptor::{Disruptor, WaitStrategyKind};
//! use std::sync::atomic::{AtomicI64, Ordering};
//!
//! let mut d = Disruptor::<i64>::new(64, WaitStrategyKind::Blocking);
//! let consumer = d.add_consumer();
//! let mut producer = d.into_producer();
//!
//! let sum = AtomicI64::new(0);
//! std::thread::scope(|s| {
//!     s.spawn(|| {
//!         consumer.run(|&v, _seq| {
//!             if v < 0 { return std::ops::ControlFlow::Break(()); }
//!             sum.fetch_add(v, Ordering::Relaxed);
//!             std::ops::ControlFlow::Continue(())
//!         });
//!     });
//!     for i in 1..=100 {
//!         producer.publish(|slot| *slot = i);
//!     }
//!     producer.publish(|slot| *slot = -1); // sentinel
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 5050);
//! ```

mod multi;
mod ring;
mod sequence;
mod wait;

pub use multi::{MultiConsumer, MultiDisruptorBuilder, MultiProducer};
pub use ring::RingBuffer;
pub use sequence::Sequence;
pub use wait::{
    BlockingWaitStrategy, BusySpinWaitStrategy, SleepingWaitStrategy, WaitStrategy,
    WaitStrategyKind, YieldingWaitStrategy,
};

use std::ops::ControlFlow;
use std::sync::Arc;

/// Builder wiring a ring buffer, one producer and N broadcast consumers.
pub struct Disruptor<T> {
    ring: Arc<RingBuffer<T>>,
    cursor: Arc<Sequence>,
    wait: Arc<dyn WaitStrategy>,
    consumer_seqs: Vec<Arc<Sequence>>,
}

impl<T: Default + Send + Sync + 'static> Disruptor<T> {
    /// Creates a disruptor with `capacity` slots (rounded up to a power of
    /// two) and the given wait strategy. Slots are pre-filled with
    /// `T::default()` and recycled forever — no allocation on the hot path.
    pub fn new(capacity: usize, wait: WaitStrategyKind) -> Self {
        Disruptor {
            ring: Arc::new(RingBuffer::new(capacity)),
            cursor: Arc::new(Sequence::new()),
            wait: wait.build(),
            consumer_seqs: Vec::new(),
        }
    }

    /// Registers a consumer. All consumers must be added before
    /// [`Disruptor::into_producer`]; each sees every published slot.
    pub fn add_consumer(&mut self) -> Consumer<T> {
        let seq = Arc::new(Sequence::new());
        self.consumer_seqs.push(Arc::clone(&seq));
        Consumer {
            ring: Arc::clone(&self.ring),
            cursor: Arc::clone(&self.cursor),
            wait: Arc::clone(&self.wait),
            sequence: seq,
        }
    }

    /// Finalises wiring and returns the single producer. The producer is
    /// gated on every registered consumer: it can never lap them.
    pub fn into_producer(self) -> SingleProducer<T> {
        SingleProducer {
            ring: self.ring,
            cursor: self.cursor,
            wait: self.wait,
            gates: self.consumer_seqs,
            claimed: -1,
            cached_gate: -1,
        }
    }
}

/// The single-threaded producer (Table 1's `SingleThreaded-ClaimStrategy`).
pub struct SingleProducer<T> {
    ring: Arc<RingBuffer<T>>,
    cursor: Arc<Sequence>,
    wait: Arc<dyn WaitStrategy>,
    gates: Vec<Arc<Sequence>>,
    /// Highest sequence claimed locally (single producer: no atomics).
    claimed: i64,
    /// Cached minimum consumer sequence, refreshed only when the claim
    /// would overrun it — the Disruptor's gating optimisation.
    cached_gate: i64,
}

impl<T: Send + Sync> SingleProducer<T> {
    /// Publishes one event: claims the next slot, fills it via `fill`,
    /// makes it visible and signals waiting consumers.
    pub fn publish(&mut self, fill: impl FnOnce(&mut T)) {
        let mut fill = Some(fill);
        // lint: allow(expect): publish_batch(1, …) invokes the closure exactly once.
        self.publish_batch(1, |_, slot| (fill.take().expect("called once"))(slot));
    }

    /// Claims `n` slots in one batch (amortising the gate check — the
    /// paper's producer claims "slots in a batch of 256"), fills each via
    /// `fill(i, slot)` with `i` in `0..n`, then publishes them all with one
    /// cursor advance and one signal.
    pub fn publish_batch(&mut self, n: usize, mut fill: impl FnMut(usize, &mut T)) {
        assert!(n >= 1 && n <= self.ring.capacity(), "batch exceeds ring");
        let next = self.claimed + n as i64;
        // Gate: the slot for sequence s overwrites s - capacity, which
        // every consumer must have passed.
        let wrap_point = next - self.ring.capacity() as i64;
        while wrap_point > self.cached_gate {
            self.cached_gate = self
                .gates
                .iter()
                .map(|g| g.get())
                .min()
                .unwrap_or(self.claimed);
            if wrap_point > self.cached_gate {
                // Consumers are behind; yield rather than burn the bus.
                jstar_check::sync::yield_now();
            }
        }
        for i in 0..n {
            let seq = self.claimed + 1 + i as i64;
            // SAFETY: sequences (claimed, next] are claimed exclusively by
            // this single producer and, per the gate check, no consumer is
            // still reading the lapped slots.
            unsafe { fill(i, self.ring.slot_mut(seq)) };
        }
        self.claimed = next;
        self.cursor.set(next);
        self.wait.signal();
    }

    /// Sequence of the last published event (-1 before the first publish).
    pub fn cursor(&self) -> i64 {
        self.cursor.get()
    }

    /// Capacity of the underlying ring.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

/// A broadcast consumer: observes every published slot exactly once, in
/// sequence order.
pub struct Consumer<T> {
    ring: Arc<RingBuffer<T>>,
    cursor: Arc<Sequence>,
    wait: Arc<dyn WaitStrategy>,
    sequence: Arc<Sequence>,
}

impl<T: Send + Sync> Consumer<T> {
    /// Processes events until `handler` returns `ControlFlow::Break`
    /// (e.g. on the sentinel tuple the paper's producer sends at EOF).
    ///
    /// The handler receives each event and its sequence number. Batch
    /// effect: after a wait, all available events are processed before the
    /// consumer sequence is republished, minimising cache-line traffic.
    pub fn run(&self, mut handler: impl FnMut(&T, i64) -> ControlFlow<()>) {
        let mut next = self.sequence.get() + 1;
        loop {
            let available = self.wait.wait_for(next, &self.cursor);
            while next <= available {
                // SAFETY: the producer published everything <= cursor with
                // release ordering, and cannot overwrite slot `next` until
                // our sequence passes it.
                let slot = unsafe { self.ring.slot(next) };
                let flow = handler(slot, next);
                self.sequence.set(next);
                next += 1;
                if flow.is_break() {
                    return;
                }
            }
        }
    }

    /// This consumer's sequence (highest event fully processed).
    pub fn sequence(&self) -> i64 {
        self.sequence.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jstar_check::sync::{AtomicI64, Ordering};
    use std::thread;

    fn spsc_sum(kind: WaitStrategyKind, events: i64) -> i64 {
        let mut d = Disruptor::<i64>::new(128, kind);
        let consumer = d.add_consumer();
        let mut producer = d.into_producer();
        let sum = AtomicI64::new(0);
        thread::scope(|s| {
            s.spawn(|| {
                consumer.run(|&v, _| {
                    if v < 0 {
                        return ControlFlow::Break(());
                    }
                    sum.fetch_add(v, Ordering::Relaxed);
                    ControlFlow::Continue(())
                });
            });
            for i in 1..=events {
                producer.publish(|slot| *slot = i);
            }
            producer.publish(|slot| *slot = -1);
        });
        sum.load(Ordering::Relaxed)
    }

    #[test]
    fn spsc_delivers_everything_blocking() {
        assert_eq!(spsc_sum(WaitStrategyKind::Blocking, 10_000), 50_005_000);
    }

    #[test]
    fn spsc_delivers_everything_yielding() {
        assert_eq!(spsc_sum(WaitStrategyKind::Yielding, 10_000), 50_005_000);
    }

    #[test]
    fn spsc_delivers_everything_busy_spin() {
        assert_eq!(spsc_sum(WaitStrategyKind::BusySpin, 2_000), 2_001_000);
    }

    #[test]
    fn spsc_delivers_everything_sleeping() {
        assert_eq!(spsc_sum(WaitStrategyKind::Sleeping, 2_000), 2_001_000);
    }

    #[test]
    fn events_arrive_in_order_exactly_once() {
        let mut d = Disruptor::<i64>::new(16, WaitStrategyKind::Blocking);
        let consumer = d.add_consumer();
        let mut producer = d.into_producer();
        let seen = jstar_check::sync::Mutex::new(Vec::new());
        thread::scope(|s| {
            s.spawn(|| {
                consumer.run(|&v, _| {
                    if v < 0 {
                        return ControlFlow::Break(());
                    }
                    seen.lock().push(v);
                    ControlFlow::Continue(())
                });
            });
            // Small ring forces many wraps: ordering must survive.
            for i in 0..1000 {
                producer.publish(|slot| *slot = i);
            }
            producer.publish(|slot| *slot = -1);
        });
        let seen = seen.into_inner();
        assert_eq!(seen, (0..1000).collect::<Vec<i64>>());
    }

    #[test]
    fn broadcast_consumers_each_see_all_events() {
        let mut d = Disruptor::<i64>::new(64, WaitStrategyKind::Blocking);
        let consumers: Vec<_> = (0..4).map(|_| d.add_consumer()).collect();
        let mut producer = d.into_producer();
        let sums: Vec<AtomicI64> = (0..4).map(|_| AtomicI64::new(0)).collect();
        thread::scope(|s| {
            for (c, sum) in consumers.iter().zip(&sums) {
                s.spawn(move || {
                    c.run(|&v, _| {
                        if v < 0 {
                            return ControlFlow::Break(());
                        }
                        sum.fetch_add(v, Ordering::Relaxed);
                        ControlFlow::Continue(())
                    });
                });
            }
            for i in 1..=500 {
                producer.publish(|slot| *slot = i);
            }
            producer.publish(|slot| *slot = -1);
        });
        for sum in &sums {
            assert_eq!(sum.load(Ordering::Relaxed), 125_250);
        }
    }

    #[test]
    fn batch_publish_matches_singles() {
        let mut d = Disruptor::<i64>::new(1024, WaitStrategyKind::Blocking);
        let consumer = d.add_consumer();
        let mut producer = d.into_producer();
        let seen = AtomicI64::new(0);
        thread::scope(|s| {
            s.spawn(|| {
                consumer.run(|&v, _| {
                    if v < 0 {
                        return ControlFlow::Break(());
                    }
                    seen.fetch_add(1, Ordering::Relaxed);
                    ControlFlow::Continue(())
                });
            });
            // Publish 10_000 events in batches of 256 (Table 1's setting).
            let mut published = 0i64;
            while published < 10_000 {
                let n = 256.min(10_000 - published) as usize;
                producer.publish_batch(n, |i, slot| *slot = published + i as i64);
                published += n as i64;
            }
            producer.publish(|slot| *slot = -1);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn producer_never_laps_slow_consumer() {
        // Ring of 8; consumer sleeps, producer must back off, nothing lost.
        let mut d = Disruptor::<i64>::new(8, WaitStrategyKind::Blocking);
        let consumer = d.add_consumer();
        let mut producer = d.into_producer();
        let sum = AtomicI64::new(0);
        thread::scope(|s| {
            s.spawn(|| {
                consumer.run(|&v, _| {
                    if v < 0 {
                        return ControlFlow::Break(());
                    }
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    sum.fetch_add(v, Ordering::Relaxed);
                    ControlFlow::Continue(())
                });
            });
            for i in 1..=200 {
                producer.publish(|slot| *slot = i);
            }
            producer.publish(|slot| *slot = -1);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 20_100);
    }

    #[test]
    #[should_panic(expected = "batch exceeds ring")]
    fn oversized_batch_panics() {
        let d = Disruptor::<i64>::new(8, WaitStrategyKind::Blocking);
        let mut producer = d.into_producer();
        producer.publish_batch(9, |_, _| {});
    }

    #[test]
    fn cursor_tracks_publishes() {
        let d = Disruptor::<i64>::new(8, WaitStrategyKind::BusySpin);
        let mut producer = d.into_producer();
        assert_eq!(producer.cursor(), -1);
        producer.publish(|s| *s = 1);
        assert_eq!(producer.cursor(), 0);
        producer.publish_batch(3, |_, s| *s = 2);
        assert_eq!(producer.cursor(), 3);
        assert_eq!(producer.capacity(), 8);
    }
}

#[cfg(all(test, feature = "model-check"))]
mod model_tests {
    use super::*;
    use jstar_check::{thread, Checker};

    /// The SPSC cursor handoff, explored exhaustively: a two-slot ring
    /// forces the producer through the wrap gate while the consumer is
    /// mid-stream, so every interleaving of {slot write, cursor Release,
    /// cursor Acquire, slot read, gate republish} is covered. The race
    /// detector on the ring's cells proves the cursor edge is the only
    /// thing keeping slot accesses apart.
    #[test]
    fn spsc_cursor_handoff_is_race_free() {
        let report = Checker::new().check(|| {
            let mut d = Disruptor::<i64>::new(2, WaitStrategyKind::BusySpin);
            let consumer = d.add_consumer();
            let mut producer = d.into_producer();
            let cons = thread::spawn(move || {
                let mut seen = Vec::new();
                consumer.run(|&v, _| {
                    if v < 0 {
                        return ControlFlow::Break(());
                    }
                    seen.push(v);
                    ControlFlow::Continue(())
                });
                seen
            });
            let prod = thread::spawn(move || {
                producer.publish(|slot| *slot = 1);
                producer.publish(|slot| *slot = 2);
                // Third publish laps slot 0: gated on the consumer.
                producer.publish(|slot| *slot = -1);
            });
            prod.join();
            assert_eq!(cons.join(), vec![1, 2]);
        });
        report.assert_ok();
        assert!(report.complete, "exploration hit a budget cap");
    }
}
