//! Cache-padded sequence counters.

use crossbeam::utils::CachePadded;
// Shim atomics: real std types in production, instrumented model-checked
// types under `--features model-check` (see crates/jstar-check).
use jstar_check::sync::{AtomicI64, Ordering};

/// A monotonically increasing sequence counter, padded to its own cache
/// line.
///
/// The Disruptor's "data structures are carefully designed to reduce cache
/// line contention": every producer cursor and consumer sequence lives on
/// its own line so the producer's writes never false-share with consumer
/// progress counters.
///
/// Starts at -1 ("nothing published/consumed yet"), matching the LMAX
/// convention.
#[derive(Debug)]
pub struct Sequence(CachePadded<AtomicI64>);

impl Sequence {
    /// A fresh sequence at -1.
    pub fn new() -> Self {
        Sequence(CachePadded::new(AtomicI64::new(-1)))
    }

    /// Reads with acquire ordering: everything written before the
    /// corresponding `set` is visible.
    pub fn get(&self) -> i64 {
        // ord: Acquire — pairs with `set`'s Release: observing a cursor
        // value makes every slot write before that `set` visible.
        self.0.load(Ordering::Acquire)
    }

    /// Publishes a new value with release ordering.
    pub fn set(&self, v: i64) {
        // ord: Release — publishes the slot writes that preceded this
        // cursor advance; pairs with `get`'s Acquire.
        self.0.store(v, Ordering::Release);
    }
}

impl Default for Sequence {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_minus_one() {
        assert_eq!(Sequence::new().get(), -1);
    }

    #[test]
    fn set_then_get() {
        let s = Sequence::new();
        s.set(41);
        assert_eq!(s.get(), 41);
    }

    #[test]
    fn is_cache_padded() {
        // Each sequence must occupy at least a typical cache line so
        // adjacent sequences never share one.
        assert!(std::mem::size_of::<Sequence>() >= 64);
    }

    #[test]
    fn cross_thread_visibility() {
        let s = std::sync::Arc::new(Sequence::new());
        let s2 = std::sync::Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.set(7);
        });
        h.join().unwrap();
        assert_eq!(s.get(), 7);
    }
}
