//! A counting latch used to implement fork/join scopes.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A latch that counts outstanding tasks and lets one thread wait for the
/// count to reach zero.
///
/// This is the synchronisation backbone of [`crate::Scope`]: every spawned
/// task increments the latch, every completed task decrements it, and the
/// scope owner blocks (or helps execute work) until it drains.
///
/// The fast path is a lone atomic; the mutex/condvar pair is only touched
/// when a waiter is actually parked.
pub struct CountLatch {
    count: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl CountLatch {
    /// Creates a latch with an initial count of zero.
    pub fn new() -> Self {
        CountLatch {
            count: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Registers one more outstanding task.
    pub fn increment(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one task as finished, waking waiters if the count hits zero.
    pub fn decrement(&self) {
        if self.count.fetch_sub(1, Ordering::Release) == 1 {
            // Last task out: take the lock so a concurrent `wait` cannot
            // observe the zero between its check and its sleep, then wake.
            let _guard = self.lock.lock();
            self.cond.notify_all();
        }
    }

    /// Returns the current count. Zero means all registered tasks finished.
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Returns true if there is nothing outstanding.
    pub fn is_clear(&self) -> bool {
        self.count() == 0
    }

    /// Blocks the calling thread until the count reaches zero.
    ///
    /// Callers that can do useful work instead should poll [`Self::is_clear`]
    /// and only fall back to `wait` when no work is available (this is what
    /// the pool's helping loop does).
    pub fn wait(&self) {
        if self.is_clear() {
            return;
        }
        let mut guard = self.lock.lock();
        while !self.is_clear() {
            self.cond.wait(&mut guard);
        }
    }

    /// Blocks until the count reaches zero or the timeout elapses.
    /// Returns true if the latch is clear.
    pub fn wait_timeout(&self, dur: std::time::Duration) -> bool {
        if self.is_clear() {
            return true;
        }
        let mut guard = self.lock.lock();
        if self.is_clear() {
            return true;
        }
        self.cond.wait_for(&mut guard, dur);
        self.is_clear()
    }
}

impl Default for CountLatch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn starts_clear() {
        let latch = CountLatch::new();
        assert!(latch.is_clear());
        latch.wait(); // must not block
    }

    #[test]
    fn increments_and_decrements() {
        let latch = CountLatch::new();
        latch.increment();
        latch.increment();
        assert_eq!(latch.count(), 2);
        latch.decrement();
        assert_eq!(latch.count(), 1);
        latch.decrement();
        assert!(latch.is_clear());
    }

    #[test]
    fn wait_blocks_until_clear() {
        let latch = Arc::new(CountLatch::new());
        latch.increment();
        let l2 = Arc::clone(&latch);
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            l2.decrement();
        });
        latch.wait();
        assert!(latch.is_clear());
        handle.join().unwrap();
    }

    #[test]
    fn wait_timeout_reports_pending() {
        let latch = CountLatch::new();
        latch.increment();
        assert!(!latch.wait_timeout(Duration::from_millis(5)));
        latch.decrement();
        assert!(latch.wait_timeout(Duration::from_millis(5)));
    }

    #[test]
    fn many_threads_drain() {
        let latch = Arc::new(CountLatch::new());
        for _ in 0..64 {
            latch.increment();
        }
        let mut handles = Vec::new();
        for _ in 0..64 {
            let l = Arc::clone(&latch);
            handles.push(thread::spawn(move || l.decrement()));
        }
        latch.wait();
        assert!(latch.is_clear());
        for h in handles {
            h.join().unwrap();
        }
    }
}
