//! A counting latch used to implement fork/join scopes.

// Synchronisation comes from the jstar-check shim: real std/parking_lot
// types in production, instrumented model-checked types under
// `--features model-check` (see crates/jstar-check and CONCURRENCY.md).
use jstar_check::sync::{AtomicUsize, Condvar, Mutex, Ordering};

/// A latch that counts outstanding tasks and lets one thread wait for the
/// count to reach zero.
///
/// This is the synchronisation backbone of [`crate::Scope`]: every spawned
/// task increments the latch, every completed task decrements it, and the
/// scope owner blocks (or helps execute work) until it drains.
///
/// The fast path is a lone atomic; the mutex/condvar pair is only touched
/// when a waiter is actually parked.
pub struct CountLatch {
    count: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl CountLatch {
    /// Creates a latch with an initial count of zero.
    pub fn new() -> Self {
        CountLatch {
            count: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Registers one more outstanding task.
    pub fn increment(&self) {
        // ord: Relaxed — registration precedes the task's queue
        // submission, and the queue's own synchronisation publishes it;
        // the latch only needs the count arithmetic to be atomic.
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one task as finished, waking waiters if the count hits zero.
    pub fn decrement(&self) {
        // ord: Release — pairs with `count`'s Acquire load so everything
        // the finished task wrote happens-before a waiter seeing zero.
        if self.count.fetch_sub(1, Ordering::Release) == 1 {
            // Last task out: take the lock so a concurrent `wait` cannot
            // observe the zero between its check and its sleep, then wake.
            let _guard = self.lock.lock();
            self.cond.notify_all();
        }
    }

    /// Returns the current count. Zero means all registered tasks finished.
    pub fn count(&self) -> usize {
        // ord: Acquire — pairs with decrement's Release: observing zero
        // makes every finished task's writes visible to the caller.
        self.count.load(Ordering::Acquire)
    }

    /// Returns true if there is nothing outstanding.
    pub fn is_clear(&self) -> bool {
        self.count() == 0
    }

    /// Blocks the calling thread until the count reaches zero.
    ///
    /// Callers that can do useful work instead should poll [`Self::is_clear`]
    /// and only fall back to `wait` when no work is available (this is what
    /// the pool's helping loop does).
    pub fn wait(&self) {
        if self.is_clear() {
            return;
        }
        let mut guard = self.lock.lock();
        while !self.is_clear() {
            self.cond.wait(&mut guard);
        }
    }

    /// Blocks until the count reaches zero or the timeout elapses.
    /// Returns true if the latch is clear.
    pub fn wait_timeout(&self, dur: std::time::Duration) -> bool {
        if self.is_clear() {
            return true;
        }
        let mut guard = self.lock.lock();
        if self.is_clear() {
            return true;
        }
        self.cond.wait_for(&mut guard, dur);
        self.is_clear()
    }
}

impl Default for CountLatch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn starts_clear() {
        let latch = CountLatch::new();
        assert!(latch.is_clear());
        latch.wait(); // must not block
    }

    #[test]
    fn increments_and_decrements() {
        let latch = CountLatch::new();
        latch.increment();
        latch.increment();
        assert_eq!(latch.count(), 2);
        latch.decrement();
        assert_eq!(latch.count(), 1);
        latch.decrement();
        assert!(latch.is_clear());
    }

    #[test]
    fn wait_blocks_until_clear() {
        let latch = Arc::new(CountLatch::new());
        latch.increment();
        let l2 = Arc::clone(&latch);
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            l2.decrement();
        });
        latch.wait();
        assert!(latch.is_clear());
        handle.join().unwrap();
    }

    #[test]
    fn wait_timeout_reports_pending() {
        let latch = CountLatch::new();
        latch.increment();
        assert!(!latch.wait_timeout(Duration::from_millis(5)));
        latch.decrement();
        assert!(latch.wait_timeout(Duration::from_millis(5)));
    }

    #[test]
    fn many_threads_drain() {
        let latch = Arc::new(CountLatch::new());
        for _ in 0..64 {
            latch.increment();
        }
        let mut handles = Vec::new();
        for _ in 0..64 {
            let l = Arc::clone(&latch);
            handles.push(thread::spawn(move || l.decrement()));
        }
        latch.wait();
        assert!(latch.is_clear());
        for h in handles {
            h.join().unwrap();
        }
    }
}

/// Exhaustive interleaving checks for the latch protocol — the edge that
/// publishes every scoped task's effects (foreground and background
/// lane alike) to the scope owner. Run with
/// `cargo test -p jstar-pool --features model-check`.
#[cfg(all(test, feature = "model-check"))]
mod model_tests {
    use super::*;
    use jstar_check::sync::UnsafeCell;
    use jstar_check::{thread, Checker};
    use std::sync::Arc;

    /// One job result per lane, as `Scope::spawn` + `spawn_background_batch`
    /// would produce them.
    struct Jobs {
        foreground: UnsafeCell<u64>,
        background: UnsafeCell<u64>,
        latch: CountLatch,
    }
    // SAFETY: the cells are written only by their task before its latch
    // decrement and read only after the owner observes the latch clear;
    // the decrement's Release / count's Acquire pairing orders them. The
    // model tests below are exactly the proof of this claim.
    unsafe impl Sync for Jobs {}

    /// A condvar-parked waiter must see the worker's pre-decrement write
    /// once `wait` returns — the race detector fails the run otherwise.
    #[test]
    fn wait_publishes_task_effects() {
        let report = Checker::new().check(|| {
            let jobs = Arc::new(Jobs {
                foreground: UnsafeCell::new(0),
                background: UnsafeCell::new(0),
                latch: CountLatch::new(),
            });
            jobs.latch.increment();
            let worker = {
                let jobs = Arc::clone(&jobs);
                thread::spawn(move || {
                    // SAFETY: unique writer; published by the decrement.
                    jobs.foreground.with_mut(|p| unsafe { *p = 7 });
                    jobs.latch.decrement();
                })
            };
            jobs.latch.wait();
            // SAFETY: latch observed clear — the task's write is ordered
            // before this read.
            assert_eq!(jobs.foreground.with(|p| unsafe { *p }), 7);
            worker.join();
        });
        report.assert_ok();
        assert!(report.complete, "exploration hit a budget cap");
    }

    /// The owner's polling join (`Scope::completed` → `is_clear`) must
    /// publish both lanes' effects: a foreground and a background-lane
    /// job each write their result before decrementing, and the owner
    /// spins on `is_clear` instead of parking.
    #[test]
    fn polling_join_publishes_both_lanes() {
        let report = Checker::new().check(|| {
            let jobs = Arc::new(Jobs {
                foreground: UnsafeCell::new(0),
                background: UnsafeCell::new(0),
                latch: CountLatch::new(),
            });
            jobs.latch.increment();
            jobs.latch.increment();
            let fg = {
                let jobs = Arc::clone(&jobs);
                thread::spawn(move || {
                    // SAFETY: unique writer; published by the decrement.
                    jobs.foreground.with_mut(|p| unsafe { *p = 1 });
                    jobs.latch.decrement();
                })
            };
            let bg = {
                let jobs = Arc::clone(&jobs);
                thread::spawn(move || {
                    // SAFETY: unique writer; published by the decrement.
                    jobs.background.with_mut(|p| unsafe { *p = 2 });
                    jobs.latch.decrement();
                })
            };
            while !jobs.latch.is_clear() {
                jstar_check::sync::spin_loop();
            }
            // SAFETY: latch observed clear — both decrements' Release
            // stores are acquired, ordering both writes before these
            // reads.
            assert_eq!(jobs.foreground.with(|p| unsafe { *p }), 1);
            assert_eq!(jobs.background.with(|p| unsafe { *p }), 2);
            fg.join();
            bg.join();
        });
        report.assert_ok();
        assert!(report.complete, "exploration hit a budget cap");
    }
}
