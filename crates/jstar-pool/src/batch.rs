//! Detached task batches with completion signaling.
//!
//! A blocking submission (a scope over [`crate::Scope::spawn_background_batch`])
//! holds its caller until the whole batch finishes — the right shape
//! when the results are needed immediately, and the wrong one for a
//! *pipeline*: the engine's epoch ring closes a staging epoch, submits
//! its per-partition Delta subtree builds, and wants to keep
//! coordinating (closing further epochs, helping execute class chunks)
//! while those builds ride the background lane.
//! [`submit_background`] is that submission shape: it enqueues the
//! batch and returns a [`TaskBatch`] handle immediately; the caller polls
//! [`TaskBatch::is_complete`] and collects with [`TaskBatch::join`] (which
//! helps execute queued work — foreground first — while anything is still
//! outstanding, so joining from inside a fork/join scope can never
//! deadlock the pool).
//!
//! Tasks must be `'static`: unlike [`crate::Scope`] there is no enclosing
//! frame whose lifetime bounds them — the handle may outlive the
//! submitting stack frame by design.

// Synchronisation comes from the jstar-check shim: real std/parking_lot
// types in production, instrumented model-checked types under
// `--features model-check` (see crates/jstar-check and CONCURRENCY.md).
use jstar_check::sync::Mutex;
use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crate::latch::CountLatch;
use crate::pool::ThreadPool;

/// Shared state of one submitted batch.
struct BatchState<R> {
    latch: CountLatch,
    /// `(submission index, result)` pairs, pushed as tasks finish.
    results: Mutex<Vec<(usize, R)>>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// A handle to a batch of tasks running on the pool's **background
/// lane**: workers (and helpers) only pick them up when no foreground
/// work exists, so foreground submissions preempt the batch by
/// construction.
///
/// Created by [`submit_background`]. Dropping the handle without joining
/// leaks nothing — the tasks still run to completion and their results
/// are dropped with the shared state.
pub struct TaskBatch<R> {
    state: Arc<BatchState<R>>,
    len: usize,
}

impl<R: Send + 'static> TaskBatch<R> {
    /// Number of tasks in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a batch of zero tasks.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once every task of the batch has finished (true immediately
    /// for an empty batch). One relaxed atomic load — cheap enough to
    /// poll from a coordinator loop.
    pub fn is_complete(&self) -> bool {
        self.state.latch.is_clear()
    }

    /// Waits for the batch and returns the results in submission order.
    ///
    /// While tasks are outstanding the calling thread *helps*: it
    /// executes queued pool jobs (foreground first, then the background
    /// lane — possibly this batch's own tasks), so a join from the
    /// engine coordinator mid-step lets busy workers finish their class
    /// chunks undisturbed. If any task panicked, the panic is resumed
    /// here.
    pub fn join(self, pool: &ThreadPool) -> Vec<R> {
        let mut stalled_waits = 0u32;
        while !self.state.latch.is_clear() {
            if pool.shared().try_help(false) {
                stalled_waits = 0;
            } else {
                self.state.latch.wait_timeout(Duration::from_millis(1));
                stalled_waits += 1;
                if stalled_waits >= 2
                    && !self.state.latch.is_clear()
                    && pool.shared().try_help(true)
                {
                    stalled_waits = 0;
                }
            }
        }
        if let Some(payload) = self.state.panic.lock().take() {
            panic::resume_unwind(payload);
        }
        let mut results = std::mem::take(&mut *self.state.results.lock());
        results.sort_by_key(|(i, _)| *i);
        results.into_iter().map(|(_, r)| r).collect()
    }
}

/// Submits `tasks` on `pool`'s background lane and returns immediately
/// with a [`TaskBatch`] handle. One queue submission and one worker
/// wakeup for the whole batch, like [`crate::Scope::spawn_batch`].
pub fn submit_background<R, F>(pool: &ThreadPool, tasks: Vec<F>) -> TaskBatch<R>
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let len = tasks.len();
    let state = Arc::new(BatchState {
        latch: CountLatch::new(),
        results: Mutex::new(Vec::with_capacity(len)),
        panic: Mutex::new(None),
    });
    let mut jobs: Vec<crate::pool::Job> = Vec::with_capacity(len);
    for (i, task) in tasks.into_iter().enumerate() {
        state.latch.increment();
        let state = Arc::clone(&state);
        jobs.push(Box::new(move || {
            match panic::catch_unwind(AssertUnwindSafe(task)) {
                Ok(r) => state.results.lock().push((i, r)),
                Err(payload) => {
                    let mut slot = state.panic.lock();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            // Decrement last: a joiner that sees the latch clear must
            // also see this task's result (or its panic).
            state.latch.decrement();
        }));
    }
    Arc::clone(pool.shared()).push_background_batch(jobs);
    TaskBatch { state, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jstar_check::sync::{AtomicUsize, Ordering};

    #[test]
    fn empty_batch_is_complete_immediately() {
        let pool = ThreadPool::new(2);
        let batch: TaskBatch<u32> = submit_background(&pool, Vec::<fn() -> u32>::new());
        assert!(batch.is_complete());
        assert!(batch.is_empty());
        assert!(batch.join(&pool).is_empty());
    }

    #[test]
    fn join_collects_in_submission_order() {
        let pool = ThreadPool::new(4);
        let tasks: Vec<_> = (0..64).map(|i| move || i * 3).collect();
        let batch = submit_background(&pool, tasks);
        assert_eq!(batch.len(), 64);
        let out = batch.join(&pool);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn is_complete_flips_without_joining() {
        let pool = ThreadPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..8)
            .map(|_| {
                let hits = Arc::clone(&hits);
                move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        let batch = submit_background(&pool, tasks);
        while !batch.is_complete() {
            std::thread::yield_now();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 8);
        batch.join(&pool);
    }

    #[test]
    fn dropping_the_handle_still_runs_the_tasks() {
        let pool = ThreadPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..16)
            .map(|_| {
                let hits = Arc::clone(&hits);
                move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        drop(submit_background(&pool, tasks));
        while hits.load(Ordering::Relaxed) < 16 {
            std::thread::yield_now();
        }
    }

    #[test]
    fn works_on_single_thread_pool() {
        let pool = ThreadPool::new(1);
        let tasks: Vec<_> = (0..8).map(|i| move || i + 1).collect();
        let batch = submit_background(&pool, tasks);
        assert_eq!(batch.join(&pool), (1..=8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bg boom")]
    fn join_resumes_task_panics() {
        let pool = ThreadPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("bg boom")),
            Box::new(|| 3),
        ];
        submit_background(&pool, tasks).join(&pool);
    }

    #[test]
    fn foreground_work_preempts_while_batch_pending() {
        // Background tasks must not starve a foreground scope spawned
        // after them: the scope completes even while the batch waits.
        let pool = ThreadPool::new(2);
        let tasks: Vec<_> = (0..4).map(|i| move || i).collect();
        let batch = submit_background(&pool, tasks);
        let count = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn_batch((0..32).map(|_| {
                |_: &crate::Scope<'_>| {
                    count.fetch_add(1, Ordering::Relaxed);
                }
            }));
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
        assert_eq!(batch.join(&pool), vec![0, 1, 2, 3]);
    }
}
