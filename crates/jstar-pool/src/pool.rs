//! The work-stealing thread pool itself.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

// Synchronisation comes from the jstar-check shim: real std/parking_lot
// types in production, instrumented model-checked types under
// `--features model-check` (see crates/jstar-check and CONCURRENCY.md).
use jstar_check::sync::{AtomicBool, AtomicUsize, Condvar, Mutex, Ordering};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::scope::Scope;

pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state between the pool handle and its worker threads.
pub(crate) struct Shared {
    /// Global FIFO queue that external threads (and helpers) submit to.
    injector: Injector<Job>,
    /// Low-priority lane: jobs here are only taken when no foreground
    /// work (local deque, injector, sibling steals) exists, so a
    /// foreground submission effectively preempts everything queued
    /// behind it. The engine uses this lane for Delta subtree builds
    /// that should run on otherwise-idle workers *during* a step's
    /// class execution without delaying the class's own chunks.
    background: Injector<Job>,
    /// One stealer per worker's local LIFO deque.
    stealers: Vec<Stealer<Job>>,
    /// Number of foreground jobs submitted but not yet started; used to
    /// decide sleeping and as the adaptive chunking backlog signal.
    pending: AtomicUsize,
    /// Background jobs submitted but not yet started. Counted apart
    /// from `pending` so [`ThreadPool::pending_jobs`] keeps meaning
    /// "foreground backlog" — background work must not coarsen the
    /// adaptive chunk decisions of execute-phase loops.
    bg_pending: AtomicUsize,
    shutdown: AtomicBool,
    sleep_lock: Mutex<()>,
    sleep_cond: Condvar,
}

/// A worker thread's registration: its pool, local deque, and stable index.
type LocalWorker = (Arc<Shared>, Worker<Job>, usize);

thread_local! {
    /// Local deque of the current worker thread, if this thread belongs to a
    /// pool, together with the worker's stable index within that pool. Used
    /// so that jobs spawned from inside the pool go to the fast LIFO path
    /// instead of the shared injector, and so engine code can route
    /// per-worker state (e.g. sharded Delta staging buffers) without
    /// synchronisation.
    static LOCAL: RefCell<Option<LocalWorker>> = const { RefCell::new(None) };

    /// Nesting depth of "helping" job execution on this thread. Helping
    /// recurses (a helped job can enter a scope, which helps again); an
    /// unbounded chain overflows the stack on deeply recursive fork/join
    /// programs, so waiters past [`MAX_HELP_DEPTH`] park on the latch and
    /// let other threads drain the queue instead.
    static HELP_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Deeper helping than this parks the waiter instead of executing more
/// jobs inline, letting workers and shallower waiters drain the queue.
/// If *every* thread sits at the cap (pathologically deep single-chain
/// nesting), [`Scope::run`] falls back to forced helping after a stall,
/// trading the stack-depth guarantee for guaranteed progress.
const MAX_HELP_DEPTH: usize = 48;

impl Shared {
    /// Pushes a job, preferring the current worker's local deque.
    pub(crate) fn push(self: &Arc<Self>, job: Job) {
        // ord: Release — pairs with the Acquire load in the sleep check:
        // a worker that observes the bumped count also observes the job
        // made visible by the deque push below (the deque has its own
        // internal ordering; this keeps the count itself coherent with it).
        self.pending.fetch_add(1, Ordering::Release);
        let pushed_locally = LOCAL.with(|slot| {
            if let Some((shared, worker, _)) = slot.borrow().as_ref() {
                if Arc::ptr_eq(shared, self) {
                    worker.push(job);
                    return None;
                }
            }
            Some(job)
        });
        if let Some(job) = pushed_locally {
            self.injector.push(job);
        }
        // Wake one sleeper; it will wake further sleepers if more work shows up.
        let _guard = self.sleep_lock.lock();
        self.sleep_cond.notify_all();
    }

    /// Pushes a whole batch of jobs with a single wakeup, instead of one
    /// lock/notify round-trip per job. This is the submission shape of the
    /// engine's all-minimums step: all chunks of one equivalence class are
    /// ready at once, so per-job notification is pure overhead.
    pub(crate) fn push_batch(self: &Arc<Self>, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        // ord: Release — as in `push`, one bump for the whole batch.
        self.pending.fetch_add(jobs.len(), Ordering::Release);
        let leftover = LOCAL.with(|slot| {
            if let Some((shared, worker, _)) = slot.borrow().as_ref() {
                if Arc::ptr_eq(shared, self) {
                    for job in jobs {
                        worker.push(job);
                    }
                    return None;
                }
            }
            Some(jobs)
        });
        if let Some(jobs) = leftover {
            for job in jobs {
                self.injector.push(job);
            }
        }
        let _guard = self.sleep_lock.lock();
        self.sleep_cond.notify_all();
    }

    /// Pushes a batch of **background** jobs: they run only on threads
    /// that found no foreground work, so anything pushed through
    /// [`Shared::push`]/[`Shared::push_batch`] — before or after —
    /// takes precedence. One wakeup for the whole batch, like
    /// [`Shared::push_batch`].
    pub(crate) fn push_background_batch(self: &Arc<Self>, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        // ord: Release — pairs with the sleep check's Acquire load of
        // `bg_pending`, exactly as `push` does for the foreground count.
        self.bg_pending.fetch_add(jobs.len(), Ordering::Release);
        for job in jobs {
            self.background.push(job);
        }
        let _guard = self.sleep_lock.lock();
        self.sleep_cond.notify_all();
    }

    /// Takes one background job, if any. Decrements the background
    /// backlog counter on success.
    fn pop_background(&self) -> Option<Job> {
        loop {
            match self.background.steal() {
                Steal::Success(job) => {
                    // ord: Release — the decrement must not be reordered
                    // before the steal that claimed the job, so the count
                    // never under-reports a job still in the queue.
                    self.bg_pending.fetch_sub(1, Ordering::Release);
                    return Some(job);
                }
                Steal::Empty => return None,
                Steal::Retry => continue,
            }
        }
    }

    /// Tries to take one job from anywhere: the local deque, the injector,
    /// or a sibling worker.
    pub(crate) fn find_job(&self, local: Option<&Worker<Job>>) -> Option<Job> {
        if let Some(w) = local {
            if let Some(job) = w.pop() {
                return Some(job);
            }
        }
        loop {
            match local
                .map(|w| self.injector.steal_batch_and_pop(w))
                .unwrap_or_else(|| self.injector.steal())
            {
                Steal::Success(job) => return Some(job),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        // Steal from siblings, scanning all of them until stable.
        loop {
            let mut retry = false;
            for st in &self.stealers {
                match st.steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if !retry {
                return None;
            }
        }
    }

    fn run_job(&self, job: Job) {
        // ord: Release — settles this job's `push` increment before the
        // job body runs; an Acquire reader of 0 therefore knows every
        // submitted job has at least started.
        self.pending.fetch_sub(1, Ordering::Release);
        // Job panics are caught by the scope machinery; a bare `execute`d job
        // that panics must not take the worker thread down with it.
        let _ = panic::catch_unwind(AssertUnwindSafe(job));
    }

    /// Runs a job whose backlog counter was already settled (background
    /// jobs: [`Shared::pop_background`] decremented `bg_pending`).
    fn run_counted_job(&self, job: Job) {
        let _ = panic::catch_unwind(AssertUnwindSafe(job));
    }

    /// Finds one foreground job, falling back to the background lane
    /// only when no foreground work exists anywhere — the property that
    /// makes background tasks preemptible by execute-phase spawns. The
    /// bool is true for a foreground job (whose `pending` entry is
    /// still to be settled by [`Shared::run_job`]).
    fn find_any_job(&self, local: Option<&Worker<Job>>) -> Option<(Job, bool)> {
        if let Some(job) = self.find_job(local) {
            return Some((job, true));
        }
        self.pop_background().map(|job| (job, false))
    }

    /// Executes one available job (foreground first, then background).
    /// Returns false when no job was found or this thread's helping
    /// recursion is already at the depth cap (unless `force` overrides
    /// the cap to break a stall).
    pub(crate) fn try_help(&self, force: bool) -> bool {
        if !force && HELP_DEPTH.with(|d| d.get()) >= MAX_HELP_DEPTH {
            return false;
        }
        let local_job = LOCAL.with(|slot| {
            let borrow = slot.borrow();
            match borrow.as_ref() {
                Some((_, worker, _)) => self.find_any_job(Some(worker)),
                None => self.find_any_job(None),
            }
        });
        match local_job {
            Some((job, foreground)) => {
                HELP_DEPTH.with(|d| d.set(d.get() + 1));
                if foreground {
                    self.run_job(job);
                } else {
                    self.run_counted_job(job);
                }
                HELP_DEPTH.with(|d| d.set(d.get() - 1));
                true
            }
            None => false,
        }
    }

    fn worker_loop(self: Arc<Self>, worker: Worker<Job>, index: usize) {
        LOCAL.with(|slot| {
            *slot.borrow_mut() = Some((Arc::clone(&self), worker, index));
        });
        loop {
            let job = LOCAL.with(|slot| {
                let borrow = slot.borrow();
                // lint: allow(expect): worker_loop installed the TLS slot before looping.
                let (_, worker, _) = borrow.as_ref().expect("worker registered above");
                self.find_any_job(Some(worker))
            });
            match job {
                Some((job, true)) => self.run_job(job),
                Some((job, false)) => self.run_counted_job(job),
                None => {
                    // ord: Acquire — pairs with Drop's Release store; a
                    // worker that observes shutdown also observes every
                    // write the dropping thread made before it.
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    // Park until a push notifies us. The timeout guards
                    // against a lost wakeup between find_job and sleeping.
                    let mut guard = self.sleep_lock.lock();
                    // ord: Acquire ×3 — pair with the submitters' Release
                    // bumps (and Drop's Release store): reading 0/false
                    // here proves no submission predates this check, so
                    // sleeping cannot strand a job (the timed wait covers
                    // the remaining push-between-check-and-sleep window).
                    if self.pending.load(Ordering::Acquire) == 0
                        && self.bg_pending.load(Ordering::Acquire) == 0
                        && !self.shutdown.load(Ordering::Acquire)
                    {
                        self.sleep_cond
                            .wait_for(&mut guard, Duration::from_millis(5));
                    }
                }
            }
        }
        LOCAL.with(|slot| {
            *slot.borrow_mut() = None;
        });
    }
}

/// A fixed-size work-stealing fork/join thread pool.
///
/// This is the Rust stand-in for the Java Fork/Join pool that the JStar
/// runtime parallelises on. Jobs spawned from inside the pool go to the
/// spawning worker's LIFO deque (good locality, like `ForkJoinTask.fork`);
/// idle workers steal FIFO from siblings or the global injector.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with exactly `threads` worker threads (minimum 1).
    ///
    /// This corresponds to the paper's `--threads=N` runtime flag.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            background: Injector::new(),
            stealers,
            pending: AtomicUsize::new(0),
            bg_pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            sleep_cond: Condvar::new(),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("jstar-worker-{i}"))
                    .spawn(move || shared.worker_loop(w, i))
                    // lint: allow(expect): pool construction; spawn failure is fatal by design.
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// The number of worker threads in this pool.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// The stable index of the calling worker thread within *this* pool:
    /// `Some(0..num_threads)` on a pool worker, `None` on any other thread
    /// (including workers of a different pool).
    ///
    /// This is what lets callers keep per-worker state — e.g. the engine's
    /// sharded Delta staging buffers — without any cross-thread
    /// synchronisation on the hot path.
    pub fn current_worker_index(&self) -> Option<usize> {
        LOCAL.with(|slot| {
            slot.borrow().as_ref().and_then(|(shared, _, index)| {
                if Arc::ptr_eq(shared, &self.shared) {
                    Some(*index)
                } else {
                    None
                }
            })
        })
    }

    /// Number of submitted-but-not-yet-started **foreground** jobs — a
    /// cheap occupancy signal. The engine's adaptive scheduler uses it to
    /// pick chunk sizes: a backlog means smaller task counts (bigger
    /// chunks) waste less time queuing. Background-lane jobs are counted
    /// separately ([`ThreadPool::pending_background_jobs`]) precisely so
    /// they never coarsen those decisions.
    pub fn pending_jobs(&self) -> usize {
        // ord: Acquire — pairs with the submitters' Release bumps so the
        // backlog signal is never fresher than the queues it describes.
        self.shared.pending.load(Ordering::Acquire)
    }

    /// Number of submitted-but-not-yet-started background-lane jobs.
    pub fn pending_background_jobs(&self) -> usize {
        // ord: Acquire — as in `pending_jobs`.
        self.shared.bg_pending.load(Ordering::Acquire)
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Submits a detached `'static` job.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.shared.push(Box::new(f));
    }

    /// Runs a fork/join scope: closures spawned on the [`Scope`] may borrow
    /// from the enclosing stack frame, and `scope` only returns once every
    /// spawned task (transitively) has completed.
    ///
    /// The calling thread *helps*: while waiting it executes queued jobs, so
    /// a scope entered from a worker thread cannot deadlock the pool.
    ///
    /// If any task panics, the panic is captured and resumed on the caller
    /// after all tasks finish (matching `rayon::scope` semantics).
    pub fn scope<'scope, F, R>(&'scope self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope>) -> R,
    {
        Scope::run(self, f)
    }

    /// Classic binary fork/join: runs `a` and `b` potentially in parallel and
    /// returns both results.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        let mut rb = None;
        let ra = self.scope(|s| {
            s.spawn(|_| rb = Some(b()));
            a()
        });
        // lint: allow(expect): scope() joins the spawned task before returning.
        (ra, rb.expect("spawned task completed by scope exit"))
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // ord: Release — pairs with the workers' Acquire loads: a worker
        // that sees the flag also sees everything this thread wrote first.
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.sleep_lock.lock();
            self.shared.sleep_cond.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// A process-wide pool sized to `std::thread::available_parallelism()`.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ThreadPool::new(n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jstar_check::sync::AtomicU64;

    #[test]
    fn executes_detached_jobs() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Drain by scoping an empty task set after the submissions.
        while counter.load(Ordering::Relaxed) < 100 {
            std::thread::yield_now();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_waits_for_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..256 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn nested_scopes_from_workers() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        pool.scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&counter);
                s.spawn(move |inner| {
                    for _ in 0..8 {
                        let c = Arc::clone(&c);
                        inner.spawn(move |_| {
                            c.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 6 * 7, || "hi".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "hi");
    }

    #[test]
    fn join_works_on_single_thread_pool() {
        let pool = ThreadPool::new(1);
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::new(2);
        let v = pool.scope(|_| 99);
        assert_eq!(v, 99);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn scope_propagates_panic() {
        let pool = ThreadPool::new(2);
        pool.scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
    }

    #[test]
    fn pool_survives_task_panic() {
        let pool = ThreadPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("first"));
            });
        }));
        assert!(r.is_err());
        // The pool must still execute new work after a panic.
        let ok = pool.scope(|_| 5);
        assert_eq!(ok, 5);
    }

    #[test]
    fn deep_recursion_does_not_deadlock() {
        // Spawn a task tree deeper than the thread count; helping must
        // prevent deadlock.
        let pool = ThreadPool::new(2);
        fn fib(pool: &ThreadPool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        assert_eq!(fib(&pool, 16), 987);
    }

    #[test]
    fn worker_index_is_stable_and_scoped_to_pool() {
        let pool = Arc::new(ThreadPool::new(3));
        let other = ThreadPool::new(2);
        assert_eq!(pool.current_worker_index(), None, "caller is not a worker");
        assert_eq!(other.current_worker_index(), None);
        // Detached jobs run on worker threads only (no caller helping), so
        // every one of them must observe a valid index for its own pool.
        let done = Arc::new(AtomicU64::new(0));
        let ok = Arc::new(AtomicU64::new(0));
        for _ in 0..64 {
            let pool2 = Arc::clone(&pool);
            let done = Arc::clone(&done);
            let ok = Arc::clone(&ok);
            pool.execute(move || {
                if matches!(pool2.current_worker_index(), Some(i) if i < 3) {
                    ok.fetch_add(1, Ordering::Relaxed);
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        while done.load(Ordering::Relaxed) < 64 {
            std::thread::yield_now();
        }
        assert_eq!(ok.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn spawn_batch_runs_every_task() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            s.spawn_batch((0..128).map(|_| {
                |_: &crate::Scope<'_>| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            }));
        });
        assert_eq!(counter.load(Ordering::Relaxed), 128);
    }

    #[test]
    fn pending_jobs_drains_to_zero() {
        let pool = ThreadPool::new(2);
        pool.scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {});
            }
        });
        // After the scope, every submitted job has started (and finished).
        assert_eq!(pool.pending_jobs(), 0);
    }

    #[test]
    fn global_pool_is_usable() {
        let n = global().num_threads();
        assert!(n >= 1);
        let v = global().scope(|_| 7);
        assert_eq!(v, 7);
    }
}
