//! Data-parallel loop helpers over the fork/join pool.
//!
//! JStar rules contain `for` loops whose bodies are independent because the
//! language has no mutable variables (§1.3 of the paper); the compiler may
//! execute them in parallel. These helpers are the runtime shape of that:
//! chunked parallel iteration, map, and tree reduction.

use crate::pool::ThreadPool;

/// The chunk size [`adaptive_chunk`] picks for an **idle** pool of
/// `threads` workers: four stealable chunks per thread. Exposed so
/// callers planning work for a *future* launch instant (e.g. the
/// engine's speculative next-class plans, built while the pool is
/// transiently busy with the current class) can size chunks for the
/// occupancy the launch will actually see, without diverging from the
/// live heuristic.
pub fn idle_chunk(threads: usize, len: usize) -> usize {
    len.div_ceil((threads * 4).max(1)).max(1)
}

/// Occupancy-aware chunk size: gives each thread a few chunks to steal
/// when the pool is idle, but when the pool already has a backlog of
/// queued jobs the split is coarsened — extra tasks would only queue
/// behind the backlog, so fine-grained splitting buys no extra
/// parallelism and costs task overhead.
pub fn adaptive_chunk(pool: &ThreadPool, len: usize) -> usize {
    let threads = pool.num_threads();
    let backlog = pool.pending_jobs();
    if backlog >= threads {
        // Saturated pool: one chunk per thread is plenty.
        len.div_ceil(threads.max(1)).max(1)
    } else {
        idle_chunk(threads, len)
    }
}

/// Runs `body(i)` for every `i` in `range`, in parallel chunks.
///
/// `chunk` controls granularity; pass 0 to let the pool choose.
pub fn parallel_for<F>(pool: &ThreadPool, range: std::ops::Range<usize>, chunk: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return;
    }
    let chunk = if chunk == 0 {
        adaptive_chunk(pool, len)
    } else {
        chunk
    };
    if len <= chunk || pool.num_threads() == 1 {
        for i in range {
            body(i);
        }
        return;
    }
    let body = &body;
    pool.scope(|s| {
        let mut start = range.start;
        while start < range.end {
            let end = (start + chunk).min(range.end);
            s.spawn(move |_| {
                for i in start..end {
                    body(i);
                }
            });
            start = end;
        }
    });
}

/// Splits `data` into chunks of at most `chunk` elements and runs `body`
/// on each chunk in parallel. `body` receives the chunk and the index of its
/// first element.
pub fn parallel_for_each<T, F>(pool: &ThreadPool, data: &mut [T], chunk: usize, body: F)
where
    T: Send,
    F: Fn(&mut [T], usize) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunk = if chunk == 0 {
        adaptive_chunk(pool, len)
    } else {
        chunk
    };
    let body = &body;
    pool.scope(|s| {
        let mut base = 0;
        for piece in data.chunks_mut(chunk) {
            let start = base;
            base += piece.len();
            s.spawn(move |_| body(piece, start));
        }
    });
}

/// Runs `body` on immutable chunks of `data` in parallel, collecting one
/// result per chunk (in order).
pub fn parallel_chunks<T, R, F>(pool: &ThreadPool, data: &[T], chunk: usize, body: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T], usize) -> R + Sync,
{
    let len = data.len();
    if len == 0 {
        return Vec::new();
    }
    let chunk = if chunk == 0 {
        adaptive_chunk(pool, len)
    } else {
        chunk
    };
    let n_chunks = len.div_ceil(chunk);
    let mut results: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    let body = &body;
    pool.scope(|s| {
        for (idx, (piece, slot)) in data.chunks(chunk).zip(results.iter_mut()).enumerate() {
            let start = idx * chunk;
            s.spawn(move |_| {
                *slot = Some(body(piece, start));
            });
        }
    });
    results
        .into_iter()
        // lint: allow(expect): scope() joins every task before returning.
        .map(|r| r.expect("all chunks completed by scope exit"))
        .collect()
}

/// Applies `f` to every index in `0..n` in parallel and collects the results
/// in order.
pub fn parallel_map<R, F>(pool: &ThreadPool, n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let chunk = if chunk == 0 {
        adaptive_chunk(pool, n)
    } else {
        chunk
    };
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let f = &f;
    pool.scope(|s| {
        for (chunk_idx, slots) in results.chunks_mut(chunk).enumerate() {
            let start = chunk_idx * chunk;
            s.spawn(move |_| {
                for (off, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(start + off));
                }
            });
        }
    });
    results
        .into_iter()
        // lint: allow(expect): scope() joins every task before returning.
        .map(|r| r.expect("all indices filled by scope exit"))
        .collect()
}

/// Runs a set of heterogeneous tasks on the pool and collects their
/// results in submission order.
///
/// The whole task set is submitted through [`crate::Scope::spawn_batch`]
/// — one queue submission, one worker wakeup — which is the shape the
/// engine's partitioned Delta drain needs: all per-partition merge tasks
/// are known up front, and a notify-per-task storm would eat the win of
/// parallelising the merge in the first place. The calling thread helps
/// execute queued work while it waits, so this is safe to call from a
/// worker thread.
pub fn parallel_tasks<R, F>(pool: &ThreadPool, tasks: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    parallel_tasks_impl(pool, tasks)
}

fn parallel_tasks_impl<R, F>(pool: &ThreadPool, tasks: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    if tasks.is_empty() {
        return Vec::new();
    }
    if tasks.len() == 1 || pool.num_threads() == 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }
    let mut results: Vec<Option<R>> = (0..tasks.len()).map(|_| None).collect();
    pool.scope(|s| {
        let jobs = tasks
            .into_iter()
            .zip(results.iter_mut())
            .map(|(task, slot)| {
                move |_: &crate::Scope<'_>| {
                    *slot = Some(task());
                }
            });
        s.spawn_batch(jobs);
    });
    results
        .into_iter()
        // lint: allow(expect): scope() joins every task before returning.
        .map(|r| r.expect("all tasks completed by scope exit"))
        .collect()
}

/// Parallel tree reduction: maps each chunk to a partial value with `map`,
/// then folds the partials with the associative `combine`.
///
/// This is the execution shape of JStar's `reduce` operations with
/// user-defined operators (§1.3) — the paper notes loops with a reducer
/// object "could also be executed in parallel, with a tree-based pass to
/// combine the final reducer results".
pub fn parallel_reduce<T, R, M, C>(
    pool: &ThreadPool,
    data: &[T],
    chunk: usize,
    identity: R,
    map: M,
    combine: C,
) -> R
where
    T: Sync,
    R: Send,
    M: Fn(&[T]) -> R + Sync,
    C: Fn(R, R) -> R,
{
    let partials = parallel_chunks(pool, data, chunk, |piece, _| map(piece));
    partials.into_iter().fold(identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn parallel_for_covers_range_exactly_once() {
        let p = pool();
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        parallel_for(&p, 0..1000, 7, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_range() {
        let p = pool();
        parallel_for(&p, 5..5, 0, |_| panic!("must not run"));
    }

    #[test]
    fn parallel_for_each_mutates_disjoint_chunks() {
        let p = pool();
        let mut v = vec![0usize; 257];
        parallel_for_each(&p, &mut v, 16, |chunk, base| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = base + i;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn parallel_chunks_preserves_order() {
        let p = pool();
        let data: Vec<u64> = (0..100).collect();
        let sums = parallel_chunks(&p, &data, 10, |c, start| (start, c.iter().sum::<u64>()));
        assert_eq!(sums.len(), 10);
        for (i, (start, _)) in sums.iter().enumerate() {
            assert_eq!(*start, i * 10);
        }
        let total: u64 = sums.iter().map(|(_, s)| s).sum();
        assert_eq!(total, 4950);
    }

    #[test]
    fn parallel_map_collects_in_order() {
        let p = pool();
        let out = parallel_map(&p, 50, 3, |i| i * i);
        assert_eq!(out.len(), 50);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn parallel_reduce_sums() {
        let p = pool();
        let data: Vec<u64> = (1..=1000).collect();
        let sum = parallel_reduce(&p, &data, 64, 0u64, |c| c.iter().sum::<u64>(), |a, b| a + b);
        assert_eq!(sum, 500500);
    }

    #[test]
    fn parallel_reduce_matches_sequential_for_min() {
        let p = pool();
        let data: Vec<i64> = (0..500).map(|i| ((i * 7919) % 1000) as i64 - 500).collect();
        let par_min = parallel_reduce(
            &p,
            &data,
            13,
            i64::MAX,
            |c| c.iter().copied().min().unwrap_or(i64::MAX),
            |a, b| a.min(b),
        );
        assert_eq!(par_min, data.iter().copied().min().unwrap());
    }

    #[test]
    fn parallel_tasks_collects_in_submission_order() {
        let p = pool();
        let tasks: Vec<_> = (0..37).map(|i| move || i * 3).collect();
        let out = parallel_tasks(&p, tasks);
        assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_tasks_empty_and_single() {
        let p = pool();
        let none: Vec<fn() -> u32> = Vec::new();
        assert!(parallel_tasks(&p, none).is_empty());
        assert_eq!(parallel_tasks(&p, vec![|| 9u32]), vec![9]);
    }

    #[test]
    fn chunk_zero_picks_automatically() {
        let p = pool();
        let data: Vec<u64> = (0..10_000).collect();
        let sum = parallel_reduce(&p, &data, 0, 0u64, |c| c.iter().sum::<u64>(), |a, b| a + b);
        assert_eq!(sum, 49_995_000);
    }
}
