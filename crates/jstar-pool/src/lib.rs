//! # jstar-pool — a work-stealing fork/join thread pool
//!
//! The JStar paper executes the tuples of each minimal Delta equivalence
//! class "in parallel" on top of the Java 7 Fork/Join framework (Lea, 2000),
//! with the pool size controlled by a `--threads=N` runtime flag.  This crate
//! is the Rust substitute for that substrate: a small work-stealing thread
//! pool built on [`crossbeam::deque`], offering
//!
//! * [`ThreadPool::scope`] — structured fork/join: spawn borrowed closures
//!   and block (while *helping*, i.e. executing queued jobs) until all of
//!   them finish, mirroring `ForkJoinTask::invokeAll`;
//! * [`ThreadPool::join`] — binary fork/join of two closures with results;
//! * [`parallel_for`] / [`parallel_for_each`] — chunked data-parallel loops,
//!   the shape used by JStar's all-minimums strategy and by the parallel CSV
//!   region readers;
//! * a configurable thread count (the `--threads=N` flag of the paper), and
//!   a process-wide [`global`] pool sized to available parallelism.
//!
//! Worker threads sleep on a condition variable when no work is available
//! and are woken on submission, so an idle pool consumes no CPU.
//!
//! ```
//! let pool = jstar_pool::ThreadPool::new(4);
//! let mut data = vec![0u64; 1024];
//! jstar_pool::parallel_for_each(&pool, &mut data, 64, |chunk, base| {
//!     for (i, x) in chunk.iter_mut().enumerate() {
//!         *x = (base + i) as u64 * 2;
//!     }
//! });
//! assert_eq!(data[513], 1026);
//! ```

mod batch;
mod latch;
mod parfor;
mod pool;
mod scope;

pub use batch::{submit_background, TaskBatch};
pub use latch::CountLatch;
pub use parfor::{
    adaptive_chunk, idle_chunk, parallel_chunks, parallel_for, parallel_for_each, parallel_map,
    parallel_reduce, parallel_tasks,
};
pub use pool::{global, ThreadPool};
pub use scope::Scope;
