//! Structured fork/join scopes over the pool.

use std::any::Any;
use std::marker::PhantomData;
use std::mem;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

// Shim mutex: parking_lot in production, model-checked under
// `--features model-check` (see crates/jstar-check).
use jstar_check::sync::Mutex;

use crate::latch::CountLatch;
use crate::pool::{Job, ThreadPool};

/// State shared by all tasks of one scope.
struct ScopeState {
    latch: CountLatch,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// A fork/join scope created by [`ThreadPool::scope`].
///
/// Closures spawned on the scope may borrow data living at least as long as
/// `'scope`; the scope guarantees they all complete before
/// [`ThreadPool::scope`] returns, which is what makes the borrows sound.
pub struct Scope<'scope> {
    pool: &'scope ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'scope`, mirroring `std::thread::scope`'s variance
    /// trick: prevents the scope from being smuggled to a longer lifetime.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub(crate) fn run<F, R>(pool: &'scope ThreadPool, f: F) -> R
    where
        F: FnOnce(&Scope<'scope>) -> R,
    {
        let scope = Scope {
            pool,
            state: Arc::new(ScopeState {
                latch: CountLatch::new(),
                panic: Mutex::new(None),
            }),
            _marker: PhantomData,
        };
        // Run the scope body itself under catch_unwind so that spawned tasks
        // are always waited for, even if the body panics: otherwise borrowed
        // data could be freed while tasks still run.
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));

        // Help execute work until every spawned task has finished. Helping
        // is depth-capped to bound stack growth; if the pool stalls with
        // every thread at the cap (pathologically deep nesting), force one
        // over-cap help so the system always makes progress.
        let mut stalled_waits = 0u32;
        while !scope.state.latch.is_clear() {
            if pool.shared().try_help(false) {
                stalled_waits = 0;
            } else {
                scope
                    .state
                    .latch
                    .wait_timeout(std::time::Duration::from_millis(1));
                stalled_waits += 1;
                if stalled_waits >= 2
                    && !scope.state.latch.is_clear()
                    && pool.shared().try_help(true)
                {
                    stalled_waits = 0;
                }
            }
        }

        if let Some(payload) = scope.state.panic.lock().take() {
            panic::resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Wraps a scoped closure as a queueable job, registering it on the
    /// latch. The increment happens here, after the caller has the
    /// closure in hand, so an iterator that panics mid-batch never
    /// leaves a phantom increment behind.
    fn wrap<F>(&self, f: F) -> Job
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.latch.increment();
        let state = Arc::clone(&self.state);
        let pool = self.pool;
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = Scope {
                pool,
                state: Arc::clone(&state),
                _marker: PhantomData,
            };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
            if let Err(payload) = result {
                scope.state.record_panic(payload);
            }
            state.latch.decrement();
        });
        // SAFETY: `Scope::run` does not return until the latch is clear, so
        // the closure (and everything it borrows from 'scope, including the
        // pool reference) outlives the task's execution. We erase the
        // lifetime to store the job in the 'static queue, exactly like
        // rayon's scope and crossbeam's scoped threads do.
        unsafe { mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(task) }
    }

    /// Spawns a task on the pool. The closure receives the scope again so it
    /// can spawn further subtasks (nested fork/join).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let job = self.wrap(f);
        Arc::clone(self.pool.shared()).push(job);
    }

    /// Spawns a whole batch of tasks with a single queue submission and a
    /// single worker wakeup. Use this when all tasks of a fork/join step
    /// are known up front (the engine's all-minimums class execution): it
    /// removes the per-task notify storm of repeated [`Scope::spawn`].
    pub fn spawn_batch<F, I>(&self, fs: I)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
        I: IntoIterator<Item = F>,
    {
        // Drain the caller's iterator *before* touching the latch: user
        // code may panic mid-iteration, and an increment without a queued
        // job would make Scope::run wait forever.
        let fs: Vec<F> = fs.into_iter().collect();
        let jobs: Vec<Job> = fs.into_iter().map(|f| self.wrap(f)).collect();
        Arc::clone(self.pool.shared()).push_batch(jobs);
    }

    /// Spawns a batch of **low-priority** tasks: they are joined by this
    /// scope like any other spawn, but workers only pick them up when no
    /// foreground work (including chunks spawned through
    /// [`Scope::spawn_batch`]) is available — foreground submissions
    /// preempt them by construction. This is the lane for work that
    /// should soak up idle workers without delaying a step's critical
    /// path, e.g. the engine's Delta subtree pre-builds during class
    /// execution.
    pub fn spawn_background_batch<F, I>(&self, fs: I)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
        I: IntoIterator<Item = F>,
    {
        let fs: Vec<F> = fs.into_iter().collect();
        let jobs: Vec<Job> = fs.into_iter().map(|f| self.wrap(f)).collect();
        Arc::clone(self.pool.shared()).push_background_batch(jobs);
    }

    /// True when every task spawned on this scope (so far) has finished.
    ///
    /// Together with [`Scope::help`] and [`Scope::wait_timeout`] this
    /// lets the scope owner *participate* in the join instead of
    /// blocking in [`ThreadPool::scope`]'s internal loop — interleaving
    /// its own coordinator work (e.g. absorbing staged tuples) with
    /// helping, and breaking out the moment the spawned work is done.
    pub fn completed(&self) -> bool {
        self.state.latch.is_clear()
    }

    /// Executes one queued pool job if any is available (foreground
    /// first, then the background lane). Returns false when there was
    /// nothing to help with — the caller should then do its own pending
    /// work or park via [`Scope::wait_timeout`].
    pub fn help(&self) -> bool {
        self.pool.shared().try_help(false)
    }

    /// Parks the calling thread until the scope's tasks complete or the
    /// timeout elapses; returns true when the scope is complete.
    pub fn wait_timeout(&self, dur: std::time::Duration) -> bool {
        self.state.latch.wait_timeout(dur)
    }

    /// The pool this scope runs on.
    pub fn pool(&self) -> &'scope ThreadPool {
        self.pool
    }
}

#[cfg(test)]
mod tests {
    use crate::ThreadPool;
    use jstar_check::sync::{AtomicUsize, Ordering};

    #[test]
    fn tasks_can_borrow_stack_data() {
        let pool = ThreadPool::new(2);
        let data = [1u32, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(2) {
                let sum = &sum;
                s.spawn(move |_| {
                    sum.fetch_add(chunk.iter().sum::<u32>() as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn pathologically_deep_nesting_makes_progress() {
        // Regression: a single chain of nested scopes deeper than the
        // helping cap used to livelock once every thread hit the cap.
        // The forced-help fallback must keep it moving.
        let pool = ThreadPool::new(1);
        fn nest(pool: &ThreadPool, depth: usize, hits: &AtomicUsize) {
            hits.fetch_add(1, Ordering::Relaxed);
            if depth == 0 {
                return;
            }
            pool.scope(|s| {
                s.spawn(move |inner| nest(inner.pool(), depth - 1, hits));
            });
        }
        let hits = AtomicUsize::new(0);
        nest(&pool, 200, &hits);
        assert_eq!(hits.load(Ordering::Relaxed), 201);
    }

    #[test]
    fn spawn_batch_iterator_panic_does_not_hang() {
        // Regression: a panicking batch iterator used to leak latch
        // increments, making Scope::run wait forever.
        let pool = ThreadPool::new(2);
        let ran = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                let ran = &ran;
                s.spawn_batch((0..10).map(move |i| {
                    if i == 5 {
                        panic!("iterator panic");
                    }
                    move |_: &crate::Scope<'_>| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    }
                }));
            });
        }));
        assert!(result.is_err(), "the panic must propagate");
        // No task ever started: the latch was never incremented.
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn foreground_spawns_preempt_background_tasks() {
        use std::sync::{Arc, Barrier};
        // One worker: queue a gate task to hold the worker, then a
        // background task and a foreground task while it is held. On
        // release the worker must take the foreground job first.
        let pool = ThreadPool::new(1);
        let gate = Arc::new(Barrier::new(2));
        let fg_first = Arc::new(AtomicUsize::new(0));
        let fg_done = Arc::new(AtomicUsize::new(0));
        pool.scope(|s| {
            let g = Arc::clone(&gate);
            s.spawn(move |_| {
                g.wait();
            });
            let fg_done2 = Arc::clone(&fg_done);
            let fg_first2 = Arc::clone(&fg_first);
            s.spawn_background_batch([move |_: &crate::Scope<'_>| {
                // Background job observes whether foreground ran first.
                // Acquire/Release (not SeqCst): a single flag handoff
                // needs no total order across locations.
                fg_first2.store(fg_done2.load(Ordering::Acquire), Ordering::Release);
            }]);
            let fg_done3 = Arc::clone(&fg_done);
            s.spawn(move |_| {
                fg_done3.store(1, Ordering::Release);
            });
            gate.wait();
            // Do NOT help from this thread: helping would race the
            // worker for the jobs. Just wait for completion.
            while !s.completed() {
                s.wait_timeout(std::time::Duration::from_millis(1));
            }
        });
        assert_eq!(
            fg_first.load(Ordering::Acquire),
            1,
            "the foreground spawn must run before the earlier background task"
        );
    }

    #[test]
    fn scope_owner_can_participate_in_the_join() {
        let pool = ThreadPool::new(2);
        let done = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn_batch((0..64).map(|_| {
                |_: &crate::Scope<'_>| {
                    done.fetch_add(1, Ordering::Relaxed);
                }
            }));
            // Owner loop: help until the latch clears, instead of
            // returning and letting Scope::run wait.
            while !s.completed() {
                if !s.help() {
                    s.wait_timeout(std::time::Duration::from_millis(1));
                }
            }
            assert!(s.completed());
        });
        assert_eq!(done.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn body_panic_still_waits_for_tasks() {
        let pool = ThreadPool::new(2);
        let flag = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                let flag = &flag;
                s.spawn(move |_| {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    // Relaxed (not SeqCst): the scope's latch join is the
                    // ordering edge; the counter only needs atomicity.
                    flag.fetch_add(1, Ordering::Relaxed);
                });
                panic!("body panic");
            });
        }));
        assert!(r.is_err());
        // The spawned task must have completed before scope unwound.
        assert_eq!(flag.load(Ordering::Relaxed), 1);
    }
}
