//! Property-based tests for the fork/join pool: parallel combinators must
//! agree with their sequential counterparts for arbitrary inputs and
//! chunkings.

use jstar_pool::{parallel_chunks, parallel_for, parallel_map, parallel_reduce, ThreadPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_reduce_matches_fold(
        data in prop::collection::vec(any::<i32>(), 0..2000),
        chunk in 0usize..100,
        threads in 1usize..6,
    ) {
        let pool = ThreadPool::new(threads);
        let want: i64 = data.iter().map(|&v| v as i64).sum();
        let got = parallel_reduce(
            &pool,
            &data,
            chunk,
            0i64,
            |c| c.iter().map(|&v| v as i64).sum::<i64>(),
            |a, b| a + b,
        );
        prop_assert_eq!(got, want);
    }

    #[test]
    fn parallel_map_preserves_order(
        n in 0usize..500,
        chunk in 0usize..50,
        threads in 1usize..6,
    ) {
        let pool = ThreadPool::new(threads);
        let got = parallel_map(&pool, n, chunk, |i| i * 3 + 1);
        let want: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn parallel_for_visits_each_index_once(
        n in 0usize..800,
        chunk in 0usize..64,
        threads in 1usize..6,
    ) {
        let pool = ThreadPool::new(threads);
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(&pool, 0..n, chunk, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_chunks_concatenate_to_input(
        data in prop::collection::vec(any::<u16>(), 0..600),
        chunk in 1usize..64,
    ) {
        let pool = ThreadPool::new(4);
        let pieces = parallel_chunks(&pool, &data, chunk, |c, _| c.to_vec());
        let flat: Vec<u16> = pieces.into_iter().flatten().collect();
        prop_assert_eq!(flat, data);
    }
}
