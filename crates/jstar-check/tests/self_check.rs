//! Self-tests for the model checker, including the seeded-mutant guard
//! against a vacuously-passing checker: a copy of the reservation
//! claim/publish protocol with one ordering deliberately weakened must be
//! caught, and every failure must replay deterministically from its seed.
#![cfg(feature = "model-check")]

use std::sync::Arc;

use jstar_check::sync::{spin_loop, AtomicU64, Mutex, Ordering, UnsafeCell};
use jstar_check::{thread, Checker};

const EMPTY: u64 = 0;
const RESERVED: u64 = 1;
const PUBLISHED: u64 = 2;

/// A one-slot copy of the reservation claim/publish protocol: CAS the tag
/// EMPTY→RESERVED, write the payload, store the tag PUBLISHED.
struct Slot {
    tag: AtomicU64,
    val: UnsafeCell<u64>,
}

// SAFETY: `val` is only written by the single thread whose CAS won the
// EMPTY→RESERVED claim, and only read by threads that observed
// tag == PUBLISHED; with a Release publish that protocol orders every
// access (which is exactly what the mutant test violates on purpose).
unsafe impl Sync for Slot {}

impl Slot {
    fn new() -> Slot {
        Slot {
            tag: AtomicU64::new(EMPTY),
            val: UnsafeCell::new(0),
        }
    }

    /// Claims and publishes with the given publish ordering — `Release`
    /// is the correct protocol, `Relaxed` is the seeded mutant.
    fn claim_publish(&self, publish: Ordering) -> bool {
        if self
            .tag
            .compare_exchange(EMPTY, RESERVED, Ordering::Acquire, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        self.val.with_mut(|p| {
            // SAFETY: the EMPTY→RESERVED CAS above makes this thread the
            // slot's unique writer until it publishes.
            unsafe { *p = 42 }
        });
        self.tag.store(PUBLISHED, publish);
        true
    }

    /// Spins until published, then reads the payload.
    fn await_value(&self) -> u64 {
        loop {
            if self.tag.load(Ordering::Acquire) == PUBLISHED {
                // SAFETY: the Acquire load of PUBLISHED orders this read
                // after the winner's payload write.
                return self.val.with(|p| unsafe { *p });
            }
            spin_loop();
        }
    }
}

fn claim_scenario(publish: Ordering) -> impl Fn() + Sync {
    move || {
        let slot = Arc::new(Slot::new());
        let s2 = Arc::clone(&slot);
        let writer = thread::spawn(move || {
            assert!(s2.claim_publish(publish));
        });
        assert_eq!(slot.await_value(), 42);
        writer.join();
    }
}

#[test]
fn correct_claim_protocol_passes_exhaustively() {
    let report = Checker::new().check(claim_scenario(Ordering::Release));
    assert!(report.failure.is_none(), "unexpected: {:?}", report.failure);
    assert!(report.complete, "bounded space must be fully explored");
    assert!(
        report.schedules > 1,
        "more than one interleaving must exist"
    );
}

#[test]
fn seeded_mutant_relaxed_publish_is_caught() {
    // The mutant: publishing with Relaxed drops the release edge, so the
    // reader's payload read races the winner's payload write.
    let report = Checker::new().check(claim_scenario(Ordering::Relaxed));
    let failure = report
        .failure
        .expect("the weakened protocol must be caught");
    assert!(
        failure.message.contains("data race"),
        "expected a data-race report, got: {}",
        failure.message
    );
    assert!(
        failure.seed.starts_with("jc1:"),
        "seed must be printable: {}",
        failure.seed
    );
}

#[test]
fn failures_replay_deterministically_from_their_seed() {
    let checker = Checker::new();
    let failure = checker
        .check(claim_scenario(Ordering::Relaxed))
        .failure
        .expect("mutant must fail");
    // Replaying the printed seed must reproduce the same failure.
    for _ in 0..3 {
        let replay = checker.replay(&failure.seed, claim_scenario(Ordering::Relaxed));
        let rf = replay.failure.expect("replay must reproduce the failure");
        assert_eq!(rf.message, failure.message);
    }
}

#[test]
fn exploration_is_deterministic() {
    let a = Checker::new().check(claim_scenario(Ordering::Relaxed));
    let b = Checker::new().check(claim_scenario(Ordering::Relaxed));
    let (fa, fb) = (a.failure.unwrap(), b.failure.unwrap());
    assert_eq!(
        fa.seed, fb.seed,
        "two full explorations must find the same shrunk seed"
    );
    assert_eq!(fa.message, fb.message);
    assert_eq!(a.schedules, b.schedules);
}

#[test]
fn atomic_rmw_is_a_single_indivisible_op() {
    // Two increments through fetch_add can never be lost.
    let report = Checker::new().check(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    assert!(report.failure.is_none(), "unexpected: {:?}", report.failure);
    assert!(report.complete);
}

#[test]
fn unsynchronized_cell_writes_race() {
    let report = Checker::new().check(|| {
        let c = Arc::new(RacyCell(UnsafeCell::new(0u64)));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            c2.0.with_mut(|p| {
                // SAFETY: not actually safe — this is the racy access the
                // checker must flag before the write executes.
                unsafe { *p += 1 }
            });
        });
        c.0.with_mut(|p| {
            // SAFETY: as above; intentionally racy.
            unsafe { *p += 1 }
        });
        t.join();
    });
    let failure = report.failure.expect("unsynchronized writes must race");
    assert!(
        failure.message.contains("data race"),
        "got: {}",
        failure.message
    );
}

struct RacyCell(UnsafeCell<u64>);
// SAFETY: not actually upheld — the test exists to prove the checker
// catches exactly this lie.
unsafe impl Sync for RacyCell {}

#[test]
fn mutex_serialises_plain_data() {
    let report = Checker::new().check(|| {
        let m = Arc::new(Mutex::new(0u64));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            *m2.lock() += 1;
        });
        *m.lock() += 1;
        t.join();
        assert_eq!(*m.lock(), 2);
    });
    assert!(report.failure.is_none(), "unexpected: {:?}", report.failure);
    assert!(report.complete);
}

#[test]
fn lock_order_inversion_deadlocks_are_found() {
    let report = Checker::new().check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join();
    });
    let failure = report
        .failure
        .expect("ABBA locking must deadlock in some schedule");
    assert!(
        failure.message.contains("deadlock"),
        "got: {}",
        failure.message
    );
}
