//! Model threads: `spawn`/`join` with happens-before edges, only usable
//! inside a [`crate::Checker`] execution.

use std::sync::{Arc, Mutex};

use crate::exec::{current, Execution};

/// Handle to a model thread, mirroring `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    exec: Arc<Execution>,
    id: usize,
    result: Arc<Mutex<Option<T>>>,
}

/// Spawns a model thread. The closure runs on a real OS thread, but only
/// when the exploring scheduler hands it the baton; panics outside a
/// model execution.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (exec, me) = current().expect("jstar_check::thread::spawn outside a model execution");
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let result2 = Arc::clone(&result);
    let exec2 = Arc::clone(&exec);
    let id = exec.spawn_thread(me, move |child| {
        std::thread::spawn(move || {
            exec2.bind(child);
            // Park until first scheduled, so no user code runs early.
            exec2.first_activation(child);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let msg = match r {
                Ok(v) => {
                    // Uncontended slot: the owner only reads after join's
                    // happens-before edge.
                    *result2.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
                    None
                }
                Err(p) if Execution::is_abort(p.as_ref()) => None,
                Err(p) => Some(crate::exec::panic_message(p.as_ref())),
            };
            exec2.thread_finished(child, msg.as_deref());
        })
    });
    JoinHandle { exec, id, result }
}

impl<T> JoinHandle<T> {
    /// Blocks (deschedules) until the thread finishes, then returns its
    /// value. Unlike `std`, a child panic aborts the whole model
    /// execution rather than surfacing here.
    pub fn join(self) -> T {
        // The joiner is whichever model thread calls join, not
        // necessarily the spawner.
        let (_, me) = current().expect("join outside a model execution");
        self.exec.join_thread(me, self.id);
        self.result
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .expect("joined model thread left no result (panicked)")
    }
}
