//! jstar-check: a concurrency shim plus a bounded model checker for the
//! JStar lock-free kernels.
//!
//! The workspace's hot concurrent code (`gamma/reservation.rs`, the
//! `SwappableTable` pointer swap, `ShardedInbox::swap_epoch`, the
//! `jstar-pool` scope-completion latch, the disruptor ring cursors) imports
//! its synchronisation primitives from [`sync`] instead of `std::sync` /
//! `parking_lot`. In a normal build every item in [`sync`] is a zero-cost
//! re-export (or a `#[repr(transparent)]` wrapper with `#[inline(always)]`
//! accessors) of the real type — the shim compiles away entirely.
//!
//! With `--features model-check` the same imports resolve to instrumented
//! types that route every load, store, RMW, lock and plain-cell access
//! through a deterministic exploring scheduler:
//!
//! * **Exhaustive bounded search.** `Checker::check` runs the test closure
//!   repeatedly, enumerating thread interleavings by depth-first search over
//!   scheduling decisions. Preemptions (descheduling a runnable thread that
//!   did not yield) are bounded, CHESS-style, which keeps small protocols
//!   exhaustively explorable while still covering the interleavings that
//!   expose real races.
//! * **Data-race detection.** Every instrumented location carries vector
//!   clocks; plain `UnsafeCell` accesses are checked FastTrack-style against
//!   the happens-before order established by the atomics, mutexes and
//!   spawn/join edges. A racy pair is reported with both source locations.
//! * **Deterministic replay.** Every failure prints a seed (`jc1:<digits>`)
//!   encoding the schedule; `Checker::replay` re-executes exactly that
//!   interleaving. Failing schedules are greedily shrunk before reporting.
//!
//! The model explores sequentially-consistent executions and reports
//! (a) assertion failures / panics, (b) data races on plain memory,
//! (c) deadlocks, and (d) livelocks (op-budget exhaustion). Weak-memory
//! value speculation (reading stale values allowed by C11 but not by any
//! SC interleaving) is out of scope; ordering mistakes on the *publish*
//! side still surface as data races because release/acquire edges are what
//! build the happens-before order the race detector checks.
//!
//! Guarantees relied on by the kernels:
//!
//! * All shim types are valid when zero-initialised (`loc == 0` simply means
//!   "not yet registered with an execution"), so `alloc_zeroed` payload
//!   arrays keep working under the model.
//! * Outside a model context (no active `Checker` execution on the current
//!   thread) the instrumented types fall back to the real primitive with the
//!   caller's orderings, so a whole test suite can be compiled with
//!   `model-check` on and only the `model_*` tests pay for instrumentation.

pub mod sync;

#[cfg(feature = "model-check")]
mod clock;
#[cfg(feature = "model-check")]
mod exec;
#[cfg(feature = "model-check")]
mod explore;
#[cfg(feature = "model-check")]
pub mod thread;

#[cfg(feature = "model-check")]
pub use explore::{model, Checker, Failure, Report};
