//! Instrumented variant of the shim. Every type carries a lazily
//! registered location id (`loc == 0` ⇒ unregistered, so all-zero memory
//! stays valid) and routes accesses through the current execution; with
//! no execution bound to the thread it falls back to the real operation,
//! so non-model tests still run correctly with the feature enabled.

use std::panic::Location;
use std::sync::atomic::AtomicUsize as StdAtomicUsize;
use std::sync::atomic::Ordering as StdOrdering;

pub use std::sync::atomic::Ordering;

use crate::exec::{current, AtomicKind};

/// See [`std::sync::atomic::fence`].
#[track_caller]
pub fn fence(order: Ordering) {
    match current() {
        Some((e, me)) => e.fence(me, order),
        None => std::sync::atomic::fence(order),
    }
}

/// Spin-wait hint: a voluntary-yield schedule point under the model.
#[track_caller]
pub fn spin_loop() {
    match current() {
        Some((e, me)) => e.yield_op(me),
        None => std::hint::spin_loop(),
    }
}

/// Yield hint: a voluntary-yield schedule point under the model.
#[track_caller]
pub fn yield_now() {
    match current() {
        Some((e, me)) => e.yield_op(me),
        None => std::thread::yield_now(),
    }
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ident, $prim:ty) => {
        $(#[$doc])*
        pub struct $name {
            v: std::sync::atomic::$std,
            loc: StdAtomicUsize,
        }

        impl $name {
            pub const fn new(v: $prim) -> $name {
                $name { v: std::sync::atomic::$std::new(v), loc: StdAtomicUsize::new(0) }
            }

            #[track_caller]
            pub fn load(&self, order: Ordering) -> $prim {
                match current() {
                    Some((e, me)) => e.atomic_op(me, &self.loc, || {
                        (self.v.load(StdOrdering::Relaxed), AtomicKind::Load(order))
                    }),
                    None => self.v.load(order),
                }
            }

            #[track_caller]
            pub fn store(&self, val: $prim, order: Ordering) {
                match current() {
                    Some((e, me)) => e.atomic_op(me, &self.loc, || {
                        self.v.store(val, StdOrdering::Relaxed);
                        ((), AtomicKind::Store(order))
                    }),
                    None => self.v.store(val, order),
                }
            }

            #[track_caller]
            pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                match current() {
                    Some((e, me)) => e.atomic_op(me, &self.loc, || {
                        (self.v.swap(val, StdOrdering::Relaxed), AtomicKind::Rmw(order))
                    }),
                    None => self.v.swap(val, order),
                }
            }

            #[track_caller]
            pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                match current() {
                    Some((e, me)) => e.atomic_op(me, &self.loc, || {
                        (self.v.fetch_add(val, StdOrdering::Relaxed), AtomicKind::Rmw(order))
                    }),
                    None => self.v.fetch_add(val, order),
                }
            }

            #[track_caller]
            pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                match current() {
                    Some((e, me)) => e.atomic_op(me, &self.loc, || {
                        (self.v.fetch_sub(val, StdOrdering::Relaxed), AtomicKind::Rmw(order))
                    }),
                    None => self.v.fetch_sub(val, order),
                }
            }

            #[track_caller]
            pub fn compare_exchange(
                &self,
                currentv: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match current() {
                    Some((e, me)) => e.atomic_op(me, &self.loc, || {
                        let r = self.v.compare_exchange(
                            currentv,
                            new,
                            StdOrdering::Relaxed,
                            StdOrdering::Relaxed,
                        );
                        let kind = match r {
                            Ok(_) => AtomicKind::Rmw(success),
                            // A failed CAS is a load with the failure ordering.
                            Err(_) => AtomicKind::Load(failure),
                        };
                        (r, kind)
                    }),
                    None => self.v.compare_exchange(currentv, new, success, failure),
                }
            }

            /// Modelled as the strong variant: the model's serialised
            /// executions have no spurious failures to explore.
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                currentv: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(currentv, new, success, failure)
            }

            pub fn get_mut(&mut self) -> &mut $prim {
                self.v.get_mut()
            }

            pub fn into_inner(self) -> $prim {
                self.v.into_inner()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.v.load(StdOrdering::Relaxed))
                    .finish()
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(Default::default())
            }
        }
    };
}

int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicUsize`].
    AtomicUsize, AtomicUsize, usize
);
int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicU64`].
    AtomicU64, AtomicU64, u64
);
int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicI64`].
    AtomicI64, AtomicI64, i64
);

/// Instrumented [`std::sync::atomic::AtomicBool`]. Hand-written (the
/// integer macro leans on `fetch_add`/`fetch_sub`, which bools lack) with
/// the operations the kernels use: load/store/swap.
pub struct AtomicBool {
    v: std::sync::atomic::AtomicBool,
    loc: StdAtomicUsize,
}

impl AtomicBool {
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            v: std::sync::atomic::AtomicBool::new(v),
            loc: StdAtomicUsize::new(0),
        }
    }

    #[track_caller]
    pub fn load(&self, order: Ordering) -> bool {
        match current() {
            Some((e, me)) => e.atomic_op(me, &self.loc, || {
                (self.v.load(StdOrdering::Relaxed), AtomicKind::Load(order))
            }),
            None => self.v.load(order),
        }
    }

    #[track_caller]
    pub fn store(&self, val: bool, order: Ordering) {
        match current() {
            Some((e, me)) => e.atomic_op(me, &self.loc, || {
                self.v.store(val, StdOrdering::Relaxed);
                ((), AtomicKind::Store(order))
            }),
            None => self.v.store(val, order),
        }
    }

    #[track_caller]
    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        match current() {
            Some((e, me)) => e.atomic_op(me, &self.loc, || {
                (
                    self.v.swap(val, StdOrdering::Relaxed),
                    AtomicKind::Rmw(order),
                )
            }),
            None => self.v.swap(val, order),
        }
    }

    pub fn get_mut(&mut self) -> &mut bool {
        self.v.get_mut()
    }

    pub fn into_inner(self) -> bool {
        self.v.into_inner()
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.v.load(StdOrdering::Relaxed))
            .finish()
    }
}

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

/// Instrumented [`std::sync::atomic::AtomicPtr`].
pub struct AtomicPtr<T> {
    v: std::sync::atomic::AtomicPtr<T>,
    loc: StdAtomicUsize,
}

impl<T> AtomicPtr<T> {
    pub const fn new(p: *mut T) -> AtomicPtr<T> {
        AtomicPtr {
            v: std::sync::atomic::AtomicPtr::new(p),
            loc: StdAtomicUsize::new(0),
        }
    }

    #[track_caller]
    pub fn load(&self, order: Ordering) -> *mut T {
        match current() {
            Some((e, me)) => e.atomic_op(me, &self.loc, || {
                (self.v.load(StdOrdering::Relaxed), AtomicKind::Load(order))
            }),
            None => self.v.load(order),
        }
    }

    #[track_caller]
    pub fn store(&self, p: *mut T, order: Ordering) {
        match current() {
            Some((e, me)) => e.atomic_op(me, &self.loc, || {
                self.v.store(p, StdOrdering::Relaxed);
                ((), AtomicKind::Store(order))
            }),
            None => self.v.store(p, order),
        }
    }

    #[track_caller]
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        match current() {
            Some((e, me)) => e.atomic_op(me, &self.loc, || {
                (self.v.swap(p, StdOrdering::Relaxed), AtomicKind::Rmw(order))
            }),
            None => self.v.swap(p, order),
        }
    }

    #[track_caller]
    pub fn compare_exchange(
        &self,
        currentv: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        match current() {
            Some((e, me)) => e.atomic_op(me, &self.loc, || {
                let r = self.v.compare_exchange(
                    currentv,
                    new,
                    StdOrdering::Relaxed,
                    StdOrdering::Relaxed,
                );
                let kind = match r {
                    Ok(_) => AtomicKind::Rmw(success),
                    Err(_) => AtomicKind::Load(failure),
                };
                (r, kind)
            }),
            None => self.v.compare_exchange(currentv, new, success, failure),
        }
    }

    pub fn get_mut(&mut self) -> &mut *mut T {
        self.v.get_mut()
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicPtr")
            .field(&self.v.load(StdOrdering::Relaxed))
            .finish()
    }
}

/// Instrumented plain-memory cell: accesses are race-checked against the
/// happens-before order when a model execution is active.
pub struct UnsafeCell<T: ?Sized> {
    loc: StdAtomicUsize,
    v: std::cell::UnsafeCell<T>,
}

impl<T> UnsafeCell<T> {
    pub const fn new(value: T) -> UnsafeCell<T> {
        UnsafeCell {
            loc: StdAtomicUsize::new(0),
            v: std::cell::UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.v.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    /// Shared access, recorded as a read of this location. The closure
    /// runs under the execution lock and must not call back into the
    /// shim (the kernels' closures are single dereferences).
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        match current() {
            Some((e, me)) => {
                e.cell_op(me, &self.loc, false, Location::caller(), || f(self.v.get()))
            }
            None => f(self.v.get()),
        }
    }

    /// Exclusive access, recorded as a write of this location.
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        match current() {
            Some((e, me)) => e.cell_op(me, &self.loc, true, Location::caller(), || f(self.v.get())),
            None => f(self.v.get()),
        }
    }

    /// Statically-exclusive access: `&mut self` proves no concurrency,
    /// so this is never a schedule point (mirrors loom).
    pub fn get_mut(&mut self) -> &mut T {
        self.v.get_mut()
    }
}

// SAFETY: mirrors std's UnsafeCell — Send when T is Send. The extra `loc`
// word is an ordinary atomic. Sync is left to the containing type's own
// `unsafe impl`, exactly as with the real cell.
unsafe impl<T: ?Sized + Send> Send for UnsafeCell<T> {}

/// A `Box<[AtomicU64]>` of zeros; element-wise under the model because
/// the instrumented atomic is wider than a `u64` (see the real variant
/// for the production fast path).
pub fn zeroed_atomic_u64_slice(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

/// Instrumented mutex with the `parking_lot` API surface the kernels
/// use. Inside a model execution the lock is purely logical (held-by
/// state in the scheduler; contended lockers are descheduled); outside
/// one it falls back to a real `std` mutex guarding the same data.
pub struct Mutex<T: ?Sized> {
    loc: StdAtomicUsize,
    raw: std::sync::Mutex<()>,
    v: std::cell::UnsafeCell<T>,
}

// SAFETY: standard mutex bounds — the lock serialises all access to the
// cell, in-model via the scheduler's held-by state, out-of-model via
// `raw`, so sharing requires only T: Send.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: as above; `&Mutex<T>` only yields `&T`/`&mut T` under the lock.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// RAII guard for [`Mutex`]. `raw` is Some outside a model execution.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    raw: Option<std::sync::MutexGuard<'a, ()>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            loc: StdAtomicUsize::new(0),
            raw: std::sync::Mutex::new(()),
            v: std::cell::UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.v.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match current() {
            Some((e, me)) => {
                e.mutex_lock(me, &self.loc);
                MutexGuard {
                    lock: self,
                    raw: None,
                }
            }
            None => MutexGuard {
                lock: self,
                raw: Some(self.raw.lock().unwrap_or_else(|p| p.into_inner())),
            },
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.v.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves the lock is held (logically in-model,
        // via `raw` otherwise), so no other thread accesses the cell.
        unsafe { &*self.lock.v.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in Deref, plus the guard is unique per lock tenure.
        unsafe { &mut *self.lock.v.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.raw.is_none() {
            if let Some((e, me)) = current() {
                e.mutex_unlock(me, &self.lock.loc);
            }
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Avoid taking the (possibly model) lock inside Debug.
        f.write_str("Mutex { .. }")
    }
}

/// Result of [`Condvar::wait_for`], mirroring `parking_lot`.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Instrumented condvar. In-model a wait is release-yield-reacquire —
/// i.e. it behaves like a spurious wakeup, which is sound for all users
/// because condvar waits sit in re-check loops; notifications carry no
/// extra ordering beyond the mutex.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    #[track_caller]
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        match current() {
            Some((e, me)) => {
                e.mutex_unlock(me, &guard.lock.loc);
                e.yield_op(me);
                e.mutex_lock(me, &guard.lock.loc);
            }
            None => {
                let raw = guard
                    .raw
                    .take()
                    .expect("real condvar wait without raw guard");
                let raw = self.inner.wait(raw).unwrap_or_else(|p| p.into_inner());
                guard.raw = Some(raw);
            }
        }
    }

    #[track_caller]
    pub fn wait_for<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        dur: std::time::Duration,
    ) -> WaitTimeoutResult {
        match current() {
            Some((e, me)) => {
                e.mutex_unlock(me, &guard.lock.loc);
                e.yield_op(me);
                e.mutex_lock(me, &guard.lock.loc);
                // Timeouts are not modelled; report "timed out" so
                // callers re-check their predicate.
                WaitTimeoutResult(true)
            }
            None => {
                let raw = guard
                    .raw
                    .take()
                    .expect("real condvar wait without raw guard");
                let (raw, r) = match self.inner.wait_timeout(raw, dur) {
                    Ok((g, r)) => (g, r.timed_out()),
                    Err(p) => {
                        let (g, r) = p.into_inner();
                        (g, r.timed_out())
                    }
                };
                guard.raw = Some(raw);
                WaitTimeoutResult(r)
            }
        }
    }

    pub fn notify_one(&self) {
        if current().is_none() {
            self.inner.notify_one();
        }
        // In-model: waits are spurious-wakeup loops, nothing to signal.
    }

    pub fn notify_all(&self) {
        if current().is_none() {
            self.inner.notify_all();
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}
