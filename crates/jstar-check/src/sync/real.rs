//! Production variant of the shim: straight re-exports plus transparent
//! wrappers that compile to nothing.

pub use std::sync::atomic::{
    fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Ordering,
};

pub use parking_lot::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

/// See [`std::hint::spin_loop`]; a model schedule point under `model-check`.
#[inline(always)]
pub fn spin_loop() {
    std::hint::spin_loop();
}

/// See [`std::thread::yield_now`]; a model schedule point under `model-check`.
#[inline(always)]
pub fn yield_now() {
    std::thread::yield_now();
}

/// `std::cell::UnsafeCell` behind a closure-based API so that, under
/// `model-check`, every access can be attributed to a thread and
/// race-checked. Here it is a `#[repr(transparent)]` wrapper and every
/// method is `#[inline(always)]` — identical codegen to the raw cell.
#[repr(transparent)]
pub struct UnsafeCell<T: ?Sized>(std::cell::UnsafeCell<T>);

impl<T> UnsafeCell<T> {
    #[inline(always)]
    pub const fn new(value: T) -> UnsafeCell<T> {
        UnsafeCell(std::cell::UnsafeCell::new(value))
    }

    #[inline(always)]
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    /// Shared access: hands the closure a `*const T` valid for the call.
    /// The caller's protocol (not this wrapper) must ensure no concurrent
    /// mutation; under `model-check` that claim is verified.
    #[inline(always)]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    /// Exclusive access: hands the closure a `*mut T` valid for the call.
    #[inline(always)]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }

    /// Statically-exclusive access (`&mut self`): never a schedule point.
    #[inline(always)]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }
}

// SAFETY: same bounds as std's UnsafeCell — Send when T is, never Sync on
// its own; callers opt into sharing via their own `unsafe impl Sync` with
// a protocol argument (which `model-check` then verifies dynamically).
unsafe impl<T: ?Sized + Send> Send for UnsafeCell<T> {}

/// A `Box<[AtomicU64]>` of zeros. With the feature off this is a single
/// `alloc_zeroed` (`vec![0u64; n]`) reinterpreted in place — the fast
/// path the reservation table's tag/journal arrays depend on; the model
/// variant initialises element-wise because its atomics are wider.
pub fn zeroed_atomic_u64_slice(n: usize) -> Box<[AtomicU64]> {
    let plain: Box<[u64]> = vec![0u64; n].into_boxed_slice();
    // SAFETY: AtomicU64 has the same size and alignment as u64 and any
    // bit pattern (zero included) is a valid AtomicU64, so the slice may
    // be reinterpreted in place; Box ownership transfers via the raw
    // pointer round-trip without double-free.
    unsafe { Box::from_raw(Box::into_raw(plain) as *mut [AtomicU64]) }
}
