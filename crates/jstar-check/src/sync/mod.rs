//! The `jstar_sync` shim: the one import surface for synchronisation in
//! the workspace's lock-free kernels.
//!
//! Kernels write `use jstar_check::sync::{AtomicU64, Ordering, Mutex, ...}`
//! instead of importing from `std::sync::atomic` / `parking_lot`. Without
//! the `model-check` feature everything here is the real type (or a
//! transparent, fully-inlined wrapper) — zero cost. With the feature, the
//! same names resolve to instrumented types checked by `crate::Checker`.
//!
//! Contract relied on by callers (both variants uphold it):
//!
//! * every type here is valid when its memory is all-zero bits (so
//!   `alloc_zeroed` arrays of shim atomics/cells are sound to use);
//! * [`UnsafeCell`] exposes plain data only through [`UnsafeCell::with`] /
//!   [`UnsafeCell::with_mut`] / [`UnsafeCell::get_mut`], which is what lets
//!   the model attribute every access to a thread and race-check it;
//! * spin/backoff loops call [`spin_loop`] / [`yield_now`] from here, so
//!   the model can deschedule spinners instead of diverging.

#[cfg(not(feature = "model-check"))]
mod real;
#[cfg(not(feature = "model-check"))]
pub use real::*;

#[cfg(feature = "model-check")]
mod model;
#[cfg(feature = "model-check")]
pub use model::*;
