//! One model execution: real OS threads serialised by a baton, a decision
//! tape recording every scheduling choice, and vector-clock race detection.
//!
//! Exactly one model thread runs at a time. Every instrumented operation is
//! a *scheduling point*: the active thread performs the operation's memory
//! effect while holding the execution lock, then picks (or replays) the
//! thread that executes the next operation and hands the baton over. The
//! sequence of choices forms a tape the explorer backtracks over; forcing a
//! recorded tape replays an interleaving exactly.

use std::cell::RefCell;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::{VClock, MAX_THREADS};

/// Panic payload used to unwind model threads once the execution has
/// failed or finished early; thread wrappers swallow it.
pub(crate) struct Abort;

/// `active` value meaning "no thread holds the baton" (execution over or
/// aborting). All waiters wake, observe it, and unwind.
const NOBODY: usize = usize::MAX;

/// One scheduling decision: which threads were runnable (in canonical
/// order, default choice first) and which one was picked.
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    pub allowed: Vec<usize>,
    pub chosen: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Ready,
    /// Waiting for a model mutex (by location id) to be released.
    BlockedMutex(usize),
    /// Waiting for a model thread to finish.
    BlockedJoin(usize),
    Finished,
}

struct ThreadSlot {
    run: Run,
    clock: VClock,
    /// Clock published by the last `Release` (or stronger) fence.
    rel_fence: VClock,
    /// Acquire-pending clock from `Relaxed` loads, folded in at the next
    /// `Acquire` fence.
    acq_pending: VClock,
}

impl ThreadSlot {
    fn new(clock: VClock) -> ThreadSlot {
        ThreadSlot {
            run: Run::Ready,
            clock,
            rel_fence: VClock::zero(),
            acq_pending: VClock::zero(),
        }
    }
}

type Site = &'static Location<'static>;

enum Loc {
    /// An atomic location: the clock released into it by writers.
    Atomic { sync: VClock },
    /// A plain `UnsafeCell` location, checked FastTrack-style: the last
    /// write as an epoch, reads as a full clock.
    Cell {
        write: (usize, u32),
        write_site: Option<Site>,
        read: VClock,
        read_sites: [Option<Site>; MAX_THREADS],
    },
    /// A model mutex: logical hold state plus the clock released by the
    /// last unlock.
    Mutex {
        held_by: Option<usize>,
        sync: VClock,
    },
}

enum LocKind {
    Atomic,
    Cell,
    Mutex,
}

impl LocKind {
    fn fresh(&self) -> Loc {
        match self {
            LocKind::Atomic => Loc::Atomic {
                sync: VClock::zero(),
            },
            LocKind::Cell => Loc::Cell {
                write: (0, 0),
                write_site: None,
                read: VClock::zero(),
                read_sites: [None; MAX_THREADS],
            },
            LocKind::Mutex => Loc::Mutex {
                held_by: None,
                sync: VClock::zero(),
            },
        }
    }
}

/// Which clock edges an atomic access induces. CAS performs the op under
/// the execution lock and then reports whether the success or the failure
/// ordering applies.
pub(crate) enum AtomicKind {
    Load(StdOrdering),
    Store(StdOrdering),
    Rmw(StdOrdering),
}

pub(crate) struct Cfg {
    pub preemption_bound: usize,
    pub max_ops: usize,
}

struct St {
    threads: Vec<ThreadSlot>,
    active: usize,
    /// Replay prefix: decision i must choose `forced[i]`.
    forced: Vec<usize>,
    decisions: Vec<Decision>,
    preemptions: usize,
    ops: usize,
    locs: Vec<Loc>,
    failure: Option<String>,
    aborting: bool,
    finished: usize,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Execution {
    m: Mutex<St>,
    cv: Condvar,
    cfg: Cfg,
    /// Distinguishes this execution's location registrations from stale
    /// ids left in objects that outlived a previous execution.
    nonce: u64,
}

pub(crate) struct Outcome {
    pub decisions: Vec<Decision>,
    pub failure: Option<String>,
    pub preemptions: usize,
}

static EXEC_NONCE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The execution and model-thread id bound to the current OS thread, if
/// any. Shim primitives fall back to the real operation when this is None.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

impl Execution {
    pub(crate) fn new(cfg: Cfg, forced: Vec<usize>) -> Arc<Execution> {
        let mut threads = Vec::new();
        let mut main = ThreadSlot::new(VClock::zero());
        main.clock.tick(0);
        threads.push(main);
        Arc::new(Execution {
            m: Mutex::new(St {
                threads,
                active: 0,
                forced,
                decisions: Vec::new(),
                preemptions: 0,
                ops: 0,
                locs: Vec::new(),
                failure: None,
                aborting: false,
                finished: 0,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
            cfg,
            nonce: EXEC_NONCE.fetch_add(1, StdOrdering::Relaxed) & 0xffff_ffff,
        })
    }

    /// Binds the calling (harness) thread as model thread 0.
    pub(crate) fn bind_main(self: &Arc<Self>) {
        set_current(Some((Arc::clone(self), 0)));
    }

    fn lock(&self) -> MutexGuard<'_, St> {
        // A model thread can panic (test assertion) while holding the
        // execution lock only across user action closures; those are
        // documented not to re-enter the shim, and a panic there poisons
        // the lock. Recover: the poison flag carries no protocol meaning
        // here because the panicking thread records its failure afterwards.
        match self.m.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Waits until `me` holds the baton; panics with [`Abort`] if the
    /// execution is tearing down.
    fn acquire_baton<'a>(&'a self, me: usize, mut st: MutexGuard<'a, St>) -> MutexGuard<'a, St> {
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.active == me {
                return st;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Registers (or re-finds) the model location backing a shim object.
    /// `slot` lives inside the object; 0 means unregistered. Nonzero
    /// values pack `(nonce << 32) | (id + 1)` so objects surviving from a
    /// previous execution re-register instead of aliasing a stale id.
    fn loc_id(&self, st: &mut St, slot: &StdAtomicUsize, kind: LocKind) -> usize {
        let v = slot.load(StdOrdering::Relaxed);
        if v != 0 && (v as u64 >> 32) == self.nonce {
            let id = (v & 0xffff_ffff) - 1;
            if id < st.locs.len() {
                return id;
            }
        }
        st.locs.push(kind.fresh());
        let id = st.locs.len() - 1;
        slot.store(
            ((self.nonce << 32) | (id as u64 + 1)) as usize,
            StdOrdering::Relaxed,
        );
        id
    }

    fn fail(&self, st: &mut St, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.aborting = true;
        st.active = NOBODY;
        self.cv.notify_all();
    }

    fn charge_op(&self, st: &mut St) -> bool {
        st.ops += 1;
        if st.ops > self.cfg.max_ops {
            self.fail(
                st,
                format!(
                    "op budget exceeded ({} ops): livelock or unbounded spin under the model \
                     (spin loops must call jstar_check::sync::spin_loop/yield_now)",
                    self.cfg.max_ops
                ),
            );
            return false;
        }
        true
    }

    /// Makes the scheduling decision after `me` executed an op.
    /// `yielded` marks a voluntary deschedule (spin hint): moving off the
    /// thread is then mandatory if possible and never counts as a
    /// preemption.
    fn pick_next(&self, st: &mut St, me: usize, yielded: bool) {
        if st.aborting {
            return;
        }
        let ready: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t].run == Run::Ready)
            .collect();
        if ready.is_empty() {
            if st.finished == st.threads.len() {
                st.active = NOBODY;
                self.cv.notify_all();
            } else {
                let blocked: Vec<String> = (0..st.threads.len())
                    .filter_map(|t| match st.threads[t].run {
                        Run::BlockedMutex(l) => Some(format!("thread {t} waits on mutex #{l}")),
                        Run::BlockedJoin(j) => Some(format!("thread {t} joins thread {j}")),
                        _ => None,
                    })
                    .collect();
                self.fail(st, format!("deadlock: {}", blocked.join(", ")));
            }
            return;
        }
        let me_ready = st
            .threads
            .get(me)
            .map(|s| s.run == Run::Ready)
            .unwrap_or(false);
        let allowed: Vec<usize> = if me_ready && !yielded {
            // Staying on `me` is the default; switching preempts.
            let mut v = vec![me];
            if st.preemptions < self.cfg.preemption_bound {
                v.extend(ready.iter().copied().filter(|&t| t != me));
            }
            v
        } else if me_ready {
            // Voluntary yield: must move if anyone else can run.
            let others: Vec<usize> = ready.iter().copied().filter(|&t| t != me).collect();
            if others.is_empty() {
                vec![me]
            } else {
                others
            }
        } else {
            // `me` blocked or finished: a switch is forced and free.
            ready
        };

        let idx = st.decisions.len();
        let chosen = if idx < st.forced.len() {
            let want = st.forced[idx];
            if allowed.contains(&want) {
                want
            } else {
                self.fail(
                    st,
                    format!(
                        "replay divergence at decision {idx}: seed chose thread {want}, \
                         allowed {allowed:?} (code or seed changed since the failure was recorded)"
                    ),
                );
                return;
            }
        } else {
            allowed[0]
        };
        st.decisions.push(Decision {
            allowed: allowed.clone(),
            chosen,
        });
        if chosen != me && me_ready && !yielded {
            st.preemptions += 1;
        }
        st.active = chosen;
        self.cv.notify_all();
    }

    // ----- clock edges -------------------------------------------------

    fn acquire_edge(st: &mut St, me: usize, loc: usize, ord: StdOrdering) {
        let sync = match &st.locs[loc] {
            Loc::Atomic { sync } => *sync,
            _ => unreachable!("atomic edge on non-atomic location"),
        };
        let slot = &mut st.threads[me];
        match ord {
            StdOrdering::Acquire | StdOrdering::AcqRel | StdOrdering::SeqCst => {
                slot.clock.join(&sync)
            }
            // A relaxed read still carries the clock to a later Acquire fence.
            _ => slot.acq_pending.join(&sync),
        }
    }

    fn release_clock(st: &St, me: usize, ord: StdOrdering) -> VClock {
        let slot = &st.threads[me];
        match ord {
            StdOrdering::Release | StdOrdering::AcqRel | StdOrdering::SeqCst => slot.clock,
            // Relaxed/Acquire store: only a preceding Release fence publishes.
            _ => slot.rel_fence,
        }
    }

    // ----- instrumented operations ------------------------------------

    /// An atomic access: the action performs the real (serialised) memory
    /// operation and reports which ordering semantics apply.
    pub(crate) fn atomic_op<R>(
        &self,
        me: usize,
        slot: &StdAtomicUsize,
        action: impl FnOnce() -> (R, AtomicKind),
    ) -> R {
        let mut st = self.acquire_baton(me, self.lock());
        if !self.charge_op(&mut st) {
            drop(st);
            std::panic::panic_any(Abort);
        }
        let loc = self.loc_id(&mut st, slot, LocKind::Atomic);
        let (r, kind) = action();
        match kind {
            AtomicKind::Load(ord) => Self::acquire_edge(&mut st, me, loc, ord),
            AtomicKind::Store(ord) => {
                let rel = Self::release_clock(&st, me, ord);
                // A plain store *replaces* the location clock: later readers
                // synchronise only with this write, not with earlier ones.
                match &mut st.locs[loc] {
                    Loc::Atomic { sync } => *sync = rel,
                    _ => unreachable!(),
                }
            }
            AtomicKind::Rmw(ord) => {
                Self::acquire_edge(&mut st, me, loc, ord);
                let rel = Self::release_clock(&st, me, ord);
                // RMWs join: they extend the release sequence of the
                // previous write, so earlier release edges survive.
                match &mut st.locs[loc] {
                    Loc::Atomic { sync } => sync.join(&rel),
                    _ => unreachable!(),
                }
            }
        }
        st.threads[me].clock.tick(me);
        self.pick_next(&mut st, me, false);
        r
    }

    pub(crate) fn fence(&self, me: usize, ord: StdOrdering) {
        let mut st = self.acquire_baton(me, self.lock());
        if !self.charge_op(&mut st) {
            drop(st);
            std::panic::panic_any(Abort);
        }
        let slot = &mut st.threads[me];
        match ord {
            StdOrdering::Acquire => {
                let p = slot.acq_pending;
                slot.clock.join(&p);
            }
            StdOrdering::Release => slot.rel_fence = slot.clock,
            _ => {
                let p = slot.acq_pending;
                slot.clock.join(&p);
                slot.rel_fence = slot.clock;
            }
        }
        st.threads[me].clock.tick(me);
        self.pick_next(&mut st, me, false);
    }

    /// A plain-memory access through the shim `UnsafeCell`. The action
    /// (the caller's closure over the raw pointer) runs under the
    /// execution lock so no other model thread can touch the cell while
    /// it reads/writes; race checking is what makes overlap impossible
    /// in the modelled program rather than just in the model.
    pub(crate) fn cell_op<R>(
        &self,
        me: usize,
        slot: &StdAtomicUsize,
        write: bool,
        site: Site,
        action: impl FnOnce() -> R,
    ) -> R {
        let mut st = self.acquire_baton(me, self.lock());
        if !self.charge_op(&mut st) {
            drop(st);
            std::panic::panic_any(Abort);
        }
        let loc = self.loc_id(&mut st, slot, LocKind::Cell);
        let me_clock = st.threads[me].clock;
        let mut race: Option<String> = None;
        match &mut st.locs[loc] {
            Loc::Cell {
                write: w,
                write_site,
                read,
                read_sites,
            } => {
                let (wt, wc) = *w;
                if wc > me_clock.get(wt) {
                    race = Some(format!(
                        "data race: write at {} not ordered before {} at {}",
                        fmt_site(*write_site),
                        if write { "write" } else { "read" },
                        site,
                    ));
                } else if write {
                    for u in 0..MAX_THREADS {
                        if read.get(u) > me_clock.get(u) {
                            race = Some(format!(
                                "data race: read at {} not ordered before write at {}",
                                fmt_site(read_sites[u]),
                                site,
                            ));
                            break;
                        }
                    }
                }
                if race.is_none() {
                    if write {
                        *w = (me, me_clock.get(me));
                        *write_site = Some(site);
                    } else {
                        read.join(&VClock::single(me, me_clock.get(me)));
                        read_sites[me] = Some(site);
                    }
                }
            }
            _ => unreachable!("cell edge on non-cell location"),
        }
        if let Some(msg) = race {
            self.fail(&mut st, msg);
            drop(st);
            std::panic::panic_any(Abort);
        }
        let r = action();
        st.threads[me].clock.tick(me);
        self.pick_next(&mut st, me, false);
        r
    }

    /// A spin/yield hint: forces the scheduler off this thread when any
    /// other thread is runnable (loom's treatment of spin loops — without
    /// it DFS's stay-on-me default would spin forever).
    pub(crate) fn yield_op(&self, me: usize) {
        let mut st = self.acquire_baton(me, self.lock());
        if !self.charge_op(&mut st) {
            drop(st);
            std::panic::panic_any(Abort);
        }
        st.threads[me].clock.tick(me);
        self.pick_next(&mut st, me, true);
    }

    // ----- mutex -------------------------------------------------------

    pub(crate) fn mutex_lock(&self, me: usize, slot: &StdAtomicUsize) {
        let mut st = self.acquire_baton(me, self.lock());
        loop {
            if !self.charge_op(&mut st) {
                drop(st);
                std::panic::panic_any(Abort);
            }
            let loc = self.loc_id(&mut st, slot, LocKind::Mutex);
            let held = match &st.locs[loc] {
                Loc::Mutex { held_by, .. } => *held_by,
                _ => unreachable!(),
            };
            match held {
                None => {
                    match &mut st.locs[loc] {
                        Loc::Mutex { held_by, sync } => {
                            *held_by = Some(me);
                            let sync = *sync;
                            st.threads[me].clock.join(&sync);
                        }
                        _ => unreachable!(),
                    }
                    st.threads[me].clock.tick(me);
                    self.pick_next(&mut st, me, false);
                    return;
                }
                Some(owner) => {
                    if owner == me {
                        self.fail(&mut st, "recursive model-mutex lock (self-deadlock)".into());
                        drop(st);
                        std::panic::panic_any(Abort);
                    }
                    st.threads[me].run = Run::BlockedMutex(loc);
                    self.pick_next(&mut st, me, false);
                    // Re-woken when the holder unlocks; retry the acquire.
                    st = self.acquire_baton(me, st);
                }
            }
        }
    }

    /// Never panics: unlock runs from `MutexGuard::drop`, possibly while
    /// unwinding (user assertion failure or the abort sentinel itself) —
    /// a second panic there would abort the whole test process.
    pub(crate) fn mutex_unlock(&self, me: usize, slot: &StdAtomicUsize) {
        let mut st = self.lock();
        while !st.aborting && st.active != me {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        if st.aborting {
            return;
        }
        if !self.charge_op(&mut st) {
            // Budget failure: charge_op already flagged the abort.
            return;
        }
        let loc = self.loc_id(&mut st, slot, LocKind::Mutex);
        let me_clock = st.threads[me].clock;
        match &mut st.locs[loc] {
            Loc::Mutex { held_by, sync } => {
                debug_assert_eq!(*held_by, Some(me), "unlock by non-owner");
                *held_by = None;
                sync.join(&me_clock);
            }
            _ => unreachable!(),
        }
        // Everyone parked on this mutex re-contends.
        for t in 0..st.threads.len() {
            if st.threads[t].run == Run::BlockedMutex(loc) {
                st.threads[t].run = Run::Ready;
            }
        }
        st.threads[me].clock.tick(me);
        self.pick_next(&mut st, me, false);
    }

    // ----- threads -----------------------------------------------------

    /// Registers a child model thread and hands back its id. The caller
    /// (the shim `thread::spawn`) starts the real OS thread.
    pub(crate) fn spawn_thread(
        &self,
        me: usize,
        os_spawn: impl FnOnce(usize) -> std::thread::JoinHandle<()>,
    ) -> usize {
        let mut st = self.acquire_baton(me, self.lock());
        if !self.charge_op(&mut st) {
            drop(st);
            std::panic::panic_any(Abort);
        }
        let child = st.threads.len();
        assert!(
            child < MAX_THREADS,
            "model supports at most {MAX_THREADS} threads per execution"
        );
        // spawn edge: the child starts with (and after) the parent's clock.
        let mut clock = st.threads[me].clock;
        clock.tick(child);
        st.threads.push(ThreadSlot::new(clock));
        let handle = os_spawn(child);
        st.os_handles.push(handle);
        st.threads[me].clock.tick(me);
        self.pick_next(&mut st, me, false);
        child
    }

    /// First activation of a spawned thread: parks until the scheduler
    /// first picks it, before any user code runs.
    pub(crate) fn first_activation(&self, me: usize) {
        let st = self.acquire_baton(me, self.lock());
        drop(st);
    }

    /// Joins a model thread (blocking op) and folds its final clock in.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        let mut st = self.acquire_baton(me, self.lock());
        loop {
            if !self.charge_op(&mut st) {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.threads[target].run == Run::Finished {
                let target_clock = st.threads[target].clock;
                st.threads[me].clock.join(&target_clock);
                st.threads[me].clock.tick(me);
                self.pick_next(&mut st, me, false);
                return;
            }
            st.threads[me].run = Run::BlockedJoin(target);
            self.pick_next(&mut st, me, false);
            st = self.acquire_baton(me, st);
        }
    }

    /// Marks a thread finished, recording a payload panic as the failure
    /// (unless it is the abort sentinel), and passes the baton on.
    ///
    /// Thread exit is itself a scheduling point: it waits for the baton
    /// like any op. Without this a thread leaving between two other
    /// threads' ops would inject a decision at a wall-clock-dependent
    /// index and break deterministic replay.
    pub(crate) fn thread_finished(&self, me: usize, panic: Option<&str>) {
        let mut st = self.lock();
        if panic.is_some() {
            st.aborting = true;
        }
        while !st.aborting && st.active != me {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        if let Some(msg) = panic {
            if st.failure.is_none() {
                st.failure = Some(format!("thread {me} panicked: {msg}"));
            }
        }
        st.threads[me].run = Run::Finished;
        st.finished += 1;
        for t in 0..st.threads.len() {
            if st.threads[t].run == Run::BlockedJoin(me) {
                st.threads[t].run = Run::Ready;
            }
        }
        if st.aborting {
            st.active = NOBODY;
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st, me, false);
    }

    /// Harness side: after the main closure returned, wait for all model
    /// threads to finish (or the execution to abort), then collect.
    pub(crate) fn finish(self: &Arc<Self>, main_panic: Option<&str>) -> Outcome {
        self.thread_finished(0, main_panic);
        let mut st = self.lock();
        while st.finished < st.threads.len() && !st.aborting {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        // Tear down any thread still parked (abort path).
        st.aborting = st.aborting || st.finished < st.threads.len();
        st.active = NOBODY;
        self.cv.notify_all();
        let handles = std::mem::take(&mut st.os_handles);
        drop(st);
        for h in handles {
            let _ = h.join();
        }
        set_current(None);
        let st = self.lock();
        Outcome {
            decisions: st.decisions.clone(),
            failure: st.failure.clone(),
            preemptions: st.preemptions,
        }
    }

    /// Used by thread wrappers to bind TLS on their OS thread.
    pub(crate) fn bind(self: &Arc<Self>, me: usize) {
        set_current(Some((Arc::clone(self), me)));
    }

    /// Records a non-sentinel panic payload message for thread wrappers.
    pub(crate) fn is_abort(payload: &(dyn std::any::Any + Send)) -> bool {
        payload.is::<Abort>()
    }
}

fn fmt_site(s: Option<Site>) -> String {
    match s {
        Some(l) => l.to_string(),
        None => "<initialisation>".to_string(),
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
