//! Depth-first exploration over scheduling decisions, seed encoding,
//! replay and greedy shrinking.

use crate::exec::{Cfg, Decision, Execution, Outcome};

/// Result of a [`Checker`] run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// True when the bounded schedule space was fully explored (no
    /// failure found and no budget cap hit).
    pub complete: bool,
    /// The first failure found, if any (after shrinking).
    pub failure: Option<Failure>,
}

/// A failing schedule, replayable via [`Checker::replay`].
#[derive(Clone, Debug)]
pub struct Failure {
    /// Replay seed: `jc1:<thread digits>`, one digit per scheduling
    /// decision. Printed in panic messages and CI artifacts.
    pub seed: String,
    /// Human-readable description (race sites, panic message, deadlock).
    pub message: String,
    /// Preemptions in the (shrunk) failing schedule.
    pub preemptions: usize,
}

impl Report {
    /// Panics with the seed and message if the run found a failure.
    #[track_caller]
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model check failed after {} schedule(s)\n  seed: {}\n  {}",
                self.schedules, f.seed, f.message
            );
        }
    }
}

/// A bounded model checker over a closure that spawns model threads via
/// [`crate::thread::spawn`] and synchronises through [`crate::sync`].
#[derive(Clone, Debug)]
pub struct Checker {
    preemption_bound: usize,
    max_ops: usize,
    max_schedules: usize,
    shrink_budget: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            preemption_bound: 2,
            max_ops: 20_000,
            max_schedules: 250_000,
            shrink_budget: 64,
        }
    }
}

const SEED_PREFIX: &str = "jc1:";

impl Checker {
    pub fn new() -> Checker {
        Checker::default()
    }

    /// CHESS-style bound on involuntary context switches per schedule.
    pub fn preemption_bound(mut self, n: usize) -> Checker {
        self.preemption_bound = n;
        self
    }

    /// Cap on instrumented operations per schedule (livelock guard).
    pub fn max_ops(mut self, n: usize) -> Checker {
        self.max_ops = n;
        self
    }

    /// Cap on schedules explored; hitting it reports `complete: false`.
    pub fn max_schedules(mut self, n: usize) -> Checker {
        self.max_schedules = n;
        self
    }

    fn cfg(&self) -> Cfg {
        Cfg {
            preemption_bound: self.preemption_bound,
            max_ops: self.max_ops,
        }
    }

    fn run_once(&self, forced: Vec<usize>, f: &(dyn Fn() + Sync)) -> Outcome {
        let exec = Execution::new(self.cfg(), forced);
        exec.bind_main();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        let msg = match &r {
            Ok(()) => None,
            Err(p) if Execution::is_abort(p.as_ref()) => None,
            Err(p) => Some(crate::exec::panic_message(p.as_ref())),
        };
        exec.finish(msg.as_deref())
    }

    /// Explores the schedule space of `f` depth-first and returns the
    /// first (shrunk) failure, or a clean exhaustive report.
    pub fn check(&self, f: impl Fn() + Sync) -> Report {
        let f: &(dyn Fn() + Sync) = &f;
        let mut schedules = 0usize;
        // The DFS frontier: the decision tape of the last execution. To
        // advance, bump the deepest decision with an untried alternative
        // and replay the prefix.
        let mut tape: Vec<Decision> = Vec::new();
        loop {
            let forced: Vec<usize> = tape.iter().map(|d| d.chosen).collect();
            let out = self.run_once(forced, f);
            schedules += 1;
            if let Some(msg) = out.failure {
                let failure = self.shrink(out.decisions, msg, f, &mut schedules);
                return Report {
                    schedules,
                    complete: false,
                    failure: Some(failure),
                };
            }
            if schedules >= self.max_schedules {
                return Report {
                    schedules,
                    complete: false,
                    failure: None,
                };
            }
            tape = out.decisions;
            // Backtrack: find the deepest decision with an untried sibling.
            let advanced = loop {
                match tape.pop() {
                    None => break false,
                    Some(d) => {
                        let at = d.allowed.iter().position(|&c| c == d.chosen).unwrap_or(0);
                        if at + 1 < d.allowed.len() {
                            let chosen = d.allowed[at + 1];
                            tape.push(Decision {
                                allowed: d.allowed,
                                chosen,
                            });
                            break true;
                        }
                    }
                }
            };
            if !advanced {
                return Report {
                    schedules,
                    complete: true,
                    failure: None,
                };
            }
        }
    }

    /// Greedy shrink: try truncating the forced tape and letting the
    /// default (run-to-completion) policy finish the schedule; keep any
    /// shorter/less-preempting tape that still fails.
    fn shrink(
        &self,
        decisions: Vec<Decision>,
        message: String,
        f: &(dyn Fn() + Sync),
        schedules: &mut usize,
    ) -> Failure {
        let mut best: Vec<usize> = decisions.iter().map(|d| d.chosen).collect();
        let mut best_msg = message;
        let mut best_pre = decisions
            .iter()
            .filter(|d| d.allowed.first() != Some(&d.chosen))
            .count();
        let mut trials = self.shrink_budget;
        let mut improved = true;
        while improved && trials > 0 {
            improved = false;
            // Candidate cut points, deepest first.
            for cut in (0..best.len()).rev() {
                if trials == 0 {
                    break;
                }
                trials -= 1;
                let out = self.run_once(best[..cut].to_vec(), f);
                *schedules += 1;
                if let Some(msg) = out.failure {
                    let chosen: Vec<usize> = out.decisions.iter().map(|d| d.chosen).collect();
                    let pre = out.preemptions;
                    if chosen.len() < best.len() || pre < best_pre {
                        best = chosen;
                        best_msg = msg;
                        best_pre = pre;
                        improved = true;
                        break;
                    }
                }
            }
        }
        let failure = Failure {
            seed: encode_seed(&best),
            message: best_msg,
            preemptions: best_pre,
        };
        write_artifact(&failure);
        failure
    }

    /// Re-executes exactly the schedule encoded in `seed`.
    pub fn replay(&self, seed: &str, f: impl Fn() + Sync) -> Report {
        let forced = decode_seed(seed).unwrap_or_else(|e| panic!("bad seed {seed:?}: {e}"));
        let out = self.run_once(forced, &f);
        let failure = out.failure.map(|message| Failure {
            seed: seed.to_string(),
            message,
            preemptions: out.preemptions,
        });
        Report {
            schedules: 1,
            complete: false,
            failure,
        }
    }
}

/// Checks `f` with default budgets and panics on any failure, printing
/// the replay seed. The usual entry point for model tests.
#[track_caller]
pub fn model(f: impl Fn() + Sync) {
    Checker::new().check(f).assert_ok();
}

fn encode_seed(choices: &[usize]) -> String {
    let mut s = String::with_capacity(SEED_PREFIX.len() + choices.len());
    s.push_str(SEED_PREFIX);
    for &c in choices {
        debug_assert!(c < 10, "thread ids are single digits");
        s.push(char::from(b'0' + c as u8));
    }
    s
}

fn decode_seed(seed: &str) -> Result<Vec<usize>, String> {
    let body = seed
        .strip_prefix(SEED_PREFIX)
        .ok_or_else(|| format!("missing {SEED_PREFIX} prefix"))?;
    body.chars()
        .map(|c| {
            c.to_digit(10)
                .map(|d| d as usize)
                .ok_or_else(|| format!("bad digit {c:?}"))
        })
        .collect()
}

/// CI support: when JSTAR_CHECK_ARTIFACT_DIR is set, failing seeds are
/// appended there so the workflow can upload them.
fn write_artifact(failure: &Failure) {
    let Ok(dir) = std::env::var("JSTAR_CHECK_ARTIFACT_DIR") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    let path = std::path::Path::new(&dir).join("failing-seeds.txt");
    use std::io::Write;
    if let Ok(mut fh) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(
            fh,
            "{}\t{}",
            failure.seed,
            failure.message.replace('\n', " | ")
        );
    }
}
