//! Vector clocks for the happens-before order tracked by the model.

/// Maximum number of model threads per execution (including the main
/// thread running the test closure). Kernels under test use 2–4 threads;
/// the fixed bound keeps clocks `Copy` and comparisons branch-free.
pub const MAX_THREADS: usize = 8;

/// A fixed-width vector clock. `clock[t]` is the number of scheduling
/// points thread `t` has executed that the owner has synchronised with.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct VClock([u32; MAX_THREADS]);

impl VClock {
    pub fn zero() -> VClock {
        VClock([0; MAX_THREADS])
    }

    #[inline]
    pub fn get(&self, t: usize) -> u32 {
        self.0[t]
    }

    /// Advances this thread's own component (one per executed op).
    #[inline]
    pub fn tick(&mut self, t: usize) {
        self.0[t] += 1;
    }

    /// A clock that is zero everywhere except `v` at `t` (a read epoch).
    #[inline]
    pub fn single(t: usize, v: u32) -> VClock {
        let mut c = VClock::zero();
        c.0[t] = v;
        c
    }

    /// Pointwise maximum: `self := self ⊔ other`.
    #[inline]
    pub fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            if other.0[i] > self.0[i] {
                self.0[i] = other.0[i];
            }
        }
    }
}
