//! Error types for program construction, validation and execution.

use crate::orderby::OrderKey;
use std::fmt;

/// Any error produced by the JStar runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum JStarError {
    /// `order` declarations are cyclic, or an orderby list is malformed.
    Stratification(String),
    /// A rule `put` a tuple into the past at run time — the Law of
    /// Causality was violated (§4).
    CausalityViolation {
        rule: String,
        trigger_key: OrderKey,
        put_key: OrderKey,
        tuple: String,
    },
    /// A primary-key (`->`) invariant was violated: two tuples with the
    /// same key but different dependent fields.
    KeyViolation { table: String, detail: String },
    /// A tuple failed schema type checking.
    Type(String),
    /// Two tables were declared with the same name. Recorded by the
    /// builder and reported at [`crate::program::ProgramBuilder::build`]
    /// so misuse is an error, not a crash.
    DuplicateTable { table: String },
    /// A table declared two columns with the same name. Recorded by the
    /// builder and reported at build time.
    DuplicateColumn { table: String, column: String },
    /// A query constrained a field the table does not have. Positional
    /// queries are validated when they first reach the engine (typed
    /// [`crate::relation::TypedQuery`] constraints cannot express this).
    /// `field` is the column name, or `#i` for a raw positional index.
    NoSuchField { table: String, field: String },
    /// Static causality checking could not prove an obligation. The paper
    /// treats this as a strong warning;
    /// [`crate::program::Program::validate_strict`]
    /// reports it as an error when strict checking is requested.
    Unproved(String),
    /// Anything else (I/O in system rules, configuration mistakes...).
    Other(String),
    /// An operating-system I/O failure while writing or reading a
    /// snapshot. Carries the rendered `std::io::Error` so the variant
    /// stays `Clone + PartialEq` like the rest of the enum.
    Io(String),
    /// A snapshot file failed structural validation: bad magic, version,
    /// checksum, or framing. [`crate::engine::Engine::restore`] reports
    /// this instead of panicking on truncated or bit-flipped input.
    CorruptSnapshot(String),
    /// A snapshot was written by a program with a different schema
    /// (table names, column names/types, key split, or orderby lists).
    SchemaMismatch(String),
}

impl fmt::Display for JStarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JStarError::Stratification(msg) => write!(f, "Stratification error: {msg}"),
            JStarError::CausalityViolation {
                rule,
                trigger_key,
                put_key,
                tuple,
            } => write!(
                f,
                "Causality violation in rule {rule}: put {tuple} at {put_key}, \
                 which is before the trigger at {trigger_key} — rules may not change the past"
            ),
            JStarError::KeyViolation { table, detail } => {
                write!(f, "Key violation in table {table}: {detail}")
            }
            JStarError::Type(msg) => write!(f, "Type error: {msg}"),
            JStarError::DuplicateTable { table } => {
                write!(f, "Duplicate table declaration: {table}")
            }
            JStarError::DuplicateColumn { table, column } => {
                write!(f, "Duplicate column {column} in table {table}")
            }
            JStarError::NoSuchField { table, field } => {
                write!(f, "Query error: table {table} has no field {field}")
            }
            JStarError::Unproved(msg) => write!(f, "Causality warning: {msg}"),
            JStarError::Other(msg) => write!(f, "{msg}"),
            JStarError::Io(msg) => write!(f, "I/O error: {msg}"),
            JStarError::CorruptSnapshot(msg) => write!(f, "Corrupt snapshot: {msg}"),
            JStarError::SchemaMismatch(msg) => write!(f, "Snapshot schema mismatch: {msg}"),
        }
    }
}

impl std::error::Error for JStarError {}

/// Result alias used across the runtime.
pub type Result<T> = std::result::Result<T, JStarError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = JStarError::Stratification("no order between A and B".into());
        assert!(e.to_string().contains("Stratification"));

        let e = JStarError::CausalityViolation {
            rule: "move".into(),
            trigger_key: OrderKey::minimum(),
            put_key: OrderKey::minimum(),
            tuple: "Ship(0)".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("rule move"));
        assert!(msg.contains("change the past"));

        let e = JStarError::KeyViolation {
            table: "Done".into(),
            detail: "two distances for vertex 3".into(),
        };
        assert!(e.to_string().contains("Done"));
    }

    #[test]
    fn persistence_errors_name_their_cause() {
        let e = JStarError::Io("permission denied".into());
        assert!(e.to_string().contains("I/O"));
        assert!(e.to_string().contains("permission denied"));

        let e = JStarError::CorruptSnapshot("checksum mismatch".into());
        assert!(e.to_string().contains("Corrupt snapshot"));

        let e = JStarError::SchemaMismatch("table Ship: arity 5 vs 4".into());
        assert!(e.to_string().contains("schema mismatch"));
        assert!(e.to_string().contains("Ship"));
    }
}
