//! Integrity primitives for the snapshot format: the file checksum
//! (byte-wise streaming for small metadata, word-folded one-shot for
//! bulk data), the order-independent per-table content hash, and the
//! schema fingerprint.
//!
//! All three are hand-rolled (no external hash crates — the build is
//! offline) and deterministic across platforms: every input is reduced
//! to little-endian bytes before hashing.

use crate::schema::TableDef;
use crate::value::ValueType;
use std::sync::Arc;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64 checksum — guards the whole snapshot file
/// against truncation and bit flips. Not cryptographic; the threat
/// model is storage corruption, not adversaries.
#[derive(Debug, Clone, Copy)]
pub struct Checksum {
    state: u64,
}

impl Default for Checksum {
    fn default() -> Self {
        Checksum { state: FNV_OFFSET }
    }
}

impl Checksum {
    pub fn new() -> Checksum {
        Checksum::default()
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut c = Checksum::new();
    c.update(bytes);
    c.finish()
}

/// One-shot word-folded FNV-1a 64: folds 8 little-endian bytes per
/// multiply (final partial word zero-padded, length mixed in last so
/// padding cannot alias real zero bytes). ~8x the throughput of the
/// byte-wise [`fnv1a`] — this is the variant on the checkpoint hot
/// path, where the input is hundreds of kilobytes per snapshot: the
/// whole-file checksum and the per-tuple content hash. Not
/// interchangeable with [`fnv1a`]; both sides of the snapshot format
/// use this one for bulk data.
pub fn fnv1a_words(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h ^= u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        h = h.wrapping_mul(FNV_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(FNV_PRIME)
}

/// SplitMix64 finalizer: spreads an FNV state over all 64 bits so the
/// commutative combiner below cannot be defeated by low-entropy tails.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Order-independent digest of a tuple multiset.
///
/// Claim order in a [`crate::gamma::ConcurrentOrderedStore`] is
/// nondeterministic under parallel insertion, so a snapshot's tuple
/// stream is written in whatever journal order this run produced.
/// The content hash must nevertheless be identical for identical
/// *logical* states, so each tuple's canonical encoding is hashed and
/// mixed, and the per-tuple hashes are combined commutatively
/// (wrapping sum + xor + count). Equal tuple sets therefore produce
/// equal digests regardless of insertion or iteration order — the
/// cross-run determinism check is a single `u64` comparison.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContentHash {
    sum: u64,
    xor: u64,
    count: u64,
}

impl ContentHash {
    pub fn new() -> ContentHash {
        ContentHash::default()
    }

    /// Folds one tuple's canonical encoding (see
    /// [`super::format::encode_tuple`]) into the digest.
    pub fn add_encoded(&mut self, tuple_bytes: &[u8]) {
        let h = mix64(fnv1a_words(tuple_bytes));
        self.sum = self.sum.wrapping_add(h);
        self.xor ^= h;
        self.count += 1;
    }

    /// Folds another digest's accumulators into this one — the result
    /// equals hashing both tuple sets into a single `ContentHash`.
    /// Sum and count add, xor xors (all commutative and associative),
    /// which is what lets the snapshot writer hash export chunks on
    /// separate threads and combine afterwards.
    pub fn merge(&mut self, other: &ContentHash) {
        self.sum = self.sum.wrapping_add(other.sum);
        self.xor ^= other.xor;
        self.count += other.count;
    }

    /// Number of tuples folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The order-independent digest.
    pub fn finish(&self) -> u64 {
        mix64(self.sum ^ mix64(self.xor.wrapping_add(self.count)))
    }
}

fn fingerprint_str(c: &mut Checksum, s: &str) {
    c.update(&(s.len() as u32).to_le_bytes());
    c.update(s.as_bytes());
}

fn value_type_rank(ty: ValueType) -> u8 {
    match ty {
        ValueType::Int => 0,
        ValueType::Double => 1,
        ValueType::Str => 2,
        ValueType::Bool => 3,
    }
}

/// Fingerprints a program's schema: table names, column names and
/// types, the `->` key split, and the orderby lists, in declaration
/// order. A snapshot taken under one fingerprint refuses to restore
/// under another ([`crate::error::JStarError::SchemaMismatch`]) —
/// renaming a column or reordering tables silently reinterpreting old
/// bytes would be far worse than an error.
///
/// The column-type ranks hashed here are the same `int`/`double`/
/// `String`/`boolean` kinds the `dsl` column muncher maps — the single
/// source of column-kind truth the declaration macros and this
/// fingerprint share.
pub fn schema_fingerprint(defs: &[Arc<TableDef>]) -> u64 {
    let mut c = Checksum::new();
    c.update(&(defs.len() as u32).to_le_bytes());
    for def in defs {
        fingerprint_str(&mut c, &def.name);
        // 0 = keyless; otherwise arity + 1 so `key(0)` (impossible today)
        // could never alias keyless.
        c.update(&(def.key_arity.map(|k| k as u64 + 1).unwrap_or(0)).to_le_bytes());
        c.update(&(def.columns.len() as u32).to_le_bytes());
        for col in &def.columns {
            fingerprint_str(&mut c, &col.name);
            c.update(&[value_type_rank(col.ty)]);
        }
        c.update(&(def.orderby.len() as u32).to_le_bytes());
        for comp in &def.orderby {
            use crate::orderby::OrderComponent;
            let (tag, name) = match comp {
                OrderComponent::Strat(n) => (0u8, n),
                OrderComponent::Seq(n) => (1u8, n),
                OrderComponent::Par(n) => (2u8, n),
            };
            c.update(&[tag]);
            fingerprint_str(&mut c, name);
        }
    }
    mix64(c.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orderby::{seq, strat};
    use crate::schema::{TableDefBuilder, TableId};

    fn def(name: &str) -> Arc<TableDef> {
        Arc::new(
            TableDefBuilder::standalone(name)
                .col_int("a")
                .col_str("b")
                .key(1)
                .orderby(&[strat("Int"), seq("a")])
                .build_def(TableId(0)),
        )
    }

    #[test]
    fn checksum_is_fnv1a() {
        // Known FNV-1a 64 vector: "a" -> 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }

    #[test]
    fn word_fnv_distinguishes_padding_from_data() {
        // The zero-padded tail must not alias real trailing zeros.
        assert_ne!(fnv1a_words(b"x"), fnv1a_words(b"x\0"));
        assert_ne!(fnv1a_words(b""), fnv1a_words(b"\0"));
        assert_ne!(
            fnv1a_words(b"\0\0\0\0\0\0\0"),
            fnv1a_words(b"\0\0\0\0\0\0\0\0")
        );
        // Deterministic, and sensitive to every byte position.
        let base: Vec<u8> = (0u8..32).collect();
        let h = fnv1a_words(&base);
        assert_eq!(h, fnv1a_words(&base));
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 0x01;
            assert_ne!(h, fnv1a_words(&flipped), "byte {i} did not matter");
        }
    }

    #[test]
    fn content_hash_is_order_independent() {
        let mut a = ContentHash::new();
        a.add_encoded(b"t1");
        a.add_encoded(b"t2");
        a.add_encoded(b"t3");
        let mut b = ContentHash::new();
        b.add_encoded(b"t3");
        b.add_encoded(b"t1");
        b.add_encoded(b"t2");
        assert_eq!(a.finish(), b.finish());
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn content_hash_distinguishes_sets_and_counts() {
        let mut a = ContentHash::new();
        a.add_encoded(b"t1");
        let mut b = ContentHash::new();
        b.add_encoded(b"t2");
        assert_ne!(a.finish(), b.finish());

        // Duplicated element vs single element (multiset sensitivity).
        let mut c = ContentHash::new();
        c.add_encoded(b"t1");
        c.add_encoded(b"t1");
        assert_ne!(a.finish(), c.finish());

        assert_ne!(ContentHash::new().finish(), a.finish());
    }

    #[test]
    fn fingerprint_tracks_schema_changes() {
        let base = schema_fingerprint(&[def("T")]);
        assert_eq!(base, schema_fingerprint(&[def("T")]));
        assert_ne!(base, schema_fingerprint(&[def("U")]));

        // A changed column type flips the fingerprint.
        let retyped = Arc::new(
            TableDefBuilder::standalone("T")
                .col_double("a")
                .col_str("b")
                .key(1)
                .orderby(&[strat("Int"), seq("a")])
                .build_def(TableId(0)),
        );
        assert_ne!(base, schema_fingerprint(&[retyped]));

        // A dropped key split flips the fingerprint.
        let keyless = Arc::new(
            TableDefBuilder::standalone("T")
                .col_int("a")
                .col_str("b")
                .orderby(&[strat("Int"), seq("a")])
                .build_def(TableId(0)),
        );
        assert_ne!(base, schema_fingerprint(&[keyless]));

        // A changed orderby flips the fingerprint.
        let reordered = Arc::new(
            TableDefBuilder::standalone("T")
                .col_int("a")
                .col_str("b")
                .key(1)
                .orderby(&[strat("Int")])
                .build_def(TableId(0)),
        );
        assert_ne!(base, schema_fingerprint(&[reordered]));
    }
}
