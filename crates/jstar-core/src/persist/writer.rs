//! Snapshot writer: builds the full file image in memory (snapshots
//! are bounded by live Gamma, which is in memory anyway), then
//! publishes it atomically — write to `<name>.tmp`, then rename onto
//! the final path. A reader can never observe a half-written file
//! under the final name; a crash leaves at most a stale `.tmp` that
//! restore ignores.
//!
//! Every append runs through a [`super::fault`] probe, so the
//! `fault-inject` harness can kill the write at byte granularity
//! within any site — the partial prefix is flushed to the `.tmp` file
//! exactly as a real crash would leave it.

use crate::error::{JStarError, Result};
use crate::gamma::{Gamma, TableStore};
use crate::schema::TableDef;
use crate::tuple::Tuple;
use jstar_pool::ThreadPool;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use super::fault::{self, CrashSite};
use super::format;
use super::integrity::{fnv1a_words, schema_fingerprint, ContentHash};

/// Run counters persisted alongside the data, so a restored engine can
/// report how much work the checkpointed run had already done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Coordinator steps completed when the snapshot was taken.
    pub steps: u64,
    /// Tuples processed when the snapshot was taken.
    pub tuples_processed: u64,
}

/// A visitor over the not-yet-executed Delta tuples: called with an
/// emit callback it must invoke once per pending tuple.
pub type PendingVisitor<'a> = dyn FnMut(&mut dyn FnMut(&Tuple)) + 'a;

/// In-memory file image with fault probes on every append.
struct Framed {
    buf: Vec<u8>,
}

impl Framed {
    fn emit(&mut self, site: CrashSite, bytes: &[u8]) -> Result<()> {
        if let Some(cut) = fault::consume(site, bytes.len() as u64) {
            self.buf.extend_from_slice(&bytes[..cut as usize]);
            return Err(JStarError::Io(format!(
                "injected crash at {site:?} + {cut} bytes"
            )));
        }
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    /// Probes a region of length `len` that was already appended
    /// (encoded in place rather than staged in a side buffer). The
    /// probe consumes the site's countdown exactly like [`Framed::emit`]
    /// with the same bytes would; an injected crash truncates the image
    /// back to `start + cut`, leaving the identical partial prefix.
    fn probe_in_place(&mut self, site: CrashSite, start: usize, len: usize) -> Result<()> {
        if let Some(cut) = fault::consume(site, len as u64) {
            self.buf.truncate(start + cut as usize);
            return Err(JStarError::Io(format!(
                "injected crash at {site:?} + {cut} bytes"
            )));
        }
        Ok(())
    }
}

fn io_err(context: &Path, e: std::io::Error) -> JStarError {
    JStarError::Io(format!("{}: {e}", context.display()))
}

/// The `.tmp` staging name next to a final snapshot path.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Encodes one export chunk of `store` into a fresh buffer with its
/// partial content hash — the unit of work the parallel export path
/// fans out over the pool.
fn encode_chunk(store: &dyn TableStore, chunk: usize, of: usize) -> (Vec<u8>, ContentHash) {
    let mut body = Vec::with_capacity(store.len() / of * 24 + 64);
    let mut ch = ContentHash::new();
    store.export_snapshot_chunk(chunk, of, &mut |t| {
        let start = body.len();
        format::encode_tuple(&mut body, t.fields());
        ch.add_encoded(&body[start..]);
    });
    (body, ch)
}

fn build_image(
    w: &mut Framed,
    defs: &[Arc<TableDef>],
    gamma: &Gamma,
    pending: &mut PendingVisitor,
    meta: SnapshotMeta,
    pool: Option<&ThreadPool>,
) -> Result<()> {
    // ── Header ──────────────────────────────────────────────────────
    let mut head = Vec::with_capacity(40);
    head.extend_from_slice(format::MAGIC);
    head.extend_from_slice(&format::VERSION.to_le_bytes());
    head.extend_from_slice(&schema_fingerprint(defs).to_le_bytes());
    head.extend_from_slice(&meta.steps.to_le_bytes());
    head.extend_from_slice(&meta.tuples_processed.to_le_bytes());
    head.extend_from_slice(&(defs.len() as u32).to_le_bytes());
    w.emit(CrashSite::Header, &head)?;

    // ── Table sections ──────────────────────────────────────────────
    // Tuples stream out in the store's journal order (O(live), one
    // pass); the header carries the order-independent content hash so
    // two snapshots of the same logical state are comparable even
    // though their streams are permuted. Buffers are pre-sized from
    // the live counts — reallocation copies of a multi-hundred-KB
    // image are measurable on the checkpoint hot path.
    let live: usize = defs.iter().map(|def| gamma.store(def.id).len()).sum();
    w.buf.reserve(live * 24 + defs.len() * 64 + 128);
    for def in defs {
        let store = gamma.store(def.id);
        // The per-tuple encode+hash pass is the dominant checkpoint
        // cost and it's memory-latency bound (scattered heap tuples
        // reached through the claim journal), so a large store splits
        // it across the pool — idle at this quiescent point. Chunks
        // partition the journal walk in order, so the emitted bytes
        // (and every fault-probe offset) are identical to a
        // sequential export; the partial hashes merge commutatively.
        // The worker hint is capped by the cores the OS actually grants
        // (pools are sized by `--threads=N`, which users oversubscribe
        // freely): with one core, fanning the encode out only adds
        // scheduling overhead on top of the same serial work.
        let chunks = match pool {
            Some(p) => {
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                store.export_chunks(p.num_threads().min(cores))
            }
            None => 1,
        };
        if chunks > 1 {
            let pool = pool.expect("chunks > 1 only with a pool");
            let store: &dyn TableStore = &**store;
            let parts: Vec<(Vec<u8>, ContentHash)> =
                jstar_pool::parallel_map(pool, chunks, 1, |i| encode_chunk(store, i, chunks));
            let mut ch = ContentHash::new();
            for (_, part) in &parts {
                ch.merge(part);
            }
            let mut section = Vec::with_capacity(def.name.len() + 20);
            section.extend_from_slice(&(def.name.len() as u32).to_le_bytes());
            section.extend_from_slice(def.name.as_bytes());
            section.extend_from_slice(&ch.count().to_le_bytes());
            section.extend_from_slice(&ch.finish().to_le_bytes());
            w.emit(CrashSite::TableSection, &section)?;
            for (body, _) in &parts {
                w.emit(CrashSite::TupleBytes, body)?;
            }
        } else {
            // Sequential path: encode tuples straight into the image —
            // no staging buffer, no second copy of the table bytes. The
            // section header needs the count and hash that only the
            // encode pass produces, so placeholder bytes are reserved
            // and patched afterwards; the crash probes then run over the
            // finished regions in the same order, with the same lengths
            // and cut offsets, as the staged path's emits.
            let section_start = w.buf.len();
            w.buf
                .extend_from_slice(&(def.name.len() as u32).to_le_bytes());
            w.buf.extend_from_slice(def.name.as_bytes());
            let patch_at = w.buf.len();
            w.buf.extend_from_slice(&[0u8; 16]);
            let body_start = w.buf.len();
            let mut ch = ContentHash::new();
            let buf = &mut w.buf;
            store.export_snapshot(&mut |t| {
                let start = buf.len();
                format::encode_tuple(buf, t.fields());
                ch.add_encoded(&buf[start..]);
            });
            let body_len = w.buf.len() - body_start;
            w.buf[patch_at..patch_at + 8].copy_from_slice(&ch.count().to_le_bytes());
            w.buf[patch_at + 8..patch_at + 16].copy_from_slice(&ch.finish().to_le_bytes());
            w.probe_in_place(
                CrashSite::TableSection,
                section_start,
                body_start - section_start,
            )?;
            w.probe_in_place(CrashSite::TupleBytes, body_start, body_len)?;
        }
    }

    // ── Pending-Delta section ───────────────────────────────────────
    // Only the tuples: their order keys are pure functions of tuple
    // fields (the orderby extractor), so restore recomputes them by
    // re-injecting through the normal put path.
    let mut records = Vec::new();
    let mut count: u64 = 0;
    pending(&mut |t| {
        records.extend_from_slice(&t.table().0.to_le_bytes());
        format::encode_tuple(&mut records, t.fields());
        count += 1;
    });
    let mut section = Vec::with_capacity(8 + records.len());
    section.extend_from_slice(&count.to_le_bytes());
    section.extend_from_slice(&records);
    w.emit(CrashSite::PendingSection, &section)?;

    // ── Footer ──────────────────────────────────────────────────────
    // The checksum covers every byte before it, footer magic included
    // — the magic is emitted first so the word-folded hash runs over
    // one contiguous slice.
    w.emit(CrashSite::Footer, format::FOOTER_MAGIC)?;
    let checksum = fnv1a_words(&w.buf);
    w.emit(CrashSite::Footer, &checksum.to_le_bytes())?;
    Ok(())
}

/// Serializes `gamma` (plus the `pending` Delta tuples) to `path`,
/// atomically: the image lands on `<path>.tmp` first and is renamed
/// into place only when complete. On error the final path is never
/// touched; a partial `.tmp` may remain (and is ignored by
/// [`super::reader::read_snapshot`] / checkpoint discovery).
///
/// `pending` is a visitor over the not-yet-executed Delta tuples —
/// pass a no-op closure for a post-run snapshot (the Delta set is
/// empty at quiescence).
///
/// `pool`, when given, parallelises the per-table encode+hash pass
/// over large stores' export chunks. The file bytes are identical
/// either way (chunks partition the journal walk in order); the
/// caller must be at a quiescent point — no concurrent inserts — which
/// every snapshot path already guarantees.
pub fn write_snapshot(
    defs: &[Arc<TableDef>],
    gamma: &Gamma,
    pending: &mut PendingVisitor,
    meta: SnapshotMeta,
    path: &Path,
    pool: Option<&ThreadPool>,
) -> Result<()> {
    // Periodic checkpoints rebuild a multi-hundred-KB image every few
    // steps; a buffer that size goes straight to mmap in the allocator,
    // so a fresh Vec per snapshot pays an mmap/munmap pair plus a page
    // fault per 4 KB of image on the coordinator thread. Keeping the
    // buffer per-thread makes every checkpoint after the first reuse
    // already-faulted pages.
    thread_local! {
        static IMAGE_BUF: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    let mut w = Framed {
        buf: IMAGE_BUF.with(|b| std::mem::take(&mut *b.borrow_mut())),
    };
    w.buf.clear();
    let result = write_snapshot_into(&mut w, defs, gamma, pending, meta, path, pool);
    IMAGE_BUF.with(|b| *b.borrow_mut() = std::mem::take(&mut w.buf));
    result
}

fn write_snapshot_into(
    w: &mut Framed,
    defs: &[Arc<TableDef>],
    gamma: &Gamma,
    pending: &mut PendingVisitor,
    meta: SnapshotMeta,
    path: &Path,
    pool: Option<&ThreadPool>,
) -> Result<()> {
    let tmp = tmp_path(path);
    match build_image(w, defs, gamma, pending, meta, pool) {
        Ok(()) => {
            std::fs::write(&tmp, &w.buf).map_err(|e| io_err(&tmp, e))?;
            if fault::consume(CrashSite::Rename, 0).is_some() {
                return Err(JStarError::Io(
                    "injected crash between temp write and rename".to_string(),
                ));
            }
            std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
        }
        Err(e) => {
            // The bytes that "made it out" before the simulated crash:
            // flush them so restore sees the same partial file a real
            // power cut would have left.
            let _ = std::fs::write(&tmp, &w.buf);
            Err(e)
        }
    }
}
