//! Durable Gamma — snapshot, checkpoint and restore.
//!
//! A snapshot captures everything the engine needs to resume a run:
//! the live contents of every Gamma store, the not-yet-executed Delta
//! tuples, and enough metadata to refuse a mismatched program. Writes
//! are atomic (temp + rename), reads are checksum-verified before a
//! single field is interpreted, and a deterministic fault-injection
//! harness ([`fault`], behind `--features fault-inject`) can kill a
//! write at byte granularity to prove crash recovery end to end.
//!
//! ## On-disk format (version 1, all integers little-endian)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 8    | magic `JSTARSNP` |
//! | 8      | 4    | format version (`u32`) |
//! | 12     | 8    | schema fingerprint (`u64`, [`schema_fingerprint`]) |
//! | 20     | 8    | steps at snapshot (`u64`) |
//! | 28     | 8    | tuples processed at snapshot (`u64`) |
//! | 36     | 4    | table count (`u32`) |
//! | —      | —    | table sections, in `TableId` order |
//! | —      | —    | pending-Delta section |
//! | end-16 | 8    | footer magic `JSNAPEND` |
//! | end-8  | 8    | word-folded FNV-1a 64 checksum of every preceding byte |
//!
//! Each **table section** is: `u32` name length + UTF-8 name, `u64`
//! live tuple count, `u64` order-independent content hash
//! ([`ContentHash`]), then the tuples in the store's journal order
//! (a varint field count + tagged values each, zigzag varints for
//! ints — see [`format::encode_value`]). The **pending section** is a `u64`
//! count followed by `u32` table index + tuple per record; order keys
//! are *not* stored — they are pure functions of tuple fields, so
//! restore recomputes them by re-injecting through the normal put
//! path.
//!
//! Tuple streams are written in whatever claim-journal order this run
//! produced (O(live), one pass, no sorting); the content hash is
//! commutative, so identical logical states produce identical digests
//! regardless of insertion order — cross-run determinism checks are a
//! single `u64` comparison ([`crate::engine::Engine::content_hash`]).
//!
//! ## Checkpoint policy
//!
//! Periodic checkpointing hangs off the coordinator's maintain phase:
//! set [`crate::engine::EngineConfig::checkpoint`] with a directory
//! and a step interval. Every `checkpoint_every` steps the coordinator
//! absorbs all staged tuples (reaching a fully quiescent Delta
//! queue), flushes any lookahead speculation back, and writes
//! `ckpt-<seq>.jsnap` atomically, keeping the newest
//! [`crate::engine::EngineConfig::checkpoint_keep`] files.
//!
//! Guidance:
//!
//! * **Interval.** A checkpoint costs O(live Gamma) serialization on
//!   the coordinator thread. Size `checkpoint_every` so that cost is
//!   well under the work of the interval itself — for the paper's
//!   workloads, every few hundred steps keeps overhead under a few
//!   percent (the bench suite gates fig8 at ≤ 1.10× with
//!   checkpointing on). Very small intervals are only worth it when a
//!   step is enormous or re-execution is very expensive.
//! * **Keep count.** Keep at least 2: if the process dies *while*
//!   writing checkpoint N (leaving a torn `.tmp` or, with a corrupted
//!   disk, a bad newest file), restore falls back to N−1. The default
//!   keeps 2.
//! * **Restore.** [`crate::engine::Engine::restore_latest`] scans the
//!   directory newest-first, skipping corrupt files with a reported
//!   (never panicked) [`crate::error::JStarError::CorruptSnapshot`],
//!   and resumes from the first intact one. Because canonical Delta
//!   sets make pop schedules deterministic, a resumed run's final
//!   Gamma digest is bit-identical to an uninterrupted run's.
//!
//! Snapshots restore only into an engine built from the *same*
//! program schema — table names, column names/types, key splits and
//! orderby lists are fingerprinted, and a mismatch is a reported
//! [`crate::error::JStarError::SchemaMismatch`].

pub mod fault;
pub mod format;
mod integrity;
mod reader;
mod writer;

pub use format::SNAPSHOT_EXT;
pub use integrity::{fnv1a, fnv1a_words, schema_fingerprint, Checksum, ContentHash};
pub use reader::{read_snapshot, read_snapshot_bytes, Snapshot, SnapshotTable};
pub use writer::{write_snapshot, SnapshotMeta};

use crate::error::{JStarError, Result};
use crate::gamma::Gamma;
use crate::schema::TableDef;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Combines per-table content hashes (in table order) into one Gamma
/// digest.
pub(crate) fn combine_digest<'a>(tables: impl Iterator<Item = (&'a str, u64)>) -> u64 {
    let mut c = Checksum::new();
    for (name, hash) in tables {
        c.update(&(name.len() as u32).to_le_bytes());
        c.update(name.as_bytes());
        c.update(&hash.to_le_bytes());
    }
    integrity::mix64(c.finish())
}

/// The order-independent digest of a live Gamma database: per-table
/// [`ContentHash`]es over the canonical tuple encoding, combined in
/// table order. Equal logical states produce equal digests across
/// thread counts, pipeline depths and checkpoint/restore cycles.
pub fn gamma_digest(defs: &[Arc<TableDef>], gamma: &Gamma) -> u64 {
    combine_digest(defs.iter().map(|def| {
        let mut ch = ContentHash::new();
        let mut scratch = Vec::new();
        gamma.store(def.id).export_snapshot(&mut |t| {
            scratch.clear();
            format::encode_tuple(&mut scratch, t.fields());
            ch.add_encoded(&scratch);
        });
        (def.name.as_str(), ch.finish())
    }))
}

/// The checkpoint file name for sequence number `seq`
/// (`ckpt-0000000042.jsnap`): zero-padded so lexicographic directory
/// order is sequence order.
pub fn checkpoint_file_name(seq: u64) -> String {
    format!("ckpt-{seq:010}.{SNAPSHOT_EXT}")
}

/// Parses the sequence number out of a checkpoint file name.
fn checkpoint_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("ckpt-")?;
    let digits = rest.strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
    digits.parse().ok()
}

/// Lists the checkpoint files in `dir`, oldest first. Files that do
/// not match the `ckpt-<seq>.jsnap` pattern (including stale `.tmp`
/// staging files left by a crash) are ignored. A missing directory is
/// an empty list, not an error.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<PathBuf>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(JStarError::Io(format!("{}: {e}", dir.display()))),
    };
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| JStarError::Io(format!("{}: {e}", dir.display())))?;
        let path = entry.path();
        if let Some(seq) = checkpoint_seq(&path) {
            found.push((seq, path));
        }
    }
    found.sort();
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

/// The next unused checkpoint sequence number in `dir` — strictly
/// greater than every existing one, so checkpoints written by a
/// resumed run never collide with (or sort below) the files it
/// restored from.
pub fn next_checkpoint_seq(dir: &Path) -> Result<u64> {
    Ok(list_checkpoints(dir)?
        .iter()
        .filter_map(|p| checkpoint_seq(p))
        .max()
        .map(|s| s + 1)
        .unwrap_or(0))
}

/// Removes the oldest checkpoints in `dir` until at most `keep`
/// remain (keep-last-N rotation). `keep == 0` is treated as 1 — the
/// checkpoint just written is never deleted.
pub fn rotate_checkpoints(dir: &Path, keep: usize) -> Result<()> {
    let files = list_checkpoints(dir)?;
    let keep = keep.max(1);
    if files.len() <= keep {
        return Ok(());
    }
    for old in &files[..files.len() - keep] {
        std::fs::remove_file(old).map_err(|e| JStarError::Io(format!("{}: {e}", old.display())))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_names_sort_by_sequence() {
        assert_eq!(checkpoint_file_name(42), "ckpt-0000000042.jsnap");
        assert!(checkpoint_file_name(9) < checkpoint_file_name(10));
        assert_eq!(
            checkpoint_seq(Path::new("/x/ckpt-0000000042.jsnap")),
            Some(42)
        );
        assert_eq!(checkpoint_seq(Path::new("/x/ckpt-42.jsnap.tmp")), None);
        assert_eq!(checkpoint_seq(Path::new("/x/other.jsnap")), None);
    }

    #[test]
    fn listing_rotation_and_sequencing() {
        let dir = std::env::temp_dir().join(format!("jstar-persist-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        assert_eq!(next_checkpoint_seq(&dir).unwrap(), 0);
        for seq in [3u64, 1, 2] {
            std::fs::write(dir.join(checkpoint_file_name(seq)), b"x").unwrap();
        }
        // Stale staging file and unrelated files are ignored.
        std::fs::write(dir.join("ckpt-0000000009.jsnap.tmp"), b"x").unwrap();
        std::fs::write(dir.join("notes.txt"), b"x").unwrap();

        let files = list_checkpoints(&dir).unwrap();
        assert_eq!(files.len(), 3);
        assert!(files[0].to_str().unwrap().contains("0000000001"));
        assert!(files[2].to_str().unwrap().contains("0000000003"));
        assert_eq!(next_checkpoint_seq(&dir).unwrap(), 4);

        rotate_checkpoints(&dir, 2).unwrap();
        let files = list_checkpoints(&dir).unwrap();
        assert_eq!(files.len(), 2);
        assert!(files[0].to_str().unwrap().contains("0000000002"));

        // keep = 0 still keeps the newest.
        rotate_checkpoints(&dir, 0).unwrap();
        assert_eq!(list_checkpoints(&dir).unwrap().len(), 1);

        // A missing directory lists as empty.
        let _ = std::fs::remove_dir_all(&dir);
        assert!(list_checkpoints(&dir).unwrap().is_empty());
    }
}
