//! Deterministic crash injection for the snapshot writer.
//!
//! Compiled to a real hook only under `--features fault-inject`; in
//! normal builds every probe is a `const`-foldable no-op. The hook is
//! **thread-local**: checkpoints are written on the coordinator thread
//! (the thread that called [`crate::engine::Engine::run`]), so a test
//! arms the fail point on its own thread and concurrently running
//! tests cannot trip each other's crashes.
//!
//! A fail point names a *write site* in the snapshot writer plus a
//! byte countdown within that site: `arm(CrashSite::TupleBytes, 37)`
//! kills the writer 37 bytes into the tuple stream, flushing exactly
//! the prefix that "made it to disk" before the simulated process
//! death and reporting [`crate::error::JStarError::Io`] up the stack.
//! `arm_seeded` derives a (site, offset) pair from a seed with a
//! xorshift generator, so a crash matrix is reproducible from the
//! failing seed alone.

/// A write site in the snapshot writer where a crash can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashSite {
    /// The fixed-size file header (magic, version, fingerprint, meta).
    Header,
    /// A per-table section header (name, live count, content hash).
    TableSection,
    /// The bulk tuple stream of a table section — the segment write.
    TupleBytes,
    /// The pending-Delta section — the journal write.
    PendingSection,
    /// The footer (trailing magic + checksum).
    Footer,
    /// The atomic publish: between the full temp-file write and the
    /// rename onto the final checkpoint name.
    Rename,
}

/// All sites, in file order (used by crash-matrix tests).
pub const ALL_SITES: [CrashSite; 6] = [
    CrashSite::Header,
    CrashSite::TableSection,
    CrashSite::TupleBytes,
    CrashSite::PendingSection,
    CrashSite::Footer,
    CrashSite::Rename,
];

#[cfg(feature = "fault-inject")]
mod hook {
    use super::CrashSite;
    use std::cell::Cell;

    thread_local! {
        static ARMED: Cell<Option<(CrashSite, u64)>> = const { Cell::new(None) };
        static FIRED: Cell<Option<(CrashSite, u64)>> = const { Cell::new(None) };
    }

    /// Arms a crash `after_bytes` into the named write site on this
    /// thread (0 = before the site's first byte). Replaces any
    /// previously armed point and clears the fired record.
    pub fn arm(site: CrashSite, after_bytes: u64) {
        ARMED.with(|a| a.set(Some((site, after_bytes))));
        FIRED.with(|f| f.set(None));
    }

    /// Derives and arms a pseudo-random crash point from `seed`,
    /// returning it. The same seed always arms the same point.
    pub fn arm_seeded(seed: u64) -> (CrashSite, u64) {
        // xorshift64* — tiny, deterministic, good enough to spread
        // points across sites and offsets.
        let mut x = seed.wrapping_mul(2_685_821_657_736_338_717).wrapping_add(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let r = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let site = super::ALL_SITES[(r % 6) as usize];
        let offset = match site {
            CrashSite::TupleBytes => (r >> 8) % 4096,
            CrashSite::PendingSection => (r >> 8) % 256,
            CrashSite::Header | CrashSite::TableSection | CrashSite::Footer => (r >> 8) % 16,
            CrashSite::Rename => 0,
        };
        arm(site, offset);
        (site, offset)
    }

    /// Disarms the hook, returning the crash point that actually fired
    /// (if any) since the last `arm`.
    pub fn disarm() -> Option<(CrashSite, u64)> {
        ARMED.with(|a| a.set(None));
        FIRED.with(|f| f.take())
    }

    /// Writer probe: about to write `len` bytes at `site`. Returns
    /// `Some(cut)` when the armed countdown lands inside this chunk —
    /// the writer must persist exactly `cut` bytes of it and then die.
    /// Decrements the countdown otherwise.
    pub(crate) fn consume(site: CrashSite, len: u64) -> Option<u64> {
        ARMED.with(|a| {
            let (armed_site, countdown) = a.get()?;
            if armed_site != site {
                return None;
            }
            if countdown < len || (len == 0 && countdown == 0) {
                a.set(None);
                FIRED.with(|f| f.set(Some((site, countdown))));
                Some(countdown)
            } else {
                a.set(Some((site, countdown - len)));
                None
            }
        })
    }
}

#[cfg(feature = "fault-inject")]
pub use hook::{arm, arm_seeded, disarm};

#[cfg(feature = "fault-inject")]
pub(crate) use hook::consume;

/// No-op probe in normal builds: the optimiser erases it entirely.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn consume(_site: CrashSite, _len: u64) -> Option<u64> {
    None
}

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;

    #[test]
    fn countdown_crosses_chunks() {
        arm(CrashSite::TupleBytes, 10);
        // Wrong site: untouched.
        assert_eq!(consume(CrashSite::Header, 100), None);
        // 6 bytes pass; countdown now 4.
        assert_eq!(consume(CrashSite::TupleBytes, 6), None);
        // Next 8-byte chunk contains the crash point, 4 bytes in.
        assert_eq!(consume(CrashSite::TupleBytes, 8), Some(4));
        // Fired and disarmed.
        assert_eq!(consume(CrashSite::TupleBytes, 8), None);
        assert_eq!(disarm(), Some((CrashSite::TupleBytes, 4)));
        assert_eq!(disarm(), None);
    }

    #[test]
    fn rename_site_fires_on_zero_length_probe() {
        arm(CrashSite::Rename, 0);
        assert_eq!(consume(CrashSite::Rename, 0), Some(0));
        assert_eq!(disarm(), Some((CrashSite::Rename, 0)));
    }

    #[test]
    fn seeded_points_are_reproducible_and_spread() {
        let a = arm_seeded(7);
        disarm();
        let b = arm_seeded(7);
        disarm();
        assert_eq!(a, b);

        let distinct: std::collections::HashSet<CrashSite> = (0..64)
            .map(|s| {
                let (site, _) = arm_seeded(s);
                disarm();
                site
            })
            .collect();
        assert!(distinct.len() >= 5, "seeds cover {} sites", distinct.len());
    }
}
