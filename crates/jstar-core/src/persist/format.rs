//! On-disk framing for snapshots: little-endian, hand-rolled (the
//! build is offline — no serde), self-describing enough that a
//! truncated or bit-flipped file decodes to a reported
//! [`crate::error::JStarError::CorruptSnapshot`] instead of a panic.
//!
//! See the [module docs](super) for the full file layout table.

use crate::error::{JStarError, Result};
use crate::value::Value;

/// Leading magic of every snapshot file.
pub const MAGIC: &[u8; 8] = b"JSTARSNP";
/// Trailing magic, immediately before the checksum.
pub const FOOTER_MAGIC: &[u8; 8] = b"JSNAPEND";
/// Current format version.
pub const VERSION: u32 = 1;
/// File-name extension for checkpoint snapshots.
pub const SNAPSHOT_EXT: &str = "jsnap";

/// Appends an LEB128 varint (7 data bits per byte, high bit =
/// continuation, always minimal-form).
pub fn encode_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-maps a signed value so small magnitudes (of either sign)
/// varint-encode in one or two bytes.
fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Canonical value encoding: a 1-byte type tag (the
/// [`crate::value::Value`] type rank) followed by the payload — a
/// zigzag varint for `Int` (checkpoint images are dominated by small
/// integers; fixed 8-byte fields tripled the image size, and every
/// downstream cost of a checkpoint is byte-proportional), `to_bits`
/// as 8 fixed little-endian bytes for `Double` (preserving `-0.0` vs
/// `0.0` and NaN payloads, matching `Value`'s total order), a varint
/// length + UTF-8 bytes for `Str`. This encoding doubles as the
/// content-hash input; the encoder's minimal-form varints keep it
/// injective per type.
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            encode_varint(out, zigzag(*i));
        }
        Value::Double(d) => {
            let mut rec = [1u8; 9];
            rec[1..].copy_from_slice(&d.to_bits().to_le_bytes());
            out.extend_from_slice(&rec);
        }
        Value::Str(s) => {
            out.push(2);
            encode_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            out.push(3);
            out.push(*b as u8);
        }
    }
}

/// Like [`encode_varint`] but into a slice, returning the bytes used.
fn varint_into(buf: &mut [u8], mut v: u64) -> usize {
    let mut i = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[i] = byte;
            return i + 1;
        }
        buf[i] = byte | 0x80;
        i += 1;
    }
}

/// Canonical tuple encoding: varint field count, then each field via
/// [`encode_value`]. The table is identified by the enclosing section
/// (or an explicit index, for pending-Delta records) — tuples do not
/// repeat it.
pub fn encode_tuple(out: &mut Vec<u8>, fields: &[Value]) {
    // Fast path: a string-free tuple of ≤ 11 fields encodes in at most
    // 1 + 11·10 bytes, so it can be built in a stack buffer and
    // appended with one bounded copy instead of a capacity-checked Vec
    // push per byte — tens of nanoseconds per tuple, which is real
    // money when a checkpoint encodes the whole Gamma. The bytes are
    // identical to the general path below.
    if fields.len() <= 11 && !fields.iter().any(|v| matches!(v, Value::Str(_))) {
        let mut buf = [0u8; 128];
        buf[0] = fields.len() as u8; // arity ≤ 11 is a 1-byte varint
        let mut at = 1;
        for v in fields {
            match v {
                Value::Int(i) => {
                    buf[at] = 0;
                    at += 1 + varint_into(&mut buf[at + 1..], zigzag(*i));
                }
                Value::Double(d) => {
                    buf[at] = 1;
                    buf[at + 1..at + 9].copy_from_slice(&d.to_bits().to_le_bytes());
                    at += 9;
                }
                Value::Bool(b) => {
                    buf[at] = 3;
                    buf[at + 1] = *b as u8;
                    at += 2;
                }
                Value::Str(_) => unreachable!("filtered above"),
            }
        }
        out.extend_from_slice(&buf[..at]);
        return;
    }
    encode_varint(out, fields.len() as u64);
    for v in fields {
        encode_value(out, v);
    }
}

/// Bounds-checked little-endian reader over a snapshot's byte image.
///
/// Every accessor returns `CorruptSnapshot` on overrun; length fields
/// are validated against the remaining input before any allocation is
/// sized from them, so a bit-flipped count cannot request gigabytes.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Current read offset (for diagnostics).
    pub fn position(&self) -> usize {
        self.pos
    }

    fn corrupt(&self, what: &str) -> JStarError {
        JStarError::CorruptSnapshot(format!(
            "{what} at byte {} of {}",
            self.pos,
            self.bytes.len()
        ))
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(self.corrupt("truncated record"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// An LEB128 varint. At most 10 bytes; a continuation bit running
    /// past the end of input or past 64 bits is a corruption error.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = (byte & 0x7f) as u64;
            if shift == 63 && bits > 1 {
                return Err(self.corrupt("varint overflows 64 bits"));
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.corrupt("varint longer than 10 bytes"))
    }

    /// A `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(self.corrupt("string length exceeds input"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| {
            JStarError::CorruptSnapshot(format!("invalid UTF-8 string at byte {}", self.pos))
        })
    }

    /// One canonically encoded value.
    pub fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::Int(unzigzag(self.varint()?))),
            1 => Ok(Value::Double(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            )))),
            2 => {
                let len64 = self.varint()?;
                if len64 > self.remaining() as u64 {
                    return Err(self.corrupt("string value length exceeds input"));
                }
                let bytes = self.take(len64 as usize)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| self.corrupt("invalid UTF-8 in string value"))?;
                Ok(Value::str(s.to_string()))
            }
            3 => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                _ => Err(self.corrupt("boolean value out of range")),
            },
            _ => Err(self.corrupt("unknown value type tag")),
        }
    }

    /// One canonically encoded tuple record, returning its fields and
    /// the raw record slice (the content-hash input).
    pub fn tuple_record(&mut self) -> Result<(Vec<Value>, &'a [u8])> {
        let start = self.pos;
        let arity64 = self.varint()?;
        // Each field is at least 2 bytes (tag + smallest payload), so a
        // plausible arity is bounded by the remaining input.
        if arity64 > self.remaining() as u64 {
            return Err(self.corrupt("tuple arity exceeds input"));
        }
        let arity = arity64 as usize;
        let mut fields = Vec::with_capacity(arity);
        for _ in 0..arity {
            fields.push(self.value()?);
        }
        Ok((fields, &self.bytes[start..self.pos]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(fields: Vec<Value>) {
        let mut buf = Vec::new();
        encode_tuple(&mut buf, &fields);
        let mut r = ByteReader::new(&buf);
        let (decoded, raw) = r.tuple_record().unwrap();
        assert_eq!(decoded, fields);
        assert_eq!(raw, &buf[..]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn tuple_roundtrips_every_value_type() {
        roundtrip(vec![
            Value::Int(-42),
            Value::Double(2.5),
            Value::str("héllo"),
            Value::Bool(true),
        ]);
        roundtrip(vec![]);
        roundtrip(vec![Value::Double(-0.0), Value::Double(f64::NAN)]);
    }

    #[test]
    fn double_bits_survive() {
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::Double(-0.0));
        let mut r = ByteReader::new(&buf);
        match r.value().unwrap() {
            Value::Double(d) => assert_eq!(d.to_bits(), (-0.0f64).to_bits()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        encode_tuple(
            &mut buf,
            &[Value::Int(7), Value::str("abc"), Value::Bool(false)],
        );
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            let err = r.tuple_record().unwrap_err();
            assert!(
                matches!(err, JStarError::CorruptSnapshot(_)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn varint_roundtrips_and_rejects_hostile_bytes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            encode_varint(&mut buf, v);
            let mut r = ByteReader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
        // Continuation bit running off the end of input.
        assert!(ByteReader::new(&[0x80, 0x80]).varint().is_err());
        // More than 64 bits of payload.
        assert!(ByteReader::new(&[0xff; 10]).varint().is_err());
        assert!(ByteReader::new(&[0x80; 11]).varint().is_err());
    }

    #[test]
    fn zigzag_preserves_sign_and_magnitude() {
        for i in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            encode_value(&mut buf, &Value::Int(i));
            let mut r = ByteReader::new(&buf);
            assert_eq!(r.value().unwrap(), Value::Int(i));
        }
        // Small magnitudes of either sign stay tiny on disk.
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::Int(-3));
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn fast_tuple_path_matches_general_encoding() {
        let cases: Vec<Vec<Value>> = vec![
            vec![],
            vec![Value::Int(0)],
            vec![Value::Int(-1), Value::Bool(true), Value::Double(3.5)],
            (0..11).map(Value::Int).collect(),
            (0..12).map(Value::Int).collect(), // just over the arity bound
            vec![Value::Int(i64::MIN), Value::Int(i64::MAX)],
            vec![Value::str("s"), Value::Int(1)], // strings take the general path
        ];
        for fields in cases {
            let mut fast = Vec::new();
            encode_tuple(&mut fast, &fields);
            let mut general = Vec::new();
            encode_varint(&mut general, fields.len() as u64);
            for v in &fields {
                encode_value(&mut general, v);
            }
            assert_eq!(fast, general, "{fields:?}");
        }
    }

    #[test]
    fn hostile_lengths_are_rejected() {
        // Arity claims ~4 billion fields in a short input.
        let mut buf = Vec::new();
        encode_varint(&mut buf, u32::MAX as u64);
        buf.extend_from_slice(&[0; 6]);
        let mut r = ByteReader::new(&buf);
        assert!(r.tuple_record().is_err());

        // String length claims more than the input holds.
        let mut buf = vec![2u8]; // Str tag
        encode_varint(&mut buf, u64::MAX);
        let mut r = ByteReader::new(&buf);
        assert!(r.value().is_err());

        // Bad type tag.
        let mut r = ByteReader::new(&[9u8, 0, 0]);
        assert!(r.value().is_err());

        // Bad bool payload.
        let mut r = ByteReader::new(&[3u8, 7]);
        assert!(r.value().is_err());

        // Invalid UTF-8 in a string value.
        let mut buf = vec![2u8];
        encode_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = ByteReader::new(&buf);
        assert!(r.value().is_err());
    }
}
