//! Snapshot reader: fully validating, never panicking.
//!
//! Validation is layered so no parse decision is ever made on
//! unverified bytes:
//!
//! 1. the footer magic and whole-file word-folded FNV-1a checksum are
//!    verified against the raw image **before** any field is interpreted —
//!    truncation and bit flips stop here;
//! 2. parsing itself is bounds-checked at every read
//!    ([`super::format::ByteReader`]), with length fields validated
//!    against the remaining input before sizing any allocation —
//!    defense in depth against crafted or colliding images;
//! 3. each table's tuple stream is re-hashed during decode and checked
//!    against the section header's content hash and count.
//!
//! Every failure is a reported
//! [`crate::error::JStarError::CorruptSnapshot`] (or
//! [`crate::error::JStarError::Io`] for filesystem errors).

use crate::error::{JStarError, Result};
use crate::value::Value;
use std::path::Path;

use super::format::{self, ByteReader};
use super::integrity::{fnv1a_words, ContentHash};
use super::writer::SnapshotMeta;

/// One decoded table section.
#[derive(Debug)]
pub struct SnapshotTable {
    /// Table name (matched against the program's defs on restore).
    pub name: String,
    /// The order-independent content digest from the section header,
    /// verified against the decoded tuples.
    pub content_hash: u64,
    /// Decoded live tuples (field vectors; the table id is assigned by
    /// the restoring engine).
    pub tuples: Vec<Vec<Value>>,
}

/// A fully decoded, checksum-verified snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// Fingerprint of the writing program's schema.
    pub schema_fingerprint: u64,
    /// Run counters at snapshot time.
    pub meta: SnapshotMeta,
    /// One section per table, in the writing program's `TableId` order.
    pub tables: Vec<SnapshotTable>,
    /// Not-yet-executed Delta tuples: `(table index, fields)`.
    pub pending: Vec<(u32, Vec<Value>)>,
}

impl Snapshot {
    /// The snapshot's overall Gamma digest: the per-table content
    /// hashes combined in table order. Equal logical states produce
    /// equal digests (see [`super::integrity::ContentHash`]).
    pub fn digest(&self) -> u64 {
        super::combine_digest(
            self.tables
                .iter()
                .map(|t| (t.name.as_str(), t.content_hash)),
        )
    }
}

/// Reads and validates the snapshot at `path`.
pub fn read_snapshot(path: &Path) -> Result<Snapshot> {
    let bytes =
        std::fs::read(path).map_err(|e| JStarError::Io(format!("{}: {e}", path.display())))?;
    read_snapshot_bytes(&bytes)
}

/// Validates and decodes a snapshot image.
pub fn read_snapshot_bytes(bytes: &[u8]) -> Result<Snapshot> {
    const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 4;
    const FOOTER_LEN: usize = 8 + 8;
    if bytes.len() < HEADER_LEN + 8 + FOOTER_LEN {
        return Err(JStarError::CorruptSnapshot(format!(
            "file too short ({} bytes)",
            bytes.len()
        )));
    }

    // Layer 1: footer + checksum over the raw image.
    let magic_at = bytes.len() - FOOTER_LEN;
    if &bytes[magic_at..magic_at + 8] != format::FOOTER_MAGIC {
        return Err(JStarError::CorruptSnapshot(
            "missing footer magic (truncated file?)".to_string(),
        ));
    }
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    let actual = fnv1a_words(&bytes[..bytes.len() - 8]);
    if stored != actual {
        return Err(JStarError::CorruptSnapshot(format!(
            "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }

    // Layer 2: bounds-checked parse of the verified body.
    let mut r = ByteReader::new(&bytes[..magic_at]);
    if r.take(8)? != format::MAGIC {
        return Err(JStarError::CorruptSnapshot("bad magic".to_string()));
    }
    let version = r.u32()?;
    if version != format::VERSION {
        return Err(JStarError::CorruptSnapshot(format!(
            "unsupported snapshot version {version} (this build reads {})",
            format::VERSION
        )));
    }
    let schema_fingerprint = r.u64()?;
    let meta = SnapshotMeta {
        steps: r.u64()?,
        tuples_processed: r.u64()?,
    };
    let table_count = r.u32()? as usize;
    // Each section is at least 20 bytes (empty name + count + hash).
    if table_count > r.remaining() / 20 + 1 {
        return Err(JStarError::CorruptSnapshot(format!(
            "table count {table_count} exceeds input"
        )));
    }

    let mut tables = Vec::with_capacity(table_count);
    for _ in 0..table_count {
        let name = r.string()?;
        let count = r.u64()?;
        let content_hash = r.u64()?;
        // Each tuple record is at least 1 byte (its arity varint).
        if count > r.remaining() as u64 + 1 {
            return Err(JStarError::CorruptSnapshot(format!(
                "table {name}: tuple count {count} exceeds input"
            )));
        }
        let mut tuples = Vec::with_capacity(count as usize);
        let mut ch = ContentHash::new();
        for _ in 0..count {
            let (fields, raw) = r.tuple_record()?;
            ch.add_encoded(raw);
            tuples.push(fields);
        }
        // Layer 3: the decoded stream must reproduce the header digest.
        if ch.finish() != content_hash {
            return Err(JStarError::CorruptSnapshot(format!(
                "table {name}: content hash mismatch"
            )));
        }
        tables.push(SnapshotTable {
            name,
            content_hash,
            tuples,
        });
    }

    let pending_count = r.u64()?;
    // Each pending record is at least 5 bytes (table index + arity).
    if pending_count > (r.remaining() / 5 + 1) as u64 {
        return Err(JStarError::CorruptSnapshot(format!(
            "pending count {pending_count} exceeds input"
        )));
    }
    let mut pending = Vec::with_capacity(pending_count as usize);
    for _ in 0..pending_count {
        let table = r.u32()?;
        let (fields, _) = r.tuple_record()?;
        pending.push((table, fields));
    }

    if r.remaining() != 0 {
        return Err(JStarError::CorruptSnapshot(format!(
            "{} trailing bytes after pending section",
            r.remaining()
        )));
    }

    Ok(Snapshot {
        schema_fingerprint,
        meta,
        tables,
        pending,
    })
}
