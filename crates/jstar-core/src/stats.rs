//! Usage statistics and visualisation (§1.5).
//!
//! JStar ships "a logging system for recording usage statistics about each
//! table during a program run, and tools to visualise those logs as
//! annotated dependency graphs of the program execution. This is a useful
//! basis for choosing parallelisation strategies." This module is that
//! substrate: per-table atomic counters, an optional per-step log (the
//! parallelism profile), and DOT export of the rule dependency graph
//! annotated with the counters (the paper's Fig. 7-style views).

use jstar_check::sync::{AtomicU64, Mutex, Ordering};

/// Counters for one table.
#[derive(Debug, Default)]
pub struct TableStats {
    /// `put` calls naming this table.
    pub puts: AtomicU64,
    /// Tuples accepted into the Delta tree (after dedup).
    pub delta_inserts: AtomicU64,
    /// Fresh inserts into Gamma.
    pub gamma_fresh: AtomicU64,
    /// Duplicates dropped by Gamma (set semantics).
    pub gamma_dups: AtomicU64,
    /// Rule executions triggered by this table's tuples.
    pub triggers: AtomicU64,
    /// Queries answered against this table.
    pub queries: AtomicU64,
    /// Queries that the table's [`crate::engine::QueryPlan`] routed through
    /// an index (all index fields equality-bound), vs. full scans.
    pub queries_indexed: AtomicU64,
    /// Quiescent-point store compactions (tombstoned reservation slots
    /// physically reclaimed after lifetime hints pushed the table's
    /// tombstone fraction over
    /// [`crate::engine::EngineConfig::compact_tombstones_above`]).
    pub compactions: AtomicU64,
}

/// Plain snapshot of [`TableStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableStatsSnapshot {
    pub puts: u64,
    pub delta_inserts: u64,
    pub gamma_fresh: u64,
    pub gamma_dups: u64,
    pub triggers: u64,
    pub queries: u64,
    pub queries_indexed: u64,
    pub compactions: u64,
}

impl TableStats {
    pub fn snapshot(&self) -> TableStatsSnapshot {
        // ord: Relaxed — monotonic statistics counters; each value is
        // independently meaningful and nothing synchronises through them.
        TableStatsSnapshot {
            puts: self.puts.load(Ordering::Relaxed),
            delta_inserts: self.delta_inserts.load(Ordering::Relaxed),
            gamma_fresh: self.gamma_fresh.load(Ordering::Relaxed),
            gamma_dups: self.gamma_dups.load(Ordering::Relaxed),
            triggers: self.triggers.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            queries_indexed: self.queries_indexed.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }
}

/// One execution step of the all-minimums strategy.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Display form of the step's order key.
    pub key: String,
    /// Size of the equivalence class — the step's available parallelism.
    pub class_size: usize,
    /// Wall time of the step in microseconds.
    pub micros: u128,
}

/// Engine-wide statistics.
#[derive(Debug)]
pub struct EngineStats {
    pub tables: Vec<TableStats>,
    pub steps: AtomicU64,
    pub tuples_processed: AtomicU64,
    pub max_class: AtomicU64,
    /// Coordinator time spent absorbing staged tuples into the Delta queue
    /// (nanoseconds, summed over all steps; the sum of the partition and
    /// merge phases).
    pub drain_nanos: AtomicU64,
    /// Drain phase 1: swapping the per-worker staging bins out into
    /// per-partition runs (nanoseconds, summed over all steps).
    pub partition_nanos: AtomicU64,
    /// Drain phase 2: merging the partition runs into the Delta queue —
    /// parallel on the pool for large batches, sequential below the
    /// threshold (nanoseconds, summed over all steps).
    pub merge_nanos: AtomicU64,
    /// Drain work performed **concurrently with class execution** by the
    /// pipelined coordinator (epoch swaps plus background-lane merges,
    /// nanoseconds). This time is hidden under `execute_nanos`' wall
    /// clock rather than adding coordinator stall; `drain_nanos` keeps
    /// counting only the serial (execution-blocking) drain.
    pub overlap_nanos: AtomicU64,
    /// Time spent executing equivalence classes — Gamma inserts plus rule
    /// bodies (nanoseconds, summed over all steps; wall time of the step's
    /// execution phase, not CPU time across workers).
    pub execute_nanos: AtomicU64,
    /// Classes executed inline on the coordinator (width at or below the
    /// adaptive scheduler's inline threshold).
    pub inline_classes: AtomicU64,
    /// Classes fanned out to the fork/join pool.
    pub forked_classes: AtomicU64,
    /// Steps whose equivalence class was pre-extracted by the lookahead
    /// machine and survived every later epoch merge: the step's extract
    /// phase cost nothing on the critical path.
    pub lookahead_hits: AtomicU64,
    /// Speculative extractions invalidated by a merge whose minimum key
    /// ordered at or below the prepared class (the tuples were returned
    /// to the Delta queue and re-extracted).
    pub lookahead_misses: AtomicU64,
    /// Classes executed in batched delta-join mode (class size cleared
    /// [`crate::engine::EngineConfig::delta_join_threshold`] and the
    /// trigger table had a join-plan rule).
    pub delta_join_classes: AtomicU64,
    /// Batched Gamma probes issued by delta-join execution — one per
    /// (rule × distinct join-key group).
    pub delta_join_probes: AtomicU64,
    /// Trigger tuples folded into delta-join build tables (the delta
    /// side of the semi-naive join).
    pub delta_join_build_tuples: AtomicU64,
    /// Galloping cursor repositionings performed by leapfrog join
    /// walks (single-step `next` advances are free and not counted).
    pub join_seeks: AtomicU64,
    /// Sorted column views opened for leapfrog join walks (each also
    /// counts as one query against its table, keeping `gamma_probes`
    /// honest).
    pub join_cursor_opens: AtomicU64,
    /// Per-step log; only populated when
    /// [`crate::engine::EngineConfig::record_steps`] is set.
    pub step_log: Mutex<Vec<StepRecord>>,
}

impl EngineStats {
    pub fn new(num_tables: usize) -> Self {
        EngineStats {
            tables: (0..num_tables).map(|_| TableStats::default()).collect(),
            steps: AtomicU64::new(0),
            tuples_processed: AtomicU64::new(0),
            max_class: AtomicU64::new(0),
            drain_nanos: AtomicU64::new(0),
            partition_nanos: AtomicU64::new(0),
            merge_nanos: AtomicU64::new(0),
            overlap_nanos: AtomicU64::new(0),
            execute_nanos: AtomicU64::new(0),
            inline_classes: AtomicU64::new(0),
            forked_classes: AtomicU64::new(0),
            lookahead_hits: AtomicU64::new(0),
            lookahead_misses: AtomicU64::new(0),
            delta_join_classes: AtomicU64::new(0),
            delta_join_probes: AtomicU64::new(0),
            delta_join_build_tuples: AtomicU64::new(0),
            join_seeks: AtomicU64::new(0),
            join_cursor_opens: AtomicU64::new(0),
            step_log: Mutex::new(Vec::new()),
        }
    }

    pub fn record_step(&self, class_size: usize) {
        // ord: Relaxed — statistics counters, no cross-thread ordering
        // is derived from them.
        self.steps.fetch_add(1, Ordering::Relaxed);
        self.tuples_processed
            .fetch_add(class_size as u64, Ordering::Relaxed);
        self.max_class
            .fetch_max(class_size as u64, Ordering::Relaxed);
    }

    pub fn log_step(&self, rec: StepRecord) {
        self.step_log.lock().push(rec);
    }

    /// Histogram of equivalence-class sizes from the step log, as
    /// `(bucket_upper_bound, count)` pairs with power-of-two buckets.
    /// This is the "available parallelism" profile.
    pub fn class_size_histogram(&self) -> Vec<(usize, usize)> {
        let log = self.step_log.lock();
        let mut buckets: Vec<(usize, usize)> = Vec::new();
        for rec in log.iter() {
            let mut bound = 1usize;
            while bound < rec.class_size {
                bound *= 2;
            }
            match buckets.iter_mut().find(|(b, _)| *b == bound) {
                Some((_, c)) => *c += 1,
                None => buckets.push((bound, 1)),
            }
        }
        buckets.sort();
        buckets
    }

    /// Mean class size over the logged steps — a rough measure of how much
    /// parallelism the all-minimums strategy can exploit.
    pub fn mean_class_size(&self) -> f64 {
        let log = self.step_log.lock();
        if log.is_empty() {
            return 0.0;
        }
        log.iter().map(|r| r.class_size).sum::<usize>() as f64 / log.len() as f64
    }
}

impl EngineStats {
    /// Renders the per-step parallelism profile as an ASCII bar chart —
    /// the textual cousin of the paper's execution-visualisation views
    /// ("allow users to visually see the possible parallelism structure in
    /// their programs"). One row per step, bar length ∝ class size.
    pub fn render_parallelism_profile(&self, max_rows: usize) -> String {
        let log = self.step_log.lock();
        if log.is_empty() {
            return "(no step log — enable EngineConfig::record_steps)".into();
        }
        let max = log.iter().map(|r| r.class_size).max().unwrap_or(1).max(1);
        let mut out = String::new();
        let shown = log.len().min(max_rows);
        for rec in log.iter().take(shown) {
            let width = (rec.class_size * 40).div_ceil(max);
            out.push_str(&format!(
                "{:<24} |{:<40}| {}\n",
                truncate(&rec.key, 24),
                "█".repeat(width),
                rec.class_size
            ));
        }
        if log.len() > shown {
            out.push_str(&format!("... {} more steps\n", log.len() - shown));
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

/// A node/edge description of the program's rule dependency graph, used
/// for DOT export. Built by [`crate::program::Program::dependency_graph`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependencyGraph {
    /// Table names.
    pub tables: Vec<String>,
    /// `(rule name, trigger table index, output table indexes)`.
    pub rules: Vec<(String, usize, Vec<usize>)>,
}

impl DependencyGraph {
    /// Renders the graph in Graphviz DOT format. Tables are boxes
    /// (optionally annotated with put counts), rules are ellipses — the
    /// shapes of the paper's Fig. 7.
    pub fn to_dot(&self, stats: Option<&[TableStatsSnapshot]>) -> String {
        let mut out = String::from("digraph jstar {\n  rankdir=LR;\n");
        for (i, name) in self.tables.iter().enumerate() {
            let label = match stats.and_then(|s| s.get(i)) {
                Some(s) => format!("{name}\\nputs={} triggers={}", s.puts, s.triggers),
                None => name.clone(),
            };
            out.push_str(&format!(
                "  t{i} [shape=box, style=filled, fillcolor=lightblue, label=\"{label}\"];\n"
            ));
        }
        for (ri, (name, trigger, outputs)) in self.rules.iter().enumerate() {
            out.push_str(&format!(
                "  r{ri} [shape=ellipse, style=filled, fillcolor=salmon, label=\"{name}\"];\n"
            ));
            out.push_str(&format!("  t{trigger} -> r{ri} [style=bold];\n"));
            for o in outputs {
                out.push_str(&format!("  r{ri} -> t{o};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot() {
        let s = EngineStats::new(2);
        s.tables[0].puts.fetch_add(3, Ordering::Relaxed);
        s.tables[1].triggers.fetch_add(1, Ordering::Relaxed);
        s.record_step(5);
        s.record_step(2);
        assert_eq!(s.tables[0].snapshot().puts, 3);
        assert_eq!(s.tables[1].snapshot().triggers, 1);
        assert_eq!(s.steps.load(Ordering::Relaxed), 2);
        assert_eq!(s.tuples_processed.load(Ordering::Relaxed), 7);
        assert_eq!(s.max_class.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let s = EngineStats::new(0);
        for size in [1, 1, 2, 3, 5, 9, 17] {
            s.log_step(StepRecord {
                key: String::new(),
                class_size: size,
                micros: 0,
            });
        }
        let hist = s.class_size_histogram();
        assert_eq!(hist, vec![(1, 2), (2, 1), (4, 1), (8, 1), (16, 1), (32, 1)]);
        assert!((s.mean_class_size() - 38.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_log_mean_is_zero() {
        let s = EngineStats::new(0);
        assert_eq!(s.mean_class_size(), 0.0);
        assert!(s.class_size_histogram().is_empty());
    }

    #[test]
    fn parallelism_profile_renders_bars() {
        let s = EngineStats::new(0);
        s.log_step(StepRecord {
            key: "(Req)".into(),
            class_size: 4,
            micros: 10,
        });
        s.log_step(StepRecord {
            key: "(SumMonth)".into(),
            class_size: 12,
            micros: 10,
        });
        let chart = s.render_parallelism_profile(10);
        assert!(chart.contains("(Req)"));
        assert!(chart.contains("12"));
        assert!(chart.contains('█'));
        // Truncation of long logs.
        let chart = s.render_parallelism_profile(1);
        assert!(chart.contains("1 more steps"));
    }

    #[test]
    fn empty_profile_has_hint() {
        let s = EngineStats::new(0);
        assert!(s.render_parallelism_profile(5).contains("record_steps"));
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let g = DependencyGraph {
            tables: vec!["PvWattsRequest".into(), "PvWatts".into(), "SumMonth".into()],
            rules: vec![
                ("read".into(), 0, vec![1]),
                ("request-month".into(), 1, vec![2]),
                ("summarise".into(), 2, vec![]),
            ],
        };
        let dot = g.to_dot(None);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("PvWatts"));
        assert!(dot.contains("t0 -> r0"));
        assert!(dot.contains("r0 -> t1"));
        assert!(dot.contains("r2"));
    }

    #[test]
    fn dot_export_annotates_stats() {
        let g = DependencyGraph {
            tables: vec!["A".into()],
            rules: vec![],
        };
        let snap = TableStatsSnapshot {
            puts: 42,
            triggers: 7,
            ..Default::default()
        };
        let dot = g.to_dot(Some(&[snap]));
        assert!(dot.contains("puts=42"));
        assert!(dot.contains("triggers=7"));
    }
}
