//! Sequential ordered store — the paper's `TreeSet` default.

use super::{insert_locked, ColumnIndex, InsertOutcome, TableStore};
use crate::query::Query;
use crate::schema::TableDef;
use crate::tuple::Tuple;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::BTreeSet;
use std::sync::Arc;

/// An ordered tuple store backed by one `BTreeSet` behind a mutex.
///
/// This is the default Gamma data structure for sequential code (§5):
/// ordered traversal means "queries of any ordered subset of the tuples can
/// be performed reasonably efficiently". Queries that equality-constrain
/// the *first* column use a range scan over the tree instead of a full
/// scan (the `NavigableSet` subset trick).
pub struct BTreeStore {
    def: Arc<TableDef>,
    set: Mutex<BTreeSet<Tuple>>,
}

impl BTreeStore {
    pub fn new(def: Arc<TableDef>) -> Self {
        BTreeStore {
            def,
            set: Mutex::new(BTreeSet::new()),
        }
    }
}

impl TableStore for BTreeStore {
    fn insert(&self, t: Tuple) -> InsertOutcome {
        insert_locked(&self.def, &mut self.set.lock(), t)
    }

    fn insert_batch(&self, tuples: &[Tuple], outcomes: &mut Vec<InsertOutcome>) {
        // One lock acquisition for the whole batch.
        let mut set = self.set.lock();
        outcomes.extend(
            tuples
                .iter()
                .map(|t| insert_locked(&self.def, &mut set, t.clone())),
        );
    }

    fn contains(&self, t: &Tuple) -> bool {
        self.set.lock().contains(t)
    }

    fn len(&self) -> usize {
        self.set.lock().len()
    }

    fn for_each(&self, f: &mut dyn FnMut(&Tuple) -> bool) {
        for t in self.set.lock().iter() {
            if !f(t) {
                return;
            }
        }
    }

    fn query(&self, q: &Query, f: &mut dyn FnMut(&Tuple) -> bool) {
        let set = self.set.lock();
        // Narrow by the first column when it is equality-constrained:
        // tuples sort by fields, so rows with field0 == v are contiguous.
        if let Some(v) = q.eq_value(0) {
            let probe = Tuple::new(q.table, vec![v.clone()]);
            for t in set.range(probe..) {
                if t.get(0) != v {
                    break;
                }
                if q.matches(t) && !f(t) {
                    return;
                }
            }
            return;
        }
        for t in set.iter() {
            if q.matches(t) && !f(t) {
                return;
            }
        }
    }

    fn retain(&self, keep: &dyn Fn(&Tuple) -> bool) {
        self.set.lock().retain(|t| keep(t));
    }

    fn open_cursor(&self, field: usize) -> Arc<ColumnIndex> {
        if field != 0 {
            // Non-leading columns are unordered here; fall back to the
            // grouping pass.
            return Arc::new(ColumnIndex::build(field, &mut |emit| {
                self.for_each(&mut |t| {
                    emit(t);
                    true
                });
            }));
        }
        // Tuples sort by fields, so one linear pass over the tree yields
        // the field-0 groups already in ascending order.
        let set = self.set.lock();
        let mut groups: Vec<(crate::value::Value, Vec<Tuple>)> = Vec::new();
        for t in set.iter() {
            let v = t.get(0);
            match groups.last_mut() {
                Some((last, g)) if last == v => g.push(t.clone()),
                _ => groups.push((v.clone(), vec![t.clone()])),
            }
        }
        drop(set);
        match ColumnIndex::try_from_sorted(groups) {
            Ok(idx) => Arc::new(idx),
            // Unreachable while tree iteration is sorted, but a broken
            // producer must degrade to the (order-insensitive) grouping
            // pass rather than silently corrupt every later seek.
            Err(_) => Arc::new(ColumnIndex::build(0, &mut |emit| {
                self.for_each(&mut |t| {
                    emit(t);
                    true
                });
            })),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::testutil::{exercise_store_contract, keyed_def, kt};
    use crate::schema::TableId;
    use crate::value::Value;

    #[test]
    fn satisfies_store_contract() {
        let store = BTreeStore::new(keyed_def());
        exercise_store_contract(&store);
    }

    #[test]
    fn first_field_query_uses_range_and_is_correct() {
        let store = BTreeStore::new(keyed_def());
        for a in 0..100 {
            store.insert(kt(a, a * 10, "v"));
        }
        let q = Query::on(TableId(0)).eq(0, 42i64);
        let mut got = Vec::new();
        store.query(&q, &mut |t| {
            got.push(t.clone());
            true
        });
        assert_eq!(got, vec![kt(42, 420, "v")]);
    }

    #[test]
    fn iteration_is_sorted() {
        let store = BTreeStore::new(keyed_def());
        store.insert(kt(3, 0, "c"));
        store.insert(kt(1, 0, "a"));
        store.insert(kt(2, 0, "b"));
        let mut keys = Vec::new();
        store.for_each(&mut |t| {
            keys.push(t.int(0));
            true
        });
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn key_conflict_found_among_many() {
        let store = BTreeStore::new(keyed_def());
        for a in 0..50 {
            assert_eq!(store.insert(kt(a, a, "v")), InsertOutcome::Fresh);
        }
        assert_eq!(store.insert(kt(25, 99, "v")), InsertOutcome::KeyConflict);
        assert_eq!(store.insert(kt(25, 25, "v")), InsertOutcome::Duplicate);
    }

    #[test]
    fn field0_cursor_groups_off_the_sorted_tree() {
        let store = BTreeStore::new(crate::gamma::testutil::set_def());
        for (x, y) in [(3, 1), (1, 1), (3, 2), (2, 1), (3, 3)] {
            store.insert(Tuple::new(TableId(0), vec![Value::Int(x), Value::Int(y)]));
        }
        let idx = store.open_cursor(0);
        let mut c = idx.cursor();
        assert_eq!(c.key(), Some(&Value::Int(1)));
        assert_eq!(c.seek_exact(&Value::Int(3)).map(|g| g.len()), Some(3));
        // The fallback path over a non-leading column agrees.
        let idx1 = store.open_cursor(1);
        assert_eq!(idx1.len(), 3);
        let mut c1 = idx1.cursor();
        assert_eq!(c1.seek_exact(&Value::Int(1)).map(|g| g.len()), Some(3));
    }

    #[test]
    fn keyless_store_accepts_same_prefix() {
        let store = BTreeStore::new(crate::gamma::testutil::set_def());
        let a = Tuple::new(TableId(0), vec![Value::Int(1), Value::Int(2)]);
        let b = Tuple::new(TableId(0), vec![Value::Int(1), Value::Int(3)]);
        assert_eq!(store.insert(a), InsertOutcome::Fresh);
        assert_eq!(store.insert(b), InsertOutcome::Fresh);
        assert_eq!(store.len(), 2);
    }
}
