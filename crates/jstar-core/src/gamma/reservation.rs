//! Lock-free reservation-based tuple storage — the shared engine under
//! the concurrent Gamma stores.
//!
//! The paper's parallel defaults (`ConcurrentSkipListSet`,
//! `ConcurrentHashMap`) let every worker insert without a table-wide
//! lock. The previous Rust realisation approximated that with sharded
//! reader-writer locks, which left one writer lock acquisition on every
//! tuple of the put→Delta→Gamma hot path. [`ReservationTable`] removes
//! it with a **claim-slots-then-publish** scheme:
//!
//! 1. **Probe** — a deterministic linear-probe walk over a chain of
//!    geometrically growing segments, positioned by the tuple's
//!    *primary hash* (key fields for keyed tables, the whole tuple
//!    otherwise). Equal tuples — and, for keyed tables, key-conflicting
//!    tuples — always walk the same slot sequence, so duplicate and
//!    `->` violations are found on the walk itself. Each slot's state
//!    and hash are packed into one **tag word** in a contiguous array,
//!    so a probe step is a single cache-friendly atomic load; the slot
//!    payload (the tuple) is only touched on a tag match.
//! 2. **Claim** — the first `EMPTY` slot on the walk is reserved with a
//!    single CAS (`EMPTY → hash|RESERVED`). Losing the race just means
//!    re-examining what the winner put there.
//! 3. **Publish** — the tuple is written into the claimed slot's
//!    payload, then the tag is flipped to `hash|PUBLISHED` with a
//!    release store. Readers only dereference payloads whose tag they
//!    observed as `PUBLISHED` (acquire), so **no reader ever sees
//!    partial state**; a concurrent inserter that must know what a
//!    matching `RESERVED` slot holds spins for the handful of
//!    instructions between claim and publish.
//!
//! An optional **secondary chain index** (one atomic head per hash
//! bucket, entries linked after publication) gives the stores their
//! query narrowing — the hash store's index-key buckets and the
//! concurrent store's first-column narrowing — without reintroducing a
//! lock: a chain push is one CAS, and a chain link always points at a
//! fully published slot.
//!
//! Slots are never reused: `retain` flips rejected slots to `TOMBSTONE`
//! (readers skip them; probes walk past them) and the tuple memory is
//! reclaimed when the table drops. That keeps the claim invariant — the
//! set of `EMPTY` slots only shrinks, so "first empty on the walk" is a
//! stable meeting point for racing equal inserts — at the cost of
//! leaving discarded tuples physically allocated until the store goes
//! away, which is the right trade for lifetime hints that run a handful
//! of times per run.

use super::{pk_conflict, InsertOutcome};
use crate::schema::TableDef;
use crate::tuple::Tuple;
// Synchronisation comes from the jstar-check shim: real std/parking_lot
// types in production, instrumented model-checked types under
// `--features model-check` (see crates/jstar-check and CONCURRENCY.md).
use jstar_check::sync::{AtomicPtr, AtomicU64, AtomicUsize, Ordering, UnsafeCell};
use std::mem::MaybeUninit;

/// Tag states, packed into the low 2 bits of the tag word; the high 62
/// bits hold the primary hash. Transitions: `EMPTY → RESERVED →
/// PUBLISHED → TOMBSTONE`; nothing ever moves backwards, and only the
/// claimant writes the payload. `EMPTY` is the all-zero tag.
const EMPTY_TAG: u64 = 0;
const RESERVED: u64 = 1;
const PUBLISHED: u64 = 2;
const TOMBSTONE: u64 = 3;
const STATE_MASK: u64 = 0b11;
const HASH_MASK: u64 = !STATE_MASK;

/// Probes attempted per segment before the walk moves to the next
/// (larger) segment. Two pressures set it: a *full* early segment costs
/// a whole window of (contiguous) tag loads on every later probe, so it
/// must stay small; but a window that gives up too easily spills into a
/// sparse next segment long before the current one is usefully full —
/// and a 4×-larger, barely-used segment is pure scan overhead for
/// teardown and `for_each`. 64 keeps a segment usable to ~85 % load
/// while a full-window miss still reads only eight cache lines.
const PROBE_LIMIT: usize = 64;

/// Maximum number of ×4-growth segments; far beyond addressable memory.
const MAX_SEGMENTS: usize = 16;

/// Floor for segment 0's capacity. Production keeps it generous (see
/// [`ReservationTable::new`]); under `model-check` the floor drops to a
/// handful of slots so each of the checker's thousands of explored
/// executions allocates a toy table instead of megabytes.
#[cfg(not(feature = "model-check"))]
const MIN_INITIAL: usize = 1 << 17;
#[cfg(feature = "model-check")]
const MIN_INITIAL: usize = 1 << 4;

/// Sentinel for "no next entry" in a secondary chain. Zero — so chain
/// heads and slot payloads are valid in their all-zero state and
/// segments can be allocated with `alloc_zeroed`, which hands back
/// untouched (virtually zero) pages instead of memsetting megabytes per
/// store at engine construction. Real chain ids are offset by one
/// segment (see [`encode`]).
const NIL: u64 = 0;

/// Per-slot payload, parallel to the tag array. Written only by the
/// slot's claimant between claim and publish.
struct Payload {
    /// Secondary (index) hash.
    secondary: UnsafeCell<u64>,
    /// Next slot id in the secondary chain (encoded segment/offset).
    next: AtomicU64,
    /// The tuple; initialised iff the tag is `PUBLISHED` or `TOMBSTONE`.
    tuple: UnsafeCell<MaybeUninit<Tuple>>,
}

struct Segment {
    /// state|hash tag per slot — the only memory a probe step touches.
    tags: Box<[AtomicU64]>,
    payload: Box<[Payload]>,
    /// Claim journal: `slot offset + 1` per claimed slot, appended at
    /// publish time. Full scans (`for_each`, `retain`, drop) walk the
    /// journal's `cursor` prefix instead of the whole slot array — a
    /// generously-sized segment holding a handful of tuples is iterated
    /// in O(live), not O(capacity). Entry 0 means "append in flight":
    /// readers skip it (the insert has not returned yet).
    journal: Box<[AtomicU64]>,
    cursor: AtomicUsize,
    mask: usize,
}

/// A zeroed `AtomicU64` slice via the calloc fast path: the kernel's
/// zero pages back the allocation until a slot is actually claimed, so
/// a generously-sized empty segment costs virtual address space, not
/// resident memory or a memset. The shim owns the reinterpret (its
/// model atomics are wider than a `u64`, so only it knows when the
/// in-place cast is legal).
fn zeroed_atomics(n: usize) -> Box<[AtomicU64]> {
    jstar_check::sync::zeroed_atomic_u64_slice(n)
}

fn zeroed_payload(n: usize) -> Box<[Payload]> {
    // lint: allow(expect): capacity is bounded by MAX_SEGMENTS growth —
    // the layout cannot overflow before addressable memory runs out.
    let layout = std::alloc::Layout::array::<Payload>(n).expect("payload layout");
    // SAFETY: the all-zero bit pattern is a valid Payload (secondary 0,
    // next NIL, tuple uninitialised — only read once the tag says
    // PUBLISHED; the jstar-check shim types guarantee zero-validity as
    // part of their contract), and alloc_zeroed returns zeroed memory
    // of exactly this layout.
    unsafe {
        let ptr = std::alloc::alloc_zeroed(layout) as *mut Payload;
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, n))
    }
}

impl Segment {
    fn new(capacity: usize) -> Segment {
        Segment {
            tags: zeroed_atomics(capacity),
            payload: zeroed_payload(capacity),
            journal: zeroed_atomics(capacity),
            cursor: AtomicUsize::new(0),
            mask: capacity - 1,
        }
    }

    /// Records a freshly published slot in the claim journal.
    fn journal_push(&self, idx: usize) {
        // ord: Relaxed — the cursor only reserves a unique journal cell;
        // visibility of the entry itself rides on the Release store below.
        let j = self.cursor.fetch_add(1, Ordering::Relaxed);
        // Every claim takes a distinct slot, so at most `capacity`
        // entries are ever appended.
        // ord: Release — orders the slot's publication (tag store above
        // in program order) before the entry becomes readable to journal
        // walkers that acquire it.
        self.journal[j].store(idx as u64 + 1, Ordering::Release);
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        // Walk the claim journal, not the slot array: the journal holds
        // exactly the occupied slots (so a sparse segment costs O(live))
        // *in claim order*, which tracks tuple allocation order — and
        // freeing 100k heap objects in allocation order is several times
        // cheaper than freeing them in (randomised) hash order.
        //
        // SAFETY: a journal entry is only written after publication and
        // tombstoning never touches the payload, so every journaled slot
        // holds an initialised tuple; drop has exclusive access.
        let n = (*self.cursor.get_mut()).min(self.journal.len());
        for j in 0..n {
            let entry = *self.journal[j].get_mut();
            if entry == 0 {
                continue;
            }
            let idx = (entry - 1) as usize;
            // SAFETY: see the block comment above — journaled ⇒ published
            // ⇒ initialised, and `&mut self` gives exclusive access.
            unsafe { self.payload[idx].tuple.get_mut().assume_init_drop() };
        }
    }
}

/// The lock-free claim-then-publish tuple table shared by
/// [`super::HashStore`] and [`super::ConcurrentOrderedStore`].
pub(crate) struct ReservationTable {
    /// Lazily allocated segments; segment `k` has `initial << (2k)`
    /// slots (×4 growth keeps the chain short, since every probe walks
    /// the full paths of the filled earlier segments).
    segments: [AtomicPtr<Segment>; MAX_SEGMENTS],
    /// Capacity of segment 0 (a power of two).
    initial: usize,
    /// Published minus tombstoned tuples.
    len: AtomicUsize,
    /// Tombstoned slots — dead tuples still physically allocated
    /// (slots are never reused). The stores' quiescent-point compaction
    /// watches this against `len` to decide when a rebuild pays.
    dead: AtomicUsize,
    /// Secondary chain heads (`None` when the owner never scans by
    /// secondary hash).
    index_heads: Option<Box<[AtomicU64]>>,
    index_mask: usize,
}

// SAFETY: all shared mutation goes through the atomics; the UnsafeCells
// are written only by the slot's unique claimant (guaranteed by the
// EMPTY→RESERVED tag CAS) and read only after an acquire load observes
// a PUBLISHED tag, which the claimant's release store ordered after the
// writes. Tuple itself is Send + Sync.
unsafe impl Send for ReservationTable {}
unsafe impl Sync for ReservationTable {}

/// Hashes a sequence of values for probe placement and index chains.
pub(crate) fn hash_values<'a>(values: impl IntoIterator<Item = &'a crate::value::Value>) -> u64 {
    crate::fxhash::hash_seq(values)
}

/// Chunk-count policy for parallel snapshot export: one chunk per
/// available worker, floored so no chunk covers fewer than ~4k journal
/// entries — below that the fork/join overhead eats the encode win.
pub(crate) fn export_chunks_for(entries: usize, hint: usize) -> usize {
    const MIN_CHUNK_ENTRIES: usize = 4096;
    hint.min(entries / MIN_CHUNK_ENTRIES).max(1)
}

/// Best-effort cache prefetch of the line holding `p`. A hint only —
/// any address is allowed, nothing is dereferenced.
#[inline(always)]
fn prefetch(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch has no memory effects; invalid addresses are
    // silently ignored by the hardware.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

impl ReservationTable {
    /// Creates a table with `capacity_hint` rounded up to a power of two
    /// (minimum 2^17 slots) as the first segment size. The floor is
    /// deliberately generous: every probe through a *grown* table pays a
    /// full-path walk in each filled earlier segment, so staying in one
    /// segment is worth the ~5 MB of lazily-mapped (`alloc_zeroed`, so
    /// untouched pages stay virtual) address space per table that
    /// actually stores tuples. `with_index` allocates the secondary
    /// chain heads.
    pub fn new(capacity_hint: usize, with_index: bool) -> ReservationTable {
        let initial = capacity_hint
            .clamp(MIN_INITIAL, 1 << 22)
            .next_power_of_two();
        // Chain heads only spread chains across buckets; they need not
        // scale with the slot table (chain *length* is set by how many
        // tuples share an index key, not by head count).
        let index_cap = initial.min(1 << 14);
        ReservationTable {
            segments: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            initial,
            len: AtomicUsize::new(0),
            dead: AtomicUsize::new(0),
            index_heads: with_index.then(|| zeroed_atomics(index_cap)),
            index_mask: index_cap - 1,
        }
    }

    fn capacity_of(&self, k: usize) -> usize {
        self.initial << (2 * k).min(48)
    }

    fn segment(&self, k: usize) -> Option<&Segment> {
        // ord: Acquire — pairs with the installer's AcqRel CAS so the
        // segment's freshly allocated arrays are visible before use.
        let ptr = self.segments[k].load(Ordering::Acquire);
        // SAFETY: segments are only ever installed (never freed before
        // the table drops), so a non-null pointer stays valid for &self.
        unsafe { ptr.as_ref() }
    }

    /// Returns segment `k`, allocating (and racing to install) it if
    /// missing.
    fn segment_or_alloc(&self, k: usize) -> &Segment {
        if let Some(seg) = self.segment(k) {
            return seg;
        }
        let fresh = Box::into_raw(Box::new(Segment::new(self.capacity_of(k))));
        // ord: AcqRel on success — Release publishes the segment's arrays
        // to other threads' Acquire loads, Acquire orders our own later
        // slot accesses after the install. Acquire on failure — we adopt
        // the winner's segment and must see its contents.
        match self.segments[k].compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            // SAFETY: we just installed it; never freed while the table
            // lives.
            Ok(_) => unsafe { &*fresh },
            Err(winner) => {
                // SAFETY: `fresh` was never shared.
                drop(unsafe { Box::from_raw(fresh) });
                // SAFETY: as in `segment`.
                unsafe { &*winner }
            }
        }
    }

    /// Reads the tuple of a slot whose tag was observed `PUBLISHED` (or
    /// `TOMBSTONE`).
    ///
    /// SAFETY (caller): an acquire load of the slot's tag must have
    /// shown state `PUBLISHED` or `TOMBSTONE`.
    unsafe fn tuple_of(payload: &Payload) -> &Tuple {
        payload.tuple.with(|p| {
            // SAFETY: per the caller contract the claimant's release
            // store of the tag happened-before our acquire load, so the
            // MaybeUninit was fully written and is never written again.
            unsafe { (*p).assume_init_ref() }
        })
    }

    /// Waits out the claim→publish window of a reserved slot, returning
    /// the tag it settled into.
    fn await_published(tag: &AtomicU64) -> u64 {
        let mut spins = 0u32;
        loop {
            // ord: Acquire — once the claimant's Release publish is
            // observed, the payload writes it ordered are visible too.
            let t = tag.load(Ordering::Acquire);
            if t & STATE_MASK != RESERVED {
                return t;
            }
            spins += 1;
            if spins < 64 {
                jstar_check::sync::spin_loop();
            } else {
                // The claimant was preempted mid-publish; yield rather
                // than burn the core.
                jstar_check::sync::yield_now();
            }
        }
    }

    /// Inserts `t`, detecting duplicates (and, for keyed tables, `->`
    /// conflicts) along the primary probe walk. `primary` must be the
    /// hash of `t`'s key fields under `def` ([`hash_values`] over
    /// [`Tuple::key_fields`]); `secondary` is the owner's index hash
    /// (ignored unless the table was built `with_index`).
    pub fn insert(&self, def: &TableDef, primary: u64, secondary: u64, t: Tuple) -> InsertOutcome {
        let keyed = def.key_arity.is_some();
        let my_hash = primary & HASH_MASK;
        for k in 0..MAX_SEGMENTS {
            let seg = self.segment_or_alloc(k);
            let start = primary as usize;
            for i in 0..PROBE_LIMIT.min(seg.tags.len()) {
                let idx = (start + i) & seg.mask;
                let tag = &seg.tags[idx];
                // ord: Acquire — a PUBLISHED tag must make the payload
                // visible before `tuple_of` dereferences it.
                let mut current = tag.load(Ordering::Acquire);
                loop {
                    if current == EMPTY_TAG {
                        // ord: Acquire/Acquire — claiming publishes
                        // nothing (the payload is written *after* the
                        // CAS), so no Release is needed; both outcomes
                        // take Acquire because a lost race may leave a
                        // published slot whose payload we go on to read.
                        match tag.compare_exchange(
                            EMPTY_TAG,
                            my_hash | RESERVED,
                            Ordering::Acquire,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => {
                                let payload = &seg.payload[idx];
                                // SAFETY: the claim CAS makes this thread
                                // the slot's unique writer; no reader
                                // dereferences the payload until the
                                // Release store below.
                                payload.secondary.with_mut(|p| unsafe { *p = secondary });
                                payload.tuple.with_mut(|p| unsafe { (*p).write(t) });
                                // ord: Release — publishes the payload
                                // writes above; pairs with every reader's
                                // Acquire load of this tag.
                                tag.store(my_hash | PUBLISHED, Ordering::Release);
                                // ord: Relaxed — len is a statistic, not
                                // a synchronisation edge.
                                self.len.fetch_add(1, Ordering::Relaxed);
                                seg.journal_push(idx);
                                if self.index_heads.is_some() {
                                    self.link_index(secondary, encode(k, idx));
                                }
                                return InsertOutcome::Fresh;
                            }
                            Err(actual) => {
                                // Lost the claim race: re-examine what
                                // the winner is publishing.
                                current = actual;
                                continue;
                            }
                        }
                    }
                    // Occupied. Only tuples whose tag hash matches ours
                    // can be duplicates or key conflicts — anything else
                    // is just a slot to walk past.
                    if current & HASH_MASK != my_hash {
                        break;
                    }
                    match current & STATE_MASK {
                        RESERVED => {
                            // A matching tuple is mid-publish: must know
                            // what lands here before deciding.
                            current = Self::await_published(tag);
                            continue;
                        }
                        TOMBSTONE => break,
                        _ => {
                            // PUBLISHED with a matching hash. SAFETY:
                            // acquire-observed published tag.
                            let existing = unsafe { Self::tuple_of(&seg.payload[idx]) };
                            if *existing == t {
                                return InsertOutcome::Duplicate;
                            }
                            if keyed && pk_conflict(def, existing, &t) {
                                return InsertOutcome::KeyConflict;
                            }
                            break;
                        }
                    }
                }
            }
        }
        unreachable!("reservation table exhausted {MAX_SEGMENTS} segments");
    }

    /// Claims the first `EMPTY` slot on `primary`'s probe walk and
    /// publishes `t` there **without** the duplicate / key-conflict
    /// scan — the snapshot-import fast path. Sound only for trusted,
    /// already-deduplicated input (a checksum-verified snapshot written
    /// from a store that enforced uniqueness at insert time): skipping
    /// the scan on untrusted input would let two equal tuples occupy
    /// distinct slots and break the probe-walk meeting-point invariant.
    pub fn insert_unchecked(&self, primary: u64, secondary: u64, t: Tuple) {
        let my_hash = primary & HASH_MASK;
        for k in 0..MAX_SEGMENTS {
            let seg = self.segment_or_alloc(k);
            let start = primary as usize;
            for i in 0..PROBE_LIMIT.min(seg.tags.len()) {
                let idx = (start + i) & seg.mask;
                let tag = &seg.tags[idx];
                // ord: Acquire ×3 — as in `insert`: claims publish
                // nothing, but an occupied slot's payload may be read.
                if tag.load(Ordering::Acquire) != EMPTY_TAG
                    || tag
                        .compare_exchange(
                            EMPTY_TAG,
                            my_hash | RESERVED,
                            Ordering::Acquire,
                            Ordering::Acquire,
                        )
                        .is_err()
                {
                    continue;
                }
                let payload = &seg.payload[idx];
                // SAFETY: the claim CAS makes this thread the slot's
                // unique writer; no reader dereferences the payload
                // before the Release store below.
                payload.secondary.with_mut(|p| unsafe { *p = secondary });
                payload.tuple.with_mut(|p| unsafe { (*p).write(t) });
                // ord: Release — publishes the payload writes; pairs
                // with readers' Acquire tag loads.
                tag.store(my_hash | PUBLISHED, Ordering::Release);
                // ord: Relaxed — statistic only.
                self.len.fetch_add(1, Ordering::Relaxed);
                seg.journal_push(idx);
                if self.index_heads.is_some() {
                    self.link_index(secondary, encode(k, idx));
                }
                return;
            }
        }
        unreachable!("reservation table exhausted {MAX_SEGMENTS} segments");
    }

    /// Links a published slot into its secondary chain. The link CAS is
    /// a release, so a reader that acquires the head sees the slot fully
    /// published.
    fn link_index(&self, secondary: u64, id: u64) {
        // lint: allow(expect): callers gate on index_heads.is_some().
        let heads = self.index_heads.as_ref().expect("index allocated");
        let head = &heads[(secondary as usize) & self.index_mask];
        let (k, idx) = decode(id);
        // lint: allow(expect): `id` encodes a slot this thread just
        // published, so its segment is installed.
        let payload = &self.segment(k).expect("own segment").payload[idx];
        // ord: Acquire — the predecessor slot we link in front of must
        // be fully published before chain walkers can reach it via us.
        let mut current = head.load(Ordering::Acquire);
        loop {
            // ord: Relaxed — `next` only becomes reachable through the
            // head CAS below, whose Release publishes it.
            payload.next.store(current, Ordering::Relaxed);
            // ord: AcqRel/Acquire — Release publishes our `next` write
            // (and our already-published slot) to scanners' Acquire head
            // loads; Acquire re-reads the new predecessor on retry.
            match head.compare_exchange_weak(current, id, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// True if an identical tuple is published. `primary` as in
    /// [`ReservationTable::insert`].
    pub fn contains(&self, primary: u64, t: &Tuple) -> bool {
        let mut found = false;
        self.probe_primary(primary, &mut |existing| {
            if existing == t {
                found = true;
                return false;
            }
            true
        });
        found
    }

    /// Visits every published tuple on `primary`'s probe walk whose tag
    /// hash matches; stop early by returning `false`.
    ///
    /// Because inserts claim the first empty slot of the same walk, all
    /// matching tuples lie before the walk's first currently-empty slot
    /// — so this terminates at the first `EMPTY` without missing
    /// anything, exactly like the insert-side scan.
    pub fn probe_primary(&self, primary: u64, f: &mut dyn FnMut(&Tuple) -> bool) {
        let my_hash = primary & HASH_MASK;
        for k in 0..MAX_SEGMENTS {
            let Some(seg) = self.segment(k) else { return };
            let start = primary as usize;
            for i in 0..PROBE_LIMIT.min(seg.tags.len()) {
                let idx = (start + i) & seg.mask;
                // ord: Acquire — pairs with the claimant's Release
                // publish so `tuple_of` sees the full payload.
                let tag = seg.tags[idx].load(Ordering::Acquire);
                if tag == EMPTY_TAG {
                    return;
                }
                // Reserved-but-matching ⇒ not yet published ⇒ not yet
                // visible; tombstoned ⇒ no longer visible.
                if tag & HASH_MASK == my_hash && tag & STATE_MASK == PUBLISHED {
                    // SAFETY: acquire-observed published tag.
                    if !f(unsafe { Self::tuple_of(&seg.payload[idx]) }) {
                        return;
                    }
                }
            }
        }
    }

    /// Walks the secondary chain of `secondary`, visiting published
    /// tuples whose stored secondary hash matches; stop early by
    /// returning `false`. Panics if the table was built without an
    /// index.
    pub fn scan_index(&self, secondary: u64, f: &mut dyn FnMut(&Tuple) -> bool) {
        // lint: allow(expect): index-built stores only; the panic
        // documents the API contract.
        let heads = self.index_heads.as_ref().expect("index allocated");
        // ord: Acquire — pairs with link_index's Release CAS: the head
        // entry's slot and its `next` write are visible.
        let mut id = heads[(secondary as usize) & self.index_mask].load(Ordering::Acquire);
        while id != NIL {
            let (k, idx) = decode(id);
            // lint: allow(expect): chain ids are created after their
            // slot's segment was installed.
            let seg = self.segment(k).expect("linked slot's segment exists");
            // Linked ⇒ published (links happen after publication); the
            // tag read only distinguishes live from tombstoned.
            // ord: Acquire — as in probe_primary.
            let tag = seg.tags[idx].load(Ordering::Acquire);
            let payload = &seg.payload[idx];
            if tag & STATE_MASK == PUBLISHED
                // SAFETY: acquire-observed published tag (both reads).
                && payload.secondary.with(|p| unsafe { *p }) == secondary
                && !f(unsafe { Self::tuple_of(payload) })
            {
                return;
            }
            // ord: Acquire — chain traversal: the next entry's slot must
            // be visible before we dereference it.
            id = payload.next.load(Ordering::Acquire);
        }
    }

    /// Number of live (published, not tombstoned) tuples.
    pub fn len(&self) -> usize {
        // ord: Relaxed — statistic only.
        self.len.load(Ordering::Relaxed)
    }

    /// Visits every live tuple (in claim order within each segment);
    /// stop early by returning `false`. Walks the claim journal, so the
    /// cost scales with tuples ever published, not slot capacity.
    pub fn for_each(&self, f: &mut dyn FnMut(&Tuple) -> bool) {
        for k in 0..MAX_SEGMENTS {
            let Some(seg) = self.segment(k) else { return };
            // ord: Acquire — cursor only bounds the walk; each entry's
            // visibility rides on its own Release store (0 ⇒ skip).
            let n = seg.cursor.load(Ordering::Acquire).min(seg.journal.len());
            for j in 0..n {
                // ord: Acquire — pairs with journal_push's Release, so
                // the published slot behind the entry is visible.
                let entry = seg.journal[j].load(Ordering::Acquire);
                if entry == 0 {
                    continue; // append in flight — not yet visible
                }
                let idx = (entry - 1) as usize;
                // ord: Acquire — as in probe_primary.
                if seg.tags[idx].load(Ordering::Acquire) & STATE_MASK == PUBLISHED {
                    // SAFETY: acquire-observed published tag.
                    if !f(unsafe { Self::tuple_of(&seg.payload[idx]) }) {
                        return;
                    }
                }
            }
        }
    }

    /// Number of claim-journal entries across all segments — the
    /// position space [`ReservationTable::for_each_journal_range`]
    /// partitions for chunked snapshot export. Includes in-flight and
    /// tombstoned entries (the range walk skips them), so it is an
    /// upper bound on live tuples. Stable only while no inserts run.
    pub fn journal_entries(&self) -> usize {
        let mut n = 0;
        for k in 0..MAX_SEGMENTS {
            let Some(seg) = self.segment(k) else { break };
            // ord: Acquire — as in for_each.
            n += seg.cursor.load(Ordering::Acquire).min(seg.journal.len());
        }
        n
    }

    /// Visits the live tuples at global claim-journal positions
    /// `lo..hi` (segments concatenated in order — the same enumeration
    /// [`ReservationTable::for_each`] walks). Covering a partition of
    /// `0..journal_entries()` chunk by chunk yields exactly the
    /// `for_each` sequence, which is what lets snapshot export encode
    /// chunks on separate threads yet still produce a byte-identical
    /// image. Callers must hold the quiescence the snapshot path
    /// already guarantees: concurrent inserts would move the cursor
    /// between the caller's partitioning and this walk.
    ///
    /// Unlike `for_each`, this walk prefetches a lookahead window:
    /// each visit chases a journal → tag/payload → tuple heap → field
    /// slice chain of dependent cache misses over hash-scattered
    /// slots, and that latency — not the encode arithmetic — is what
    /// dominates a snapshot of a large table. Issuing the chain's
    /// loads a few entries ahead (deeper levels at shorter distances,
    /// so each level's prefetch has landed before the next level reads
    /// through it) overlaps the misses with the current tuple's
    /// encode work.
    pub fn for_each_journal_range(&self, lo: usize, hi: usize, f: &mut dyn FnMut(&Tuple)) {
        // Lookahead distances: tag/payload cells first, then the
        // tuple's heap block, then its field slice.
        const PF_SLOT: usize = 32;
        const PF_TUPLE: usize = 16;
        const PF_FIELDS: usize = 8;
        let mut base = 0usize;
        for k in 0..MAX_SEGMENTS {
            if base >= hi {
                return;
            }
            let Some(seg) = self.segment(k) else { return };
            // ord: Acquire — as in for_each.
            let n = seg.cursor.load(Ordering::Acquire).min(seg.journal.len());
            let start = lo.saturating_sub(base).min(n);
            let end = hi.saturating_sub(base).min(n);
            // Published tuple (if any) at journal position `j`.
            let tuple_at = |j: usize| -> Option<&Tuple> {
                // ord: Acquire ×2 — as in for_each.
                let entry = seg.journal[j].load(Ordering::Acquire);
                if entry == 0 {
                    return None; // append in flight — not yet visible
                }
                let idx = (entry - 1) as usize;
                if seg.tags[idx].load(Ordering::Acquire) & STATE_MASK == PUBLISHED {
                    // SAFETY: acquire-observed published tag.
                    Some(unsafe { Self::tuple_of(&seg.payload[idx]) })
                } else {
                    None
                }
            };
            // Software pipeline: each position is resolved exactly once
            // — PF_TUPLE entries ahead of its visit, right after its
            // slot prefetch has landed — and parked in a ring the later
            // stages and the visit read back, instead of re-chasing the
            // journal → tag → payload loads at every stage. The ring
            // holds `PF_TUPLE` in-flight positions, so every reader
            // distance must stay below that.
            let mut ring: [Option<&Tuple>; PF_TUPLE] = [None; PF_TUPLE];
            for j in start..(start + PF_TUPLE).min(end) {
                let t = tuple_at(j);
                if let Some(t) = t {
                    prefetch(t.heap_ptr());
                }
                ring[j % PF_TUPLE] = t;
            }
            for j in start..end {
                if j + PF_SLOT < end {
                    // ord: Relaxed — prefetch hint only; the real read
                    // happens in tuple_at with Acquire.
                    let entry = seg.journal[j + PF_SLOT].load(Ordering::Relaxed);
                    if entry != 0 {
                        let idx = (entry - 1) as usize;
                        prefetch(std::ptr::addr_of!(seg.tags[idx]) as *const u8);
                        prefetch(std::ptr::addr_of!(seg.payload[idx]) as *const u8);
                    }
                }
                // Take this visit's tuple before its ring slot is
                // recycled for the position PF_TUPLE ahead.
                let cur = ring[j % PF_TUPLE];
                if j + PF_TUPLE < end {
                    let t = tuple_at(j + PF_TUPLE);
                    if let Some(t) = t {
                        prefetch(t.heap_ptr());
                    }
                    ring[j % PF_TUPLE] = t;
                }
                if j + PF_FIELDS < end {
                    if let Some(t) = ring[(j + PF_FIELDS) % PF_TUPLE] {
                        let fields = t.fields();
                        let p = fields.as_ptr() as *const u8;
                        prefetch(p);
                        // A handful of 16-byte values spills past one
                        // cache line.
                        if fields.len() > 4 {
                            // SAFETY: pointer math within (one past)
                            // the live slice; never dereferenced.
                            prefetch(unsafe { p.add(64) });
                        }
                    }
                }
                if let Some(t) = cur {
                    f(t);
                }
            }
            base += n;
        }
    }

    /// Tombstones every live tuple `keep` rejects. Rejected tuples stay
    /// allocated (slots are never reused) but disappear from all reads.
    pub fn retain(&self, keep: &dyn Fn(&Tuple) -> bool) {
        for k in 0..MAX_SEGMENTS {
            let Some(seg) = self.segment(k) else { return };
            // ord: Acquire ×3 — as in for_each.
            let n = seg.cursor.load(Ordering::Acquire).min(seg.journal.len());
            for j in 0..n {
                let entry = seg.journal[j].load(Ordering::Acquire);
                if entry == 0 {
                    continue;
                }
                let idx = (entry - 1) as usize;
                let tag = &seg.tags[idx];
                let current = tag.load(Ordering::Acquire);
                if current & STATE_MASK == PUBLISHED {
                    // SAFETY: acquire-observed published tag; tombstoning
                    // never touches the payload, so concurrent readers'
                    // references stay valid.
                    let t = unsafe { Self::tuple_of(&seg.payload[idx]) };
                    // ord: AcqRel/Relaxed — success keeps the tombstone
                    // ordered after our payload read; on failure another
                    // thread already tombstoned this slot and there is
                    // nothing new to observe.
                    if !keep(t)
                        && tag
                            .compare_exchange(
                                current,
                                (current & HASH_MASK) | TOMBSTONE,
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    {
                        // ord: Relaxed ×2 — statistics only.
                        self.len.fetch_sub(1, Ordering::Relaxed);
                        self.dead.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Number of tombstoned (dead but still allocated) slots.
    pub fn tombstones(&self) -> usize {
        // ord: Relaxed — statistic only.
        self.dead.load(Ordering::Relaxed)
    }

    /// Clamps `hi` to the longest in-order journal prefix of `lo..hi`
    /// with no append still in flight: the returned bound `s` satisfies
    /// `lo <= s <= hi` and every journal entry in `lo..s` is non-zero —
    /// i.e. its tuple's publish ([`Segment::journal_push`] runs *after*
    /// the tag's Release store) is visible to this thread. The index
    /// cache stamps entries with such a stable bound so a later
    /// catch-up walk over the suffix never skips a tuple whose journal
    /// entry was mid-append at stamp time.
    pub fn journal_stable_prefix(&self, lo: usize, hi: usize) -> usize {
        let mut base = 0usize;
        for k in 0..MAX_SEGMENTS {
            if base >= hi {
                return hi;
            }
            let Some(seg) = self.segment(k) else {
                return hi.min(base);
            };
            // ord: Acquire — as in for_each.
            let n = seg.cursor.load(Ordering::Acquire).min(seg.journal.len());
            let start = lo.saturating_sub(base).min(n);
            let end = hi.saturating_sub(base).min(n);
            for j in start..end {
                // ord: Acquire — pairs with journal_push's Release; a
                // non-zero entry proves the slot behind it is published.
                if seg.journal[j].load(Ordering::Acquire) == 0 {
                    return base + j; // append in flight — stop here
                }
            }
            base += n;
        }
        hi.min(base)
    }
}

/// A [`ReservationTable`] slot that supports **quiescent replacement** —
/// the stores' compaction hook.
///
/// Normal operation is one acquire load away from the plain table: every
/// reader/writer goes through [`SwappableTable::get`]. Compaction
/// ([`SwappableTable::replace_quiescent`]) swaps in a freshly rebuilt
/// table and frees the old one immediately, which is only sound under
/// the engine's quiescence contract (see
/// [`crate::gamma::TableStore::maybe_compact`]): no other thread may be
/// inside the store — or hold a reference obtained from it — for the
/// duration of the call. The engine guarantees that by compacting only
/// at the coordinator's maintain phase, after the step's fork/join
/// scope has joined.
pub(crate) struct SwappableTable {
    ptr: AtomicPtr<ReservationTable>,
    /// Bumped by every [`SwappableTable::replace_quiescent`] — both
    /// compaction and snapshot import. Cached column indexes record the
    /// epoch they were built under; a mismatch means journal positions
    /// no longer line up and the index must be rebuilt wholesale.
    epoch: AtomicU64,
}

impl SwappableTable {
    pub fn new(table: ReservationTable) -> SwappableTable {
        SwappableTable {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(table))),
            epoch: AtomicU64::new(0),
        }
    }

    /// Number of wholesale replacements so far (see the `epoch` field).
    pub fn epoch(&self) -> u64 {
        // ord: Acquire — pairs with replace_quiescent's Release bump so
        // an observer that sees the new epoch also sees the swap that
        // caused it (belt and braces under the quiescence contract).
        self.epoch.load(Ordering::Acquire)
    }

    /// The current table.
    #[inline]
    pub fn get(&self) -> &ReservationTable {
        // ord: Acquire — pairs with replace_quiescent's AcqRel swap so
        // the fresh table's contents are visible even to threads whose
        // only edge to the swap is this load (belt and braces: the
        // quiescence contract already orders replacement).
        //
        // SAFETY: the pointer is always a live Box installed by `new` or
        // `replace_quiescent`; replacement only happens when no reference
        // is outstanding (the quiescence contract), so dereferencing for
        // `&self`'s lifetime is sound.
        unsafe { &*self.ptr.load(Ordering::Acquire) }
    }

    /// Replaces the table, dropping the old one. Quiescent-point only —
    /// see the type docs.
    pub fn replace_quiescent(&self, fresh: ReservationTable) {
        // ord: AcqRel — Release publishes the fresh table's contents to
        // readers' Acquire loads; Acquire orders the old table's teardown
        // after every prior access to it.
        let old = self
            .ptr
            .swap(Box::into_raw(Box::new(fresh)), Ordering::AcqRel);
        // ord: Release — the epoch bump is ordered after the swap above,
        // so a reader that observes the new epoch (Acquire in `epoch`)
        // cannot still resolve journal positions against the old table.
        self.epoch.fetch_add(1, Ordering::Release);
        // SAFETY: `old` was the installed Box; the quiescence contract
        // says no reader holds a reference into it.
        drop(unsafe { Box::from_raw(old) });
    }

    /// The current [`super::cache::IndexStamp`] of this table — the
    /// shared body of the stores' [`crate::gamma::TableStore::index_stamp`].
    pub fn index_stamp(&self) -> super::cache::IndexStamp {
        let t = self.get();
        super::cache::IndexStamp {
            epoch: self.epoch(),
            generation: t.journal_entries(),
            tombstones: t.tombstones(),
        }
    }

    /// The shared body of the stores'
    /// [`crate::gamma::TableStore::for_each_journal_suffix`]: clamps
    /// `hi` to the stable journal prefix (no in-flight append skipped),
    /// walks the live tuples of `[lo, clamped)` in journal order, and
    /// returns the clamped bound.
    pub fn for_each_journal_suffix(
        &self,
        lo: usize,
        hi: usize,
        f: &mut dyn FnMut(&Tuple),
    ) -> usize {
        let t = self.get();
        let stable = t.journal_stable_prefix(lo, hi);
        t.for_each_journal_range(lo, stable, f);
        stable
    }

    /// True when more than `max_fraction` of the ever-occupied slots are
    /// tombstones (and at least one is).
    pub fn needs_compaction(&self, max_fraction: f64) -> bool {
        let t = self.get();
        let dead = t.tombstones();
        let live = t.len();
        dead > 0 && (dead as f64) > max_fraction * ((dead + live) as f64)
    }

    /// The shared quiescent-rebuild protocol behind the stores'
    /// [`crate::gamma::TableStore::maybe_compact`]: if the tombstone
    /// fraction exceeds `max_fraction`, re-place every live tuple into
    /// a fresh table sized for the live count and swap it in —
    /// tombstoned slots, their probe shadows and their stale chain
    /// links all vanish at once. Returns true when a rebuild ran.
    ///
    /// `hashes(t)` must return the `(primary, secondary)` pair the
    /// owning store passes to [`ReservationTable::insert`] — the store
    /// recomputes them because the table itself cannot (the tag words
    /// only keep the high primary-hash bits). Quiescent-point only: see
    /// the type docs for the exclusivity contract.
    pub fn compact_quiescent(
        &self,
        def: &TableDef,
        max_fraction: f64,
        with_index: bool,
        mut hashes: impl FnMut(&Tuple) -> (u64, u64),
    ) -> bool {
        if !self.needs_compaction(max_fraction) {
            return false;
        }
        let old = self.get();
        let fresh = ReservationTable::new(old.len().max(1), with_index);
        old.for_each(&mut |t| {
            let (primary, secondary) = hashes(t);
            fresh.insert(def, primary, secondary, t.clone());
            true
        });
        self.replace_quiescent(fresh);
        true
    }

    /// Replaces the table's contents wholesale with `tuples` — the
    /// shared snapshot-import protocol behind the stores'
    /// [`crate::gamma::TableStore::import_snapshot`]. Builds a fresh
    /// table sized for the incoming count and claims slots directly
    /// ([`ReservationTable::insert_unchecked`] — a verified snapshot is
    /// trusted, deduplicated input), then swaps it in, so import is
    /// O(incoming) regardless of what the old table held. `hashes` as
    /// in [`SwappableTable::compact_quiescent`]. Quiescent-point only:
    /// see the type docs.
    pub fn import_quiescent(
        &self,
        with_index: bool,
        tuples: Vec<Tuple>,
        mut hashes: impl FnMut(&Tuple) -> (u64, u64),
    ) {
        let fresh = ReservationTable::new(tuples.len().max(1), with_index);
        for t in tuples {
            let (primary, secondary) = hashes(&t);
            fresh.insert_unchecked(primary, secondary, t);
        }
        self.replace_quiescent(fresh);
    }
}

impl Drop for SwappableTable {
    fn drop(&mut self) {
        // SAFETY: exclusive access; the pointer is the installed Box.
        drop(unsafe { Box::from_raw(*self.ptr.get_mut()) });
    }
}

// SAFETY: the inner table is Send + Sync; the pointer is only mutated
// under the quiescence contract documented above.
unsafe impl Send for SwappableTable {}
unsafe impl Sync for SwappableTable {}

impl Drop for ReservationTable {
    fn drop(&mut self) {
        for seg in &mut self.segments {
            let ptr = *seg.get_mut();
            if !ptr.is_null() {
                // SAFETY: installed via Box::into_raw, dropped exactly
                // once here.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

/// Encodes a (segment, offset) pair as a chain id. Segments are offset
/// by one so that id 0 stays the [`NIL`] sentinel.
fn encode(segment: usize, offset: usize) -> u64 {
    ((segment as u64 + 1) << 56) | offset as u64
}

fn decode(id: u64) -> (usize, usize) {
    ((id >> 56) as usize - 1, (id & ((1 << 56) - 1)) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::testutil::{keyed_def, kt, set_def};
    use crate::schema::TableId;
    use crate::value::Value;
    use std::sync::Arc;

    fn primary_of(def: &TableDef, t: &Tuple) -> u64 {
        hash_values(t.key_fields(def))
    }

    #[test]
    fn claim_publish_roundtrip() {
        let def = keyed_def();
        let table = ReservationTable::new(16, false);
        let t = kt(1, 10, "x");
        let p = primary_of(&def, &t);
        assert_eq!(table.insert(&def, p, 0, t.clone()), InsertOutcome::Fresh);
        assert_eq!(
            table.insert(&def, p, 0, t.clone()),
            InsertOutcome::Duplicate
        );
        assert!(table.contains(p, &t));
        assert_eq!(table.len(), 1);
        let conflict = kt(1, 11, "x");
        assert_eq!(
            table.insert(&def, primary_of(&def, &conflict), 0, conflict),
            InsertOutcome::KeyConflict
        );
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn grows_past_the_first_segment() {
        let def = set_def();
        let table = ReservationTable::new(1, false);
        // Far more tuples than the floor-sized first segment (2^17
        // slots) holds, so the walk crosses segment boundaries.
        let n = 200_000i64;
        for i in 0..n {
            let t = Tuple::new(TableId(0), vec![Value::Int(i), Value::Int(i)]);
            let p = primary_of(&def, &t);
            assert_eq!(table.insert(&def, p, 0, t), InsertOutcome::Fresh);
        }
        assert_eq!(table.len(), n as usize);
        let mut seen = 0;
        table.for_each(&mut |_| {
            seen += 1;
            true
        });
        assert_eq!(seen, n);
        // Every tuple still findable (dedup across segments).
        for i in (0..n).step_by(971) {
            let t = Tuple::new(TableId(0), vec![Value::Int(i), Value::Int(i)]);
            assert_eq!(
                table.insert(&def, primary_of(&def, &t), 0, t),
                InsertOutcome::Duplicate
            );
        }
    }

    #[test]
    fn secondary_chain_narrows_scans() {
        let def = set_def();
        let table = ReservationTable::new(64, true);
        for i in 0..500i64 {
            let t = Tuple::new(TableId(0), vec![Value::Int(i % 5), Value::Int(i)]);
            let p = primary_of(&def, &t);
            let s = hash_values([t.get(0)]);
            table.insert(&def, p, s, t);
        }
        let want = hash_values([&Value::Int(3)]);
        let mut got = 0;
        table.scan_index(want, &mut |t| {
            if t.get(0) == &Value::Int(3) {
                got += 1;
            }
            true
        });
        assert_eq!(got, 100);
    }

    #[test]
    fn retain_tombstones_are_invisible_everywhere() {
        let def = set_def();
        let table = ReservationTable::new(64, true);
        for i in 0..100i64 {
            let t = Tuple::new(TableId(0), vec![Value::Int(i), Value::Int(i)]);
            let p = primary_of(&def, &t);
            table.insert(&def, p, hash_values([t.get(0)]), t);
        }
        table.retain(&|t| t.int(0) < 10);
        assert_eq!(table.len(), 10);
        let mut seen = 0;
        table.for_each(&mut |_| {
            seen += 1;
            true
        });
        assert_eq!(seen, 10);
        let gone = Tuple::new(TableId(0), vec![Value::Int(50), Value::Int(50)]);
        assert!(!table.contains(primary_of(&def, &gone), &gone));
        let mut chain_hits = 0;
        table.scan_index(hash_values([gone.get(0)]), &mut |_| {
            chain_hits += 1;
            true
        });
        assert_eq!(chain_hits, 0);
    }

    #[test]
    fn racing_equal_inserts_yield_one_fresh() {
        let def = Arc::new(keyed_def());
        let table = Arc::new(ReservationTable::new(64, false));
        let pool = jstar_pool::ThreadPool::new(4);
        let fresh = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                let table = Arc::clone(&table);
                let def = Arc::clone(&def);
                let fresh = &fresh;
                s.spawn(move |_| {
                    for a in 0..500 {
                        let t = kt(a, a, "v");
                        let p = primary_of(&def, &t);
                        if table.insert(&def, p, 0, t) == InsertOutcome::Fresh {
                            fresh.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(fresh.load(Ordering::Relaxed), 500);
        assert_eq!(table.len(), 500);
    }

    #[test]
    fn retain_counts_tombstones() {
        let def = set_def();
        let table = ReservationTable::new(64, false);
        for i in 0..100i64 {
            let t = Tuple::new(TableId(0), vec![Value::Int(i), Value::Int(i)]);
            let p = primary_of(&def, &t);
            table.insert(&def, p, 0, t);
        }
        assert_eq!(table.tombstones(), 0);
        table.retain(&|t| t.int(0) < 25);
        assert_eq!(table.tombstones(), 75);
        assert_eq!(table.len(), 25);
        // Idempotent: already-dead slots are not re-counted.
        table.retain(&|t| t.int(0) < 25);
        assert_eq!(table.tombstones(), 75);
    }

    #[test]
    fn swappable_table_replacement_drops_the_old_table() {
        let def = set_def();
        let swap = SwappableTable::new(ReservationTable::new(16, false));
        for i in 0..50i64 {
            let t = Tuple::new(TableId(0), vec![Value::Int(i), Value::Int(i)]);
            let p = primary_of(&def, &t);
            swap.get().insert(&def, p, 0, t);
        }
        swap.get().retain(&|t| t.int(0) < 10);
        assert!(swap.needs_compaction(0.5));
        assert!(!swap.needs_compaction(0.9));

        // Rebuild by hand, as the stores do.
        let fresh = ReservationTable::new(16, false);
        swap.get().for_each(&mut |t| {
            fresh.insert(&def, primary_of(&def, t), 0, t.clone());
            true
        });
        swap.replace_quiescent(fresh);
        assert_eq!(swap.get().len(), 10);
        assert_eq!(swap.get().tombstones(), 0);
        assert!(!swap.needs_compaction(0.0));
        let t = Tuple::new(TableId(0), vec![Value::Int(3), Value::Int(3)]);
        assert!(swap.get().contains(primary_of(&def, &t), &t));
    }

    #[test]
    fn import_quiescent_rebuilds_with_unchecked_claims() {
        let def = set_def();
        let swap = SwappableTable::new(ReservationTable::new(16, true));
        // Pre-import contents (including tombstones) must vanish.
        for i in 0..20i64 {
            let t = Tuple::new(TableId(0), vec![Value::Int(i), Value::Int(i)]);
            let p = primary_of(&def, &t);
            swap.get().insert(&def, p, hash_values([t.get(0)]), t);
        }
        swap.get().retain(&|t| t.int(0) < 5);

        let incoming: Vec<Tuple> = (100..150i64)
            .map(|i| Tuple::new(TableId(0), vec![Value::Int(i % 7), Value::Int(i)]))
            .collect();
        swap.import_quiescent(true, incoming, |t| {
            (hash_values(t.key_fields(&def)), hash_values([t.get(0)]))
        });

        assert_eq!(swap.get().len(), 50);
        assert_eq!(swap.get().tombstones(), 0);
        let gone = Tuple::new(TableId(0), vec![Value::Int(3), Value::Int(3)]);
        assert!(!swap.get().contains(primary_of(&def, &gone), &gone));
        let here = Tuple::new(TableId(0), vec![Value::Int(100 % 7), Value::Int(100)]);
        assert!(swap.get().contains(primary_of(&def, &here), &here));
        // The secondary chains were rebuilt too.
        let mut chain_hits = 0;
        swap.get()
            .scan_index(hash_values([&Value::Int(3)]), &mut |t| {
                if t.get(0) == &Value::Int(3) {
                    chain_hits += 1;
                }
                true
            });
        assert_eq!(chain_hits, (100..150).filter(|i| i % 7 == 3).count());
        // Unchecked claims still dedup correctly through normal inserts
        // afterwards.
        let dup = Tuple::new(TableId(0), vec![Value::Int(101 % 7), Value::Int(101)]);
        assert_eq!(
            swap.get()
                .insert(&def, primary_of(&def, &dup), 0, dup.clone()),
            InsertOutcome::Duplicate
        );
    }

    #[test]
    fn id_encoding_roundtrips() {
        for (k, off) in [(0usize, 0usize), (3, 17), (15, (1 << 30) - 1)] {
            assert_eq!(decode(encode(k, off)), (k, off));
        }
    }
}

/// Exhaustive interleaving checks for the claim→publish protocol,
/// explored by the jstar-check scheduler. Run with
/// `cargo test -p jstar-core --features model-check`; CONCURRENCY.md
/// has the happens-before argument these tests pin down.
#[cfg(all(test, feature = "model-check"))]
mod model_tests {
    use super::*;
    use crate::gamma::testutil::{keyed_def, kt, set_def};
    use crate::schema::TableId;
    use crate::value::Value;
    use jstar_check::{thread, Checker};
    use std::sync::Arc;

    fn primary_of(def: &TableDef, t: &Tuple) -> u64 {
        hash_values(t.key_fields(def))
    }

    /// Two threads race to insert the same keyed tuple: the
    /// EMPTY → RESERVED claim CAS must elect exactly one winner in
    /// every interleaving, and the loser must come back with
    /// `Duplicate` after awaiting the winner's publish.
    #[test]
    fn claim_has_exactly_one_winner() {
        let report = Checker::new().check(|| {
            let def = Arc::new(keyed_def());
            let table = Arc::new(ReservationTable::new(2, false));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let def = Arc::clone(&def);
                    let table = Arc::clone(&table);
                    thread::spawn(move || {
                        let t = kt(1, 10, "x");
                        let p = primary_of(&def, &t);
                        table.insert(&def, p, 0, t)
                    })
                })
                .collect();
            let outcomes: Vec<_> = workers.into_iter().map(|w| w.join()).collect();
            let fresh = outcomes
                .iter()
                .filter(|o| **o == InsertOutcome::Fresh)
                .count();
            assert_eq!(fresh, 1, "outcomes: {outcomes:?}");
            assert!(outcomes
                .iter()
                .all(|o| matches!(o, InsertOutcome::Fresh | InsertOutcome::Duplicate)));
            assert_eq!(table.len(), 1);
        });
        report.assert_ok();
        assert!(report.complete, "exploration hit a budget cap");
    }

    /// A probe racing a publish must either miss the tuple or see it
    /// fully formed — never torn. The shim's race detector additionally
    /// fails the run if the probe ever touches the payload cell without
    /// the publish edge, so this pins the Acquire-tag / Release-publish
    /// pairing, not just the assertion below.
    #[test]
    fn readers_never_observe_partial_tuples() {
        let report = Checker::new().check(|| {
            let def = Arc::new(keyed_def());
            let table = Arc::new(ReservationTable::new(2, false));
            let writer = {
                let def = Arc::clone(&def);
                let table = Arc::clone(&table);
                thread::spawn(move || {
                    let t = kt(3, 30, "v");
                    table.insert(&def, primary_of(&def, &t), 0, t);
                })
            };
            let reader = {
                let def = Arc::clone(&def);
                let table = Arc::clone(&table);
                thread::spawn(move || {
                    let probe = kt(3, 30, "v");
                    let p = primary_of(&def, &probe);
                    let mut seen = 0u32;
                    table.probe_primary(p, &mut |t| {
                        assert_eq!((t.int(0), t.int(1)), (3, 30));
                        seen += 1;
                        true
                    });
                    seen
                })
            };
            writer.join();
            assert!(reader.join() <= 1);
            // join gave us the publish edge: the tuple is visible now.
            let t = kt(3, 30, "v");
            assert!(table.contains(primary_of(&def, &t), &t));
        });
        report.assert_ok();
        assert!(report.complete, "exploration hit a budget cap");
    }

    /// Compaction swap under the engine's quiescence contract: the
    /// maintain thread rebuilds + swaps, then releases a worker through
    /// a flag (modelling the coordinator's phase barrier). The worker
    /// must see the fresh table fully built through that edge — pinning
    /// that SwappableTable's AcqRel swap + Acquire get suffice and the
    /// rebuild leaks no tombstones.
    #[test]
    fn quiescent_swap_publishes_the_fresh_table() {
        let report = Checker::new().check(|| {
            let def = Arc::new(set_def());
            let swap = Arc::new(SwappableTable::new(ReservationTable::new(2, false)));
            // Seed two tuples and tombstone one, as compaction finds it.
            for i in 0..2i64 {
                let t = Tuple::new(TableId(0), vec![Value::Int(i), Value::Int(i)]);
                let p = primary_of(&def, &t);
                swap.get().insert(&def, p, 0, t);
            }
            swap.get().retain(&|t| t.int(0) == 0);
            let phase = Arc::new(AtomicUsize::new(0));
            let maintainer = {
                let def = Arc::clone(&def);
                let swap = Arc::clone(&swap);
                let phase = Arc::clone(&phase);
                thread::spawn(move || {
                    let ran = swap.compact_quiescent(&def, 0.25, false, |t| {
                        (hash_values(t.key_fields(&def)), 0)
                    });
                    assert!(ran);
                    phase.store(1, Ordering::Release);
                })
            };
            let worker = {
                let def = Arc::clone(&def);
                let swap = Arc::clone(&swap);
                let phase = Arc::clone(&phase);
                thread::spawn(move || {
                    while phase.load(Ordering::Acquire) == 0 {
                        jstar_check::sync::spin_loop();
                    }
                    let table = swap.get();
                    assert_eq!(table.len(), 1);
                    assert_eq!(table.tombstones(), 0);
                    let live = Tuple::new(TableId(0), vec![Value::Int(0), Value::Int(0)]);
                    assert!(table.contains(primary_of(&def, &live), &live));
                })
            };
            maintainer.join();
            worker.join();
        });
        report.assert_ok();
        assert!(report.complete, "exploration hit a budget cap");
    }
}
