//! Sorted per-column cursors — the seek/next walk surface of the
//! worst-case-optimal join lowering.
//!
//! A [`ColumnIndex`] is an immutable sorted view of one column of a
//! Gamma store: every distinct value of that column in ascending order,
//! each paired with the tuples carrying it. It is built once per join
//! walk by [`super::TableStore::open_cursor`] and shared (it is handed
//! out in an `Arc`) by every worker participating in the walk; each
//! worker positions its own lightweight [`ColumnCursor`] over it.
//!
//! The cursor distinguishes the two leapfrog-triejoin motions:
//!
//! * [`ColumnCursor::next`] — advance one distinct value. Constant
//!   time, *not* counted as a seek.
//! * [`ColumnCursor::seek`] — position at the first value `>=` a
//!   target. When a single `next` step is not enough, the cursor
//!   gallops (exponential probe, then binary search), and **that** is
//!   what the seek counter counts: the number of logarithmic search
//!   operations, the cursor-walk analogue of a hash probe. A dense
//!   intersection that mostly steps forward therefore reports far
//!   fewer seeks than it visits keys — which is exactly the economy
//!   the leapfrog walk is chosen for.

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A store-iteration callback: invoked with a sink that must be fed
/// every live tuple of the table. How [`ColumnIndex::build`] borrows a
/// store's `for_each` without naming the store type.
pub type TupleVisit<'a> = dyn FnMut(&mut dyn FnMut(&Tuple)) + 'a;

/// An immutable sorted view of one column of a table store: distinct
/// values ascending, each with its group of tuples (in store iteration
/// order). Shared across the workers of one join walk.
pub struct ColumnIndex {
    groups: Vec<(Value, Vec<Tuple>)>,
}

impl ColumnIndex {
    /// Builds the index by grouping `tuples`-producing iteration on
    /// `field`. Used by the default [`super::TableStore::open_cursor`];
    /// stores with an ordered representation can construct the groups
    /// directly from their sorted iteration instead.
    pub fn build(field: usize, visit: &mut TupleVisit<'_>) -> ColumnIndex {
        let mut map: BTreeMap<Value, Vec<Tuple>> = BTreeMap::new();
        visit(&mut |t| {
            map.entry(t.get(field).clone()).or_default().push(t.clone());
        });
        ColumnIndex {
            groups: map.into_iter().collect(),
        }
    }

    /// Builds the index from groups already sorted ascending by value —
    /// the ordered-store fast path. Callers must uphold the sort order;
    /// it is debug-asserted.
    pub fn from_sorted(groups: Vec<(Value, Vec<Tuple>)>) -> ColumnIndex {
        debug_assert!(
            groups.windows(2).all(|w| w[0].0 < w[1].0),
            "ColumnIndex groups must be strictly ascending by value"
        );
        ColumnIndex { groups }
    }

    /// Like [`ColumnIndex::from_sorted`], but the strictly-ascending
    /// contract is verified in release builds too (one linear pass of
    /// value comparisons — cheap next to the sort that produced the
    /// groups) and a violation comes back as a typed error instead of
    /// silently corrupting every later seek. The ordered-store fast
    /// paths use this so a mis-sorted producer is caught at build time.
    pub fn try_from_sorted(groups: Vec<(Value, Vec<Tuple>)>) -> crate::error::Result<ColumnIndex> {
        if let Some(i) = (1..groups.len()).find(|&i| groups[i - 1].0 >= groups[i].0) {
            return Err(crate::error::JStarError::Other(format!(
                "ColumnIndex::try_from_sorted: groups not strictly ascending \
                 at position {i} ({:?} !< {:?})",
                groups[i - 1].0,
                groups[i].0
            )));
        }
        Ok(ColumnIndex { groups })
    }

    /// The sorted `(value, group)` pairs — read-only view for tests
    /// asserting caught-up and cold-built indexes are identical.
    #[cfg(test)]
    pub(crate) fn groups(&self) -> &[(Value, Vec<Tuple>)] {
        &self.groups
    }

    /// Two-way merges a sorted batch of *new* groups into this index,
    /// producing the caught-up index: values interleave in ascending
    /// order, and where a value exists on both sides the new tuples are
    /// appended **after** the cached ones — new tuples carry later
    /// journal positions, so the merged group order stays journal order,
    /// exactly what a cold rebuild over the longer journal would emit.
    /// `new` must be strictly ascending (like `from_sorted`'s input).
    pub(crate) fn merge_suffix(&self, new: Vec<(Value, Vec<Tuple>)>) -> ColumnIndex {
        let old = &self.groups;
        let mut merged: Vec<(Value, Vec<Tuple>)> = Vec::with_capacity(old.len() + new.len());
        let mut oi = 0;
        for (v, g) in new {
            while oi < old.len() && old[oi].0 < v {
                merged.push(old[oi].clone());
                oi += 1;
            }
            if oi < old.len() && old[oi].0 == v {
                let mut both = old[oi].1.clone();
                both.extend(g);
                merged.push((v, both));
                oi += 1;
            } else {
                merged.push((v, g));
            }
        }
        merged.extend_from_slice(&old[oi..]);
        ColumnIndex { groups: merged }
    }

    /// Rough heap footprint for the cache's byte-bounded LRU: exact
    /// accounting of refcounted tuple internals is not worth the
    /// bookkeeping, so every tuple is charged a flat estimate.
    pub(crate) fn approx_bytes(&self) -> usize {
        const PER_TUPLE: usize = std::mem::size_of::<Tuple>() + 48;
        let per_group = std::mem::size_of::<(Value, Vec<Tuple>)>();
        self.groups
            .iter()
            .map(|(_, g)| per_group + g.len() * PER_TUPLE)
            .sum()
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// A fresh cursor positioned at the first (smallest) value.
    pub fn cursor(self: &Arc<Self>) -> ColumnCursor {
        ColumnCursor {
            index: Arc::clone(self),
            pos: 0,
            seeks: 0,
        }
    }
}

/// One worker's position over a shared [`ColumnIndex`] — the seek/next
/// cursor of the leapfrog walk. Cheap to create (an `Arc` clone and two
/// integers), so parallel walks give every worker its own.
pub struct ColumnCursor {
    index: Arc<ColumnIndex>,
    pos: usize,
    /// Galloping repositioning searches performed (see module docs —
    /// single-step advances are not seeks).
    seeks: u64,
}

impl ColumnCursor {
    /// The value at the cursor, or `None` once exhausted.
    pub fn key(&self) -> Option<&Value> {
        self.index.groups.get(self.pos).map(|(v, _)| v)
    }

    /// The tuples carrying the current value, or `None` once exhausted.
    pub fn group(&self) -> Option<&[Tuple]> {
        self.index.groups.get(self.pos).map(|(_, g)| g.as_slice())
    }

    /// True when the cursor has moved past the last value.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.index.groups.len()
    }

    /// Advances one distinct value (constant time; not a seek).
    pub fn next(&mut self) {
        if self.pos < self.index.groups.len() {
            self.pos += 1;
        }
    }

    /// Positions the cursor at the first value `>= target` and returns
    /// the group when that value equals `target` exactly.
    ///
    /// Already at-or-past the target: free. One `next` step away: one
    /// constant-time advance. Anything further — forward *or* backward
    /// (later join stages seek in data order, not sorted order) — is a
    /// counted galloping search.
    pub fn seek_exact(&mut self, target: &Value) -> Option<&[Tuple]> {
        self.seek(target);
        match self.index.groups.get(self.pos) {
            Some((v, g)) if v == target => Some(g.as_slice()),
            _ => None,
        }
    }

    /// Positions the cursor at the first value `>= target` (see
    /// [`ColumnCursor::seek_exact`] for the cost/counting contract).
    pub fn seek(&mut self, target: &Value) {
        let groups = &self.index.groups;
        // Backward target: restart with one binary search.
        if self.pos > 0 {
            if let Some((prev, _)) = groups.get(self.pos - 1) {
                if target <= prev {
                    self.seeks += 1;
                    self.pos = groups.partition_point(|(v, _)| v < target);
                    return;
                }
            }
        }
        match groups.get(self.pos) {
            None => {}
            Some((v, _)) if v >= target => {}
            _ => {
                // One step forward covers the common dense-walk case.
                self.pos += 1;
                if matches!(groups.get(self.pos), Some((v, _)) if v < target) {
                    // Gallop: exponential probe from here, then binary
                    // search inside the bracketing window. At loop exit
                    // `hi` is either the end or the first value that may
                    // be >= target, so the partition point of [lo, hi)
                    // is the global first-geq position.
                    self.seeks += 1;
                    let lo = self.pos;
                    let mut step = 1usize;
                    let mut hi = lo;
                    while hi < groups.len() && groups[hi].0 < *target {
                        step *= 2;
                        hi = (hi + step).min(groups.len());
                    }
                    self.pos = lo + groups[lo..hi].partition_point(|(v, _)| v < target);
                }
            }
        }
    }

    /// Counted galloping seeks so far (see module docs).
    pub fn seeks(&self) -> u64 {
        self.seeks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(vals: &[i64]) -> Arc<ColumnIndex> {
        let mut map: BTreeMap<Value, Vec<Tuple>> = BTreeMap::new();
        for &v in vals {
            map.entry(Value::Int(v)).or_default().push(Tuple::new(
                crate::schema::TableId(0),
                vec![Value::Int(v), Value::Int(v * 10)],
            ));
        }
        Arc::new(ColumnIndex::from_sorted(map.into_iter().collect()))
    }

    #[test]
    fn empty_index_cursor_is_exhausted() {
        let idx = index(&[]);
        assert!(idx.is_empty());
        let mut c = idx.cursor();
        assert!(c.is_exhausted());
        assert_eq!(c.key(), None);
        assert_eq!(c.group(), None);
        assert_eq!(c.seek_exact(&Value::Int(5)), None);
        c.next();
        assert!(c.is_exhausted());
    }

    #[test]
    fn degenerate_single_value_index() {
        let idx = index(&[7]);
        let mut c = idx.cursor();
        assert_eq!(c.key(), Some(&Value::Int(7)));
        assert_eq!(c.seek_exact(&Value::Int(7)).map(|g| g.len()), Some(1));
        // Seeking below the only value lands on it without matching.
        assert_eq!(c.seek_exact(&Value::Int(6)), None);
        assert_eq!(c.key(), Some(&Value::Int(7)));
        assert_eq!(c.seek_exact(&Value::Int(8)), None);
        assert!(c.is_exhausted());
    }

    #[test]
    fn duplicate_keys_group_together() {
        let idx = index(&[3, 3, 3, 9, 9]);
        assert_eq!(idx.len(), 2, "two distinct values");
        let mut c = idx.cursor();
        assert_eq!(c.group().map(|g| g.len()), Some(3));
        c.next();
        assert_eq!(c.key(), Some(&Value::Int(9)));
        assert_eq!(c.group().map(|g| g.len()), Some(2));
        c.next();
        assert!(c.is_exhausted());
    }

    #[test]
    fn dense_forward_walk_counts_no_seeks() {
        let idx = index(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut c = idx.cursor();
        for v in 1..=8 {
            assert!(c.seek_exact(&Value::Int(v)).is_some(), "v={v}");
        }
        assert_eq!(c.seeks(), 0, "adjacent advances are next()s, not seeks");
    }

    #[test]
    fn long_jumps_gallop_and_count() {
        let vals: Vec<i64> = (0..1000).collect();
        let idx = index(&vals);
        let mut c = idx.cursor();
        assert!(c.seek_exact(&Value::Int(0)).is_some());
        assert!(c.seek_exact(&Value::Int(900)).is_some());
        assert_eq!(c.seeks(), 1, "one gallop for the long jump");
        // Backward seek restarts with a counted binary search.
        assert!(c.seek_exact(&Value::Int(17)).is_some());
        assert_eq!(c.seeks(), 2);
        assert_eq!(c.key(), Some(&Value::Int(17)));
    }

    #[test]
    fn seek_to_missing_value_lands_on_successor() {
        let idx = index(&[10, 20, 30, 40, 50, 60, 70]);
        let mut c = idx.cursor();
        assert_eq!(c.seek_exact(&Value::Int(35)), None);
        assert_eq!(c.key(), Some(&Value::Int(40)), "first value >= target");
        assert_eq!(c.seek_exact(&Value::Int(71)), None);
        assert!(c.is_exhausted());
    }

    #[test]
    fn seek_positions_match_linear_scan_reference() {
        // Randomised-ish sweep: every (index contents, target) pair must
        // land exactly where a linear scan would.
        let vals: Vec<i64> = vec![2, 3, 5, 8, 13, 21, 34, 55, 89];
        let idx = index(&vals);
        for start in 0..vals.len() {
            for target in 0..100i64 {
                let mut c = idx.cursor();
                c.seek(&Value::Int(vals[start]));
                c.seek(&Value::Int(target));
                let want = vals.iter().position(|&v| v >= target);
                assert_eq!(
                    c.key(),
                    want.map(|i| &idx.groups[i].0),
                    "start={start} target={target}"
                );
            }
        }
    }
}
