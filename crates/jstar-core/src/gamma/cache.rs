//! Generation-stamped cache of [`ColumnIndex`] column views — the
//! incremental-maintenance layer under the leapfrog join lowering.
//!
//! PR 9's join walk rebuilt each probe table's sorted column view from a
//! full scan-and-sort of live Gamma on every open, so iterative programs
//! re-sorted largely-unchanged tables step after step. This cache keeps
//! each built view and stamps it with an [`IndexStamp`]:
//!
//! * **generation** — the reservation table's claim-journal length at
//!   build time, clamped to the *stable prefix* (the longest prefix with
//!   no append still in flight — see
//!   [`super::reservation::ReservationTable::journal_stable_prefix`]).
//!   The journal is append-only, so a later open catches up by sorting
//!   only the suffix `[stamp.generation, now)` and two-way merging it
//!   into the cached groups — O(new·log new + merged) instead of
//!   O(live·log live).
//! * **epoch** — bumped by every quiescent table replacement
//!   (compaction, snapshot import). Journal positions do not survive a
//!   rebuild, so an epoch mismatch invalidates wholesale.
//! * **tombstones** — lifetime-hint `retain` kills tuples without
//!   touching the journal; a changed tombstone count also invalidates
//!   wholesale (hints run a handful of times per run).
//!
//! Catch-up preserves the cold-build contract exactly: a cold build
//! walks the journal in order, so group-internal tuple order is journal
//! order; suffix tuples carry later journal positions than every cached
//! tuple, so appending them after the cached group
//! ([`ColumnIndex::merge_suffix`]) reproduces the order a cold rebuild
//! over the longer journal would emit. Stores without a claim journal
//! ([`super::BTreeStore`], custom stores) report no stamp and stay on
//! the cold path.
//!
//! Concurrency: one mutex per table guards that table's `field → entry`
//! map, and the build/catch-up runs *under* the lock — racing openers of
//! the same table serialize, and the loser gets a pure hit instead of
//! duplicating the sort. Eager-refresh jobs (the coordinator's maintain
//! phase submits them on the pool's background lane) take the same lock,
//! so they are ordinary racing openers; the happens-before edge that
//! makes the suffix walk sound is the claim journal's own publish
//! protocol (see CONCURRENCY.md protocol 6).

use super::cursor::ColumnIndex;
use super::TableStore;
use crate::tuple::Tuple;
use crate::value::Value;
// Synchronisation comes from the jstar-check shim: real std/parking_lot
// types in production, instrumented model-checked types under
// `--features model-check` (see crates/jstar-check and CONCURRENCY.md).
use jstar_check::sync::{AtomicU64, Mutex, Ordering};
use std::collections::HashMap;
use std::sync::Arc;

/// When (and whether) Gamma caches column indexes — see
/// [`crate::engine::EngineConfig::index_cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexCachePolicy {
    /// Every `open_cursor` is a cold build (PR 9 behaviour). The build
    /// counters still tick so cold/warm A/B comparisons stay honest.
    Off,
    /// Cache on first open; later opens catch up on the journal suffix.
    /// The catch-up cost lands on the opening walk.
    #[default]
    OnDemand,
    /// `OnDemand`, plus the coordinator's maintain phase submits
    /// background refresh jobs so stale entries catch up *behind* the
    /// execute window and join-heavy classes find warm indexes.
    EagerRefresh,
}

/// The validity stamp of a cached column view — see the module docs for
/// what each component invalidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStamp {
    /// Quiescent-replacement count of the backing table.
    pub epoch: u64,
    /// Claim-journal length (an entry *count*; in-flight appends make
    /// the usable bound smaller — the cache clamps via the suffix walk).
    pub generation: usize,
    /// Tombstoned-slot count of the backing table.
    pub tombstones: usize,
}

/// Point-in-time counter snapshot — the source of
/// `RunReport::{index_cache_hits, index_cache_misses,
/// index_catchup_tuples, index_build_tuples}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexCacheStats {
    /// Opens served from a cached entry (including after a catch-up).
    pub hits: u64,
    /// Opens that built from scratch (cache off, uncacheable store,
    /// empty slot, or wholesale invalidation).
    pub misses: u64,
    /// Tuples sorted+merged by journal-suffix catch-ups.
    pub catchup_tuples: u64,
    /// Tuples sorted by full cold builds.
    pub build_tuples: u64,
}

struct CacheEntry {
    index: Arc<ColumnIndex>,
    stamp: IndexStamp,
    last_used: u64,
    bytes: usize,
}

/// Per-[`super::Gamma`] cache: one `field → entry` map per table store.
pub struct IndexCache {
    policy: IndexCachePolicy,
    max_bytes_per_table: usize,
    tables: Vec<Mutex<HashMap<usize, CacheEntry>>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    catchup_tuples: AtomicU64,
    build_tuples: AtomicU64,
}

/// Default per-table byte bound — see
/// [`crate::engine::EngineConfig::index_cache_max_bytes`].
pub const DEFAULT_INDEX_CACHE_MAX_BYTES: usize = 64 << 20;

impl IndexCache {
    pub(super) fn new(n_tables: usize, policy: IndexCachePolicy, max_bytes: usize) -> IndexCache {
        IndexCache {
            policy,
            max_bytes_per_table: max_bytes,
            tables: (0..n_tables).map(|_| Mutex::new(HashMap::new())).collect(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            catchup_tuples: AtomicU64::new(0),
            build_tuples: AtomicU64::new(0),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> IndexCachePolicy {
        self.policy
    }

    /// Counter snapshot (monotone over the cache's lifetime).
    pub fn stats(&self) -> IndexCacheStats {
        // ord: Relaxed ×4 — statistics only.
        IndexCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            catchup_tuples: self.catchup_tuples.load(Ordering::Relaxed),
            build_tuples: self.build_tuples.load(Ordering::Relaxed),
        }
    }

    /// Tables that currently hold at least one cached entry — what the
    /// coordinator fans eager-refresh jobs over.
    pub fn cached_tables(&self) -> Vec<usize> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.lock().is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// The open path behind [`super::Gamma::open_cursor`].
    pub(super) fn open(
        &self,
        table: usize,
        field: usize,
        store: &dyn TableStore,
    ) -> Arc<ColumnIndex> {
        let cacheable = !matches!(self.policy, IndexCachePolicy::Off);
        let stamp = if cacheable { store.index_stamp() } else { None };
        let Some(stamp) = stamp else {
            // Cold path — cache off or store without a claim journal.
            // ord: Relaxed ×2 — statistics only.
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.build_tuples
                .fetch_add(store.len() as u64, Ordering::Relaxed);
            return store.open_cursor(field);
        };
        let mut map = self.tables[table].lock();
        // ord: Relaxed — the LRU tick is advisory; the map mutex orders
        // every entry mutation.
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(e) = map.get_mut(&field) {
            let valid = e.stamp.epoch == stamp.epoch
                && e.stamp.tombstones == stamp.tombstones
                && stamp.generation >= e.stamp.generation;
            if valid {
                if stamp.generation > e.stamp.generation {
                    // Warm but stale: sort only the journal suffix and
                    // merge it under the cached groups.
                    let (new_groups, covered, n) =
                        suffix_groups(store, field, e.stamp.generation, stamp.generation);
                    if n > 0 {
                        e.index = Arc::new(e.index.merge_suffix(new_groups));
                        e.bytes = e.index.approx_bytes();
                    }
                    e.stamp.generation = covered;
                    // ord: Relaxed — statistic only.
                    self.catchup_tuples.fetch_add(n as u64, Ordering::Relaxed);
                }
                e.last_used = tick;
                // ord: Relaxed — statistic only.
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&e.index);
            }
        }
        // Miss (no entry, or wholesale invalidation): full build off the
        // journal — the same walk a catch-up from generation 0 runs.
        let (groups, covered, n) = suffix_groups(store, field, 0, stamp.generation);
        let index = match ColumnIndex::try_from_sorted(groups) {
            Ok(idx) => Arc::new(idx),
            // Unreachable by construction (suffix_groups sorts), but a
            // correctness bug here must degrade to the store's own cold
            // build, not corrupt seeks.
            Err(_) => store.open_cursor(field),
        };
        // ord: Relaxed ×2 — statistics only.
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.build_tuples.fetch_add(n as u64, Ordering::Relaxed);
        let bytes = index.approx_bytes();
        map.insert(
            field,
            CacheEntry {
                index: Arc::clone(&index),
                stamp: IndexStamp {
                    generation: covered,
                    ..stamp
                },
                last_used: tick,
                bytes,
            },
        );
        evict_over_budget(&mut map, self.max_bytes_per_table);
        index
    }

    /// Catches up (or drops) every cached entry of `table` — the body of
    /// an eager-refresh job. Counts catch-up tuples but neither hits nor
    /// misses: a refresh is maintenance, not a lookup.
    pub(super) fn refresh(&self, table: usize, store: &dyn TableStore) {
        let Some(stamp) = store.index_stamp() else {
            return;
        };
        let mut map = self.tables[table].lock();
        map.retain(|&field, e| {
            let valid = e.stamp.epoch == stamp.epoch
                && e.stamp.tombstones == stamp.tombstones
                && stamp.generation >= e.stamp.generation;
            if !valid {
                // Wholesale invalidation: drop rather than rebuild — the
                // next open decides whether the view is still wanted.
                return false;
            }
            if stamp.generation > e.stamp.generation {
                let (new_groups, covered, n) =
                    suffix_groups(store, field, e.stamp.generation, stamp.generation);
                if n > 0 {
                    e.index = Arc::new(e.index.merge_suffix(new_groups));
                    e.bytes = e.index.approx_bytes();
                }
                e.stamp.generation = covered;
                // ord: Relaxed — statistic only.
                self.catchup_tuples.fetch_add(n as u64, Ordering::Relaxed);
            }
            true
        });
    }
}

/// Sorts the live tuples at journal positions `[lo, hi)` of `store` into
/// strictly-ascending `(value, group)` pairs on `field`. Returns the
/// groups, the stable bound actually covered (`<= hi` — in-flight
/// appends clamp it), and the tuple count. The sort is stable, so
/// group-internal order stays journal order.
fn suffix_groups(
    store: &dyn TableStore,
    field: usize,
    lo: usize,
    hi: usize,
) -> (Vec<(Value, Vec<Tuple>)>, usize, usize) {
    let mut pairs: Vec<(Value, Tuple)> = Vec::new();
    let covered = store.for_each_journal_suffix(lo, hi, &mut |t| {
        pairs.push((t.get(field).clone(), t.clone()));
    });
    let n = pairs.len();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut groups: Vec<(Value, Vec<Tuple>)> = Vec::new();
    for (v, t) in pairs {
        match groups.last_mut() {
            Some((last, g)) if *last == v => g.push(t),
            _ => groups.push((v, vec![t])),
        }
    }
    (groups, covered, n)
}

/// Evicts least-recently-used entries until the table's total is within
/// `max_bytes` (always keeping at least one entry — evicting the view
/// that was just built would turn every open into a rebuild).
fn evict_over_budget(map: &mut HashMap<usize, CacheEntry>, max_bytes: usize) {
    loop {
        if map.len() <= 1 {
            return;
        }
        let total: usize = map.values().map(|e| e.bytes).sum();
        if total <= max_bytes {
            return;
        }
        let Some(&victim) = map.iter().min_by_key(|(_, e)| e.last_used).map(|(f, _)| f) else {
            return;
        };
        map.remove(&victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::testutil::{keyed_def, kt};
    use crate::gamma::HashStore;

    fn store() -> HashStore {
        HashStore::new(keyed_def(), vec![0], 4)
    }

    #[test]
    fn second_open_is_a_pure_hit() {
        let s = store();
        for i in 0..100 {
            s.insert(kt(i, i, "v"));
        }
        let cache = IndexCache::new(1, IndexCachePolicy::OnDemand, usize::MAX);
        let a = cache.open(0, 0, &s);
        let b = cache.open(0, 0, &s);
        assert!(Arc::ptr_eq(&a, &b), "warm open returns the cached Arc");
        let st = cache.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
        assert_eq!(st.build_tuples, 100);
        assert_eq!(st.catchup_tuples, 0);
    }

    #[test]
    fn catch_up_sorts_only_the_suffix_and_matches_cold() {
        let s = store();
        // Descending keys: the suffix sort and the merge both have real
        // work to do (new values interleave *below* the cached ones).
        for i in 0..80 {
            s.insert(kt(1000 - i, i, "v"));
        }
        let cache = IndexCache::new(1, IndexCachePolicy::OnDemand, usize::MAX);
        let _ = cache.open(0, 0, &s);
        for i in 80..100 {
            s.insert(kt(1000 - i, i, "v"));
        }
        let warm = cache.open(0, 0, &s);
        let st = cache.stats();
        assert_eq!(st.catchup_tuples, 20, "only the suffix was sorted");
        assert_eq!(st.build_tuples, 80);
        let cold = s.open_cursor(0);
        assert_eq!(warm.groups(), cold.groups(), "caught-up == cold rebuild");
    }

    #[test]
    fn retain_invalidates_wholesale() {
        let s = store();
        for i in 0..50 {
            s.insert(kt(i, i, "v"));
        }
        let cache = IndexCache::new(1, IndexCachePolicy::OnDemand, usize::MAX);
        let _ = cache.open(0, 0, &s);
        s.retain(&|t| t.int(0) % 2 == 0);
        let warm = cache.open(0, 0, &s);
        let st = cache.stats();
        assert_eq!(st.misses, 2, "tombstones changed — full rebuild");
        assert_eq!(warm.groups(), s.open_cursor(0).groups());
    }

    #[test]
    fn compaction_epoch_invalidates_wholesale() {
        let s = store();
        for i in 0..50 {
            s.insert(kt(i, i, "v"));
        }
        let cache = IndexCache::new(1, IndexCachePolicy::OnDemand, usize::MAX);
        let _ = cache.open(0, 0, &s);
        s.retain(&|t| t.int(0) < 10);
        assert!(s.maybe_compact(0.1), "compaction must run");
        let warm = cache.open(0, 0, &s);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(warm.groups(), s.open_cursor(0).groups());
    }

    #[test]
    fn refresh_makes_the_next_open_a_pure_hit() {
        let s = store();
        for i in 0..60 {
            s.insert(kt(i, i, "v"));
        }
        let cache = IndexCache::new(1, IndexCachePolicy::EagerRefresh, usize::MAX);
        let _ = cache.open(0, 0, &s);
        for i in 60..90 {
            s.insert(kt(i, i, "v"));
        }
        cache.refresh(0, &s);
        let st = cache.stats();
        assert_eq!(st.catchup_tuples, 30);
        let warm = cache.open(0, 0, &s);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(
            cache.stats().catchup_tuples,
            30,
            "open after refresh catches up nothing"
        );
        assert_eq!(warm.groups(), s.open_cursor(0).groups());
    }

    #[test]
    fn lru_evicts_down_to_budget_but_keeps_the_newest() {
        let s = store();
        for i in 0..200 {
            s.insert(kt(i, i, "v"));
        }
        // Budget of one byte: every insert evicts the other entry.
        let cache = IndexCache::new(1, IndexCachePolicy::OnDemand, 1);
        let _ = cache.open(0, 0, &s);
        let _ = cache.open(0, 1, &s);
        let m = cache.tables[0].lock();
        assert_eq!(m.len(), 1, "over budget — LRU evicted");
        assert!(m.contains_key(&1), "newest entry survives");
    }

    #[test]
    fn off_policy_never_caches_but_still_counts() {
        let s = store();
        for i in 0..40 {
            s.insert(kt(i, i, "v"));
        }
        let cache = IndexCache::new(1, IndexCachePolicy::Off, usize::MAX);
        let _ = cache.open(0, 0, &s);
        let _ = cache.open(0, 0, &s);
        let st = cache.stats();
        assert_eq!(st.hits, 0);
        assert_eq!(st.misses, 2);
        assert_eq!(st.build_tuples, 80);
        assert!(cache.cached_tables().is_empty());
    }
}
