//! Hash-indexed store — the paper's `HashSet`/`ConcurrentHashMap`
//! alternative, "considerably more efficient" when every query binds the
//! indexed fields (§6.2 uses one on PvWatts' year/month).

use super::{pk_conflict, InsertOutcome, TableStore};
use crate::query::Query;
use crate::schema::TableDef;
use crate::tuple::Tuple;
use crate::value::Value;
use parking_lot::RwLock;
use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One shard: index key -> set of tuples sharing that key.
type Shard = RwLock<HashMap<Box<[Value]>, HashSet<Tuple>>>;

/// A sharded hash index over chosen fields.
///
/// Tuples are bucketed by the values of `index_fields`; queries that
/// equality-constrain all indexed fields touch exactly one bucket, and
/// buckets are hash sets, so duplicate detection is O(1) regardless of
/// bucket size. Other queries fall back to a full scan.
///
/// Primary-key (`->`) conflicts are detected by scanning the bucket; this
/// is only efficient when the index fields functionally determine small
/// buckets (true for every paper workload: Done is indexed by its key
/// `vertex`, Edge and PvWatts declare no key).
pub struct HashStore {
    def: Arc<TableDef>,
    index_fields: Vec<usize>,
    shards: Vec<Shard>,
    mask: usize,
}

impl HashStore {
    /// Creates a store indexed on `index_fields` with `shards` rounded up
    /// to a power of two.
    pub fn new(def: Arc<TableDef>, index_fields: Vec<usize>, shards: usize) -> Self {
        assert!(
            !index_fields.is_empty(),
            "HashStore needs at least one indexed field"
        );
        let n = shards.max(1).next_power_of_two();
        HashStore {
            def,
            index_fields,
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: n - 1,
        }
    }

    /// The fields this store is indexed on.
    pub fn index_fields(&self) -> &[usize] {
        &self.index_fields
    }

    fn index_key(&self, t: &Tuple) -> Box<[Value]> {
        self.index_fields
            .iter()
            .map(|&i| t.get(i).clone())
            .collect()
    }

    fn shard_for_key(&self, key: &[Value]) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & self.mask
    }
}

impl TableStore for HashStore {
    fn insert(&self, t: Tuple) -> InsertOutcome {
        let key = self.index_key(&t);
        let shard = &self.shards[self.shard_for_key(&key)];
        let mut map = shard.write();
        let bucket = map.entry(key).or_default();
        if bucket.contains(&t) {
            return InsertOutcome::Duplicate;
        }
        if self.def.key_arity.is_some() {
            for existing in bucket.iter() {
                if pk_conflict(&self.def, existing, &t) {
                    return InsertOutcome::KeyConflict;
                }
            }
        }
        bucket.insert(t);
        InsertOutcome::Fresh
    }

    fn contains(&self, t: &Tuple) -> bool {
        let key = self.index_key(t);
        let shard = &self.shards[self.shard_for_key(&key)];
        shard.read().get(&key).is_some_and(|b| b.contains(t))
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(|b| b.len()).sum::<usize>())
            .sum()
    }

    fn for_each(&self, f: &mut dyn FnMut(&Tuple) -> bool) {
        for shard in &self.shards {
            for bucket in shard.read().values() {
                for t in bucket {
                    if !f(t) {
                        return;
                    }
                }
            }
        }
    }

    fn query(&self, q: &Query, f: &mut dyn FnMut(&Tuple) -> bool) {
        // Fast path: all indexed fields are bound — one bucket.
        if q.covers_fields(&self.index_fields) {
            let key: Box<[Value]> = self
                .index_fields
                .iter()
                .map(|&i| q.eq_value(i).expect("covered").clone())
                .collect();
            let shard = &self.shards[self.shard_for_key(&key)];
            if let Some(bucket) = shard.read().get(&key) {
                for t in bucket {
                    if q.matches(t) && !f(t) {
                        return;
                    }
                }
            }
            return;
        }
        self.for_each(&mut |t| if q.matches(t) { f(t) } else { true });
    }

    fn retain(&self, keep: &dyn Fn(&Tuple) -> bool) {
        for shard in &self.shards {
            let mut map = shard.write();
            for bucket in map.values_mut() {
                bucket.retain(|t| keep(t));
            }
            map.retain(|_, b| !b.is_empty());
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::testutil::{exercise_store_contract, keyed_def, kt};
    use crate::schema::TableId;

    fn indexed_on_key() -> HashStore {
        HashStore::new(keyed_def(), vec![0], 8)
    }

    #[test]
    fn satisfies_store_contract() {
        exercise_store_contract(&indexed_on_key());
    }

    #[test]
    fn point_query_hits_one_bucket() {
        let store = indexed_on_key();
        for a in 0..1000 {
            store.insert(kt(a, a * 2, "v"));
        }
        let q = Query::on(TableId(0)).eq(0, 500i64);
        let mut got = Vec::new();
        store.query(&q, &mut |t| {
            got.push(t.clone());
            true
        });
        assert_eq!(got, vec![kt(500, 1000, "v")]);
    }

    #[test]
    fn multi_field_index() {
        // Index on (a, b) like the paper's PvWatts (year, month) hashtable.
        let store = HashStore::new(keyed_def(), vec![0, 1], 4);
        store.insert(kt(2023, 1, "jan"));
        store.insert(kt(2024, 1, "jan"));
        let q = Query::on(TableId(0)).eq(0, 2023i64).eq(1, 1i64);
        let mut got = Vec::new();
        store.query(&q, &mut |t| {
            got.push(t.clone());
            true
        });
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].str(2), "jan");
    }

    #[test]
    fn unindexed_query_falls_back_to_scan() {
        let store = indexed_on_key();
        for a in 0..100 {
            store.insert(kt(a, a % 5, "v"));
        }
        let q = Query::on(TableId(0)).eq(1, 2i64);
        let mut count = 0;
        store.query(&q, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 20);
    }

    #[test]
    fn concurrent_inserts_dedup() {
        let store = Arc::new(indexed_on_key());
        let pool = jstar_pool::ThreadPool::new(4);
        pool.scope(|s| {
            for _ in 0..6 {
                let store = Arc::clone(&store);
                s.spawn(move |_| {
                    for a in 0..300 {
                        store.insert(kt(a, a, "v"));
                    }
                });
            }
        });
        assert_eq!(store.len(), 300);
    }

    #[test]
    fn duplicate_detection_is_constant_time_per_bucket() {
        // Large single-bucket load: 20k inserts into one (keyless) bucket
        // must complete quickly — a quadratic scan would take seconds.
        let def = crate::gamma::testutil::set_def();
        let store = HashStore::new(def, vec![0], 2);
        let t0 = std::time::Instant::now();
        for i in 0..20_000i64 {
            store.insert(Tuple::new(TableId(0), vec![Value::Int(1), Value::Int(i)]));
        }
        assert_eq!(store.len(), 20_000);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(2),
            "bucket inserts must not be quadratic: {:?}",
            t0.elapsed()
        );
    }
}
