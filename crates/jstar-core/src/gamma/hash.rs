//! Hash-indexed store — the paper's `HashSet`/`ConcurrentHashMap`
//! alternative, "considerably more efficient" when every query binds the
//! indexed fields (§6.2 uses one on PvWatts' year/month).

use super::reservation::{export_chunks_for, hash_values, ReservationTable, SwappableTable};
use super::{InsertOutcome, TableStore};
use crate::query::Query;
use crate::schema::TableDef;
use crate::tuple::Tuple;
use std::any::Any;
use std::sync::Arc;

/// A lock-free hash index over chosen fields.
///
/// Storage is a reservation table: inserts claim a slot with one CAS
/// and publish the tuple afterwards, so the tuple hot path takes **no
/// lock** — the predecessor of this design guarded each shard's
/// `HashMap` with a reader-writer lock, and the writer acquisition was
/// the last lock on the engine's put→Gamma path.
///
/// Placement: tuples probe by their *key* identity (primary key fields
/// if declared, the whole tuple otherwise), which keeps duplicate and
/// `->`-conflict detection O(probe window) no matter how many tuples
/// share one index key. Queries that equality-bind every indexed field
/// walk that index key's secondary chain (the moral equivalent of the
/// old design's one-bucket lookup) — or, when the index fields are
/// exactly the primary key, the primary probe walk directly. Other
/// queries fall back to a full scan.
///
/// Primary-key (`->`) conflicts are detected on the probe walk, which
/// visits every tuple sharing the key fields; as before this is only
/// efficient when keys discriminate (true for every paper workload:
/// Done is indexed by its key `vertex`, Edge and PvWatts declare no
/// key).
pub struct HashStore {
    def: Arc<TableDef>,
    index_fields: Vec<usize>,
    table: SwappableTable,
    /// True when `index_fields` is exactly the primary-key prefix, so
    /// the index hash *is* the primary probe hash and indexed queries
    /// can walk the primary path instead of a secondary chain.
    index_is_primary: bool,
}

impl HashStore {
    /// Creates a store indexed on `index_fields`; `capacity` hints the
    /// initial slot-table size (it grows by doubling segments).
    pub fn new(def: Arc<TableDef>, index_fields: Vec<usize>, capacity: usize) -> Self {
        assert!(
            !index_fields.is_empty(),
            "HashStore needs at least one indexed field"
        );
        let index_is_primary = match def.key_arity {
            Some(k) => {
                index_fields.len() == k && index_fields.iter().enumerate().all(|(i, &f)| i == f)
            }
            None => false,
        };
        HashStore {
            table: SwappableTable::new(ReservationTable::new(capacity * 64, !index_is_primary)),
            def,
            index_fields,
            index_is_primary,
        }
    }

    /// The fields this store is indexed on.
    pub fn index_fields(&self) -> &[usize] {
        &self.index_fields
    }

    fn primary_hash(&self, t: &Tuple) -> u64 {
        hash_values(t.key_fields(&self.def))
    }

    fn index_hash(&self, t: &Tuple) -> u64 {
        hash_values(self.index_fields.iter().map(|&i| t.get(i)))
    }
}

impl TableStore for HashStore {
    fn insert(&self, t: Tuple) -> InsertOutcome {
        let primary = self.primary_hash(&t);
        let secondary = if self.index_is_primary {
            0
        } else {
            self.index_hash(&t)
        };
        self.table.get().insert(&self.def, primary, secondary, t)
    }

    fn contains(&self, t: &Tuple) -> bool {
        self.table.get().contains(self.primary_hash(t), t)
    }

    fn len(&self) -> usize {
        self.table.get().len()
    }

    fn for_each(&self, f: &mut dyn FnMut(&Tuple) -> bool) {
        self.table.get().for_each(f);
    }

    fn export_snapshot(&self, f: &mut dyn FnMut(&Tuple)) {
        self.export_snapshot_chunk(0, 1, f);
    }

    fn export_chunks(&self, hint: usize) -> usize {
        export_chunks_for(self.table.get().journal_entries(), hint)
    }

    fn export_snapshot_chunk(&self, chunk: usize, of: usize, f: &mut dyn FnMut(&Tuple)) {
        let table = self.table.get();
        let entries = table.journal_entries();
        table.for_each_journal_range(entries * chunk / of, entries * (chunk + 1) / of, f);
    }

    fn index_stamp(&self) -> Option<super::IndexStamp> {
        Some(self.table.index_stamp())
    }

    fn for_each_journal_suffix(&self, lo: usize, hi: usize, f: &mut dyn FnMut(&Tuple)) -> usize {
        self.table.for_each_journal_suffix(lo, hi, f)
    }

    fn query(&self, q: &Query, f: &mut dyn FnMut(&Tuple) -> bool) {
        self.query_hinted(q, q.covers_fields(&self.index_fields), f);
    }

    fn query_hinted(&self, q: &Query, use_index: bool, f: &mut dyn FnMut(&Tuple) -> bool) {
        // Fast path: all indexed fields are bound — walk one chain. The
        // decision arrives pre-computed (engine `QueryPlan`) or from
        // `query`'s own covers check.
        if use_index {
            let hash = hash_values(
                self.index_fields
                    .iter()
                    // lint: allow(expect): covers() verified these fields are bound.
                    .map(|&i| q.eq_value(i).expect("covered")),
            );
            let mut visit = |t: &Tuple| if q.matches(t) { f(t) } else { true };
            if self.index_is_primary {
                self.table.get().probe_primary(hash, &mut visit);
            } else {
                self.table.get().scan_index(hash, &mut visit);
            }
            return;
        }
        self.for_each(&mut |t| if q.matches(t) { f(t) } else { true });
    }

    fn index_fields(&self) -> Option<&[usize]> {
        Some(&self.index_fields)
    }

    fn retain(&self, keep: &dyn Fn(&Tuple) -> bool) {
        self.table.get().retain(keep);
    }

    fn maybe_compact(&self, max_tombstone_fraction: f64) -> bool {
        self.table.compact_quiescent(
            &self.def,
            max_tombstone_fraction,
            !self.index_is_primary,
            |t| {
                let secondary = if self.index_is_primary {
                    0
                } else {
                    self.index_hash(t)
                };
                (self.primary_hash(t), secondary)
            },
        )
    }

    fn import_snapshot(&self, tuples: Vec<Tuple>) {
        // As in `maybe_compact`: rebuild the reservation table wholesale
        // from trusted (checksum-verified, deduplicated) snapshot input,
        // restoring both the primary probe paths and the index chains.
        self.table
            .import_quiescent(!self.index_is_primary, tuples, |t| {
                let secondary = if self.index_is_primary {
                    0
                } else {
                    self.index_hash(t)
                };
                (self.primary_hash(t), secondary)
            });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::testutil::{exercise_store_contract, keyed_def, kt};
    use crate::schema::TableId;
    use crate::value::Value;

    fn indexed_on_key() -> HashStore {
        HashStore::new(keyed_def(), vec![0], 8)
    }

    #[test]
    fn satisfies_store_contract() {
        exercise_store_contract(&indexed_on_key());
    }

    #[test]
    fn insert_batch_matches_per_tuple_outcomes() {
        let batch_store = indexed_on_key();
        let loop_store = indexed_on_key();
        // Duplicates and key conflicts interleaved across buckets.
        let tuples: Vec<_> = (0..100)
            .map(|i| match i % 4 {
                0 => kt(i / 4, i, "v"),
                1 => kt(i / 4, i - 1, "v"), // key conflict with the 0-arm
                2 => kt(i / 4, i - 2, "v"), // duplicate of the 0-arm
                _ => kt(1000 + i, i, "w"),  // fresh, other bucket
            })
            .collect();
        let want: Vec<InsertOutcome> = tuples
            .iter()
            .map(|t| loop_store.insert(t.clone()))
            .collect();
        let mut got = Vec::new();
        batch_store.insert_batch(&tuples, &mut got);
        assert_eq!(got, want, "batch outcomes match per-tuple order");
        assert_eq!(batch_store.len(), loop_store.len());
    }

    #[test]
    fn point_query_hits_one_bucket() {
        let store = indexed_on_key();
        for a in 0..1000 {
            store.insert(kt(a, a * 2, "v"));
        }
        let q = Query::on(TableId(0)).eq(0, 500i64);
        let mut got = Vec::new();
        store.query(&q, &mut |t| {
            got.push(t.clone());
            true
        });
        assert_eq!(got, vec![kt(500, 1000, "v")]);
    }

    #[test]
    fn multi_field_index() {
        // Index on (a, b) like the paper's PvWatts (year, month) hashtable.
        let store = HashStore::new(keyed_def(), vec![0, 1], 4);
        store.insert(kt(2023, 1, "jan"));
        store.insert(kt(2024, 1, "jan"));
        let q = Query::on(TableId(0)).eq(0, 2023i64).eq(1, 1i64);
        let mut got = Vec::new();
        store.query(&q, &mut |t| {
            got.push(t.clone());
            true
        });
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].str(2), "jan");
    }

    #[test]
    fn unindexed_query_falls_back_to_scan() {
        let store = indexed_on_key();
        for a in 0..100 {
            store.insert(kt(a, a % 5, "v"));
        }
        let q = Query::on(TableId(0)).eq(1, 2i64);
        let mut count = 0;
        store.query(&q, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 20);
    }

    #[test]
    fn concurrent_inserts_dedup() {
        let store = Arc::new(indexed_on_key());
        let pool = jstar_pool::ThreadPool::new(4);
        pool.scope(|s| {
            for _ in 0..6 {
                let store = Arc::clone(&store);
                s.spawn(move |_| {
                    for a in 0..300 {
                        store.insert(kt(a, a, "v"));
                    }
                });
            }
        });
        assert_eq!(store.len(), 300);
    }

    #[test]
    fn compaction_preserves_contents_and_indexes() {
        use crate::gamma::testutil::set_def;
        // Keyless store with a non-primary secondary index, so the
        // rebuild must restore both probe paths and chain links.
        let store = HashStore::new(set_def(), vec![0], 8);
        for i in 0..400i64 {
            store.insert(Tuple::new(
                TableId(0),
                vec![Value::Int(i % 8), Value::Int(i)],
            ));
        }
        store.retain(&|t| t.int(1) < 100);
        assert_eq!(store.len(), 100);
        assert!(!store.maybe_compact(0.9), "fraction 0.75 below 0.9 ceiling");
        assert!(store.maybe_compact(0.5), "0.75 dead > 0.5 threshold");
        assert!(!store.maybe_compact(0.5), "fresh table has no tombstones");
        assert_eq!(store.len(), 100);
        // Indexed point query still narrows correctly after the rebuild.
        let q = Query::on(TableId(0)).eq(0, 3i64).eq(1, 51i64);
        let mut got = Vec::new();
        store.query(&q, &mut |t| {
            got.push(t.clone());
            true
        });
        assert_eq!(
            got,
            vec![Tuple::new(TableId(0), vec![Value::Int(3), Value::Int(51)])]
        );
        // Dedup across the rebuild: reinserting survivors is a duplicate.
        assert_eq!(
            store.insert(Tuple::new(TableId(0), vec![Value::Int(3), Value::Int(51)])),
            InsertOutcome::Duplicate
        );
    }

    #[test]
    fn import_snapshot_restores_index_chains() {
        use crate::gamma::testutil::set_def;
        let store = HashStore::new(set_def(), vec![0], 8);
        for i in 0..30i64 {
            store.insert(Tuple::new(TableId(0), vec![Value::Int(0), Value::Int(i)]));
        }
        let incoming: Vec<Tuple> = (0..90i64)
            .map(|i| Tuple::new(TableId(0), vec![Value::Int(i % 3), Value::Int(i)]))
            .collect();
        store.import_snapshot(incoming);
        assert_eq!(store.len(), 90);
        // The indexed fast path narrows over the rebuilt chains.
        let q = Query::on(TableId(0)).eq(0, 2i64).eq(1, 50i64);
        let mut got = Vec::new();
        store.query(&q, &mut |t| {
            got.push(t.clone());
            true
        });
        assert_eq!(
            got,
            vec![Tuple::new(TableId(0), vec![Value::Int(2), Value::Int(50)])]
        );
    }

    #[test]
    fn duplicate_detection_is_constant_time_per_bucket() {
        // Large single-bucket load: 20k inserts into one (keyless) index
        // bucket must complete quickly — tuples probe by their own
        // identity, so a shared index key cannot make dedup quadratic.
        let def = crate::gamma::testutil::set_def();
        let store = HashStore::new(def, vec![0], 2);
        let t0 = std::time::Instant::now();
        for i in 0..20_000i64 {
            store.insert(Tuple::new(TableId(0), vec![Value::Int(1), Value::Int(i)]));
        }
        assert_eq!(store.len(), 20_000);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(2),
            "bucket inserts must not be quadratic: {:?}",
            t0.elapsed()
        );
        // And the shared index chain still answers the point query.
        let q = Query::on(TableId(0)).eq(0, 1i64).eq(1, 7i64);
        let mut got = 0;
        store.query_hinted(&q, false, &mut |_| {
            got += 1;
            true
        });
        assert_eq!(got, 1);
    }
}
