//! Hash-indexed store — the paper's `HashSet`/`ConcurrentHashMap`
//! alternative, "considerably more efficient" when every query binds the
//! indexed fields (§6.2 uses one on PvWatts' year/month).

use super::{pk_conflict, InsertOutcome, TableStore};
use crate::query::Query;
use crate::schema::TableDef;
use crate::tuple::Tuple;
use crate::value::Value;
use parking_lot::RwLock;
use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One shard: index key -> set of tuples sharing that key.
type Shard = RwLock<HashMap<Box<[Value]>, HashSet<Tuple>>>;

/// Batch-insert routing entry: (shard, input index, index key). The key is
/// an `Option` only so it can be moved out exactly once during insertion.
type KeyedEntry = (usize, usize, Option<Box<[Value]>>);

/// A sharded hash index over chosen fields.
///
/// Tuples are bucketed by the values of `index_fields`; queries that
/// equality-constrain all indexed fields touch exactly one bucket, and
/// buckets are hash sets, so duplicate detection is O(1) regardless of
/// bucket size. Other queries fall back to a full scan.
///
/// Primary-key (`->`) conflicts are detected by scanning the bucket; this
/// is only efficient when the index fields functionally determine small
/// buckets (true for every paper workload: Done is indexed by its key
/// `vertex`, Edge and PvWatts declare no key).
pub struct HashStore {
    def: Arc<TableDef>,
    index_fields: Vec<usize>,
    shards: Vec<Shard>,
    mask: usize,
}

impl HashStore {
    /// Creates a store indexed on `index_fields` with `shards` rounded up
    /// to a power of two.
    pub fn new(def: Arc<TableDef>, index_fields: Vec<usize>, shards: usize) -> Self {
        assert!(
            !index_fields.is_empty(),
            "HashStore needs at least one indexed field"
        );
        let n = shards.max(1).next_power_of_two();
        HashStore {
            def,
            index_fields,
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: n - 1,
        }
    }

    /// The fields this store is indexed on.
    pub fn index_fields(&self) -> &[usize] {
        &self.index_fields
    }

    fn index_key(&self, t: &Tuple) -> Box<[Value]> {
        self.index_fields
            .iter()
            .map(|&i| t.get(i).clone())
            .collect()
    }

    fn shard_for_key(&self, key: &[Value]) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & self.mask
    }
}

fn insert_into_map(
    def: &TableDef,
    map: &mut HashMap<Box<[Value]>, HashSet<Tuple>>,
    key: Box<[Value]>,
    t: Tuple,
) -> InsertOutcome {
    let bucket = map.entry(key).or_default();
    // Keyless tables skip the membership probe: one hash op decides
    // fresh-vs-duplicate.
    if def.key_arity.is_none() {
        return if bucket.insert(t) {
            InsertOutcome::Fresh
        } else {
            InsertOutcome::Duplicate
        };
    }
    if bucket.contains(&t) {
        return InsertOutcome::Duplicate;
    }
    for existing in bucket.iter() {
        if pk_conflict(def, existing, &t) {
            return InsertOutcome::KeyConflict;
        }
    }
    bucket.insert(t);
    InsertOutcome::Fresh
}

impl TableStore for HashStore {
    fn insert(&self, t: Tuple) -> InsertOutcome {
        let key = self.index_key(&t);
        let shard = &self.shards[self.shard_for_key(&key)];
        insert_into_map(&self.def, &mut shard.write(), key, t)
    }

    fn insert_batch(&self, tuples: &[Tuple], outcomes: &mut Vec<InsertOutcome>) {
        // Group by shard so each shard lock is taken once per run (same
        // shape as ConcurrentOrderedStore::insert_batch); outcome order
        // matches input order.
        let base = outcomes.len();
        outcomes.resize(base + tuples.len(), InsertOutcome::Duplicate);
        let mut keyed: Vec<KeyedEntry> = tuples
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let key = self.index_key(t);
                (self.shard_for_key(&key), i, Some(key))
            })
            .collect();
        keyed.sort_unstable_by_key(|(shard, i, _)| (*shard, *i));
        let mut i = 0;
        while i < keyed.len() {
            let shard_idx = keyed[i].0;
            let mut map = self.shards[shard_idx].write();
            while i < keyed.len() && keyed[i].0 == shard_idx {
                let (_, tuple_idx, key) = &mut keyed[i];
                let key = key.take().expect("key consumed once");
                outcomes[base + *tuple_idx] =
                    insert_into_map(&self.def, &mut map, key, tuples[*tuple_idx].clone());
                i += 1;
            }
        }
    }

    fn contains(&self, t: &Tuple) -> bool {
        let key = self.index_key(t);
        let shard = &self.shards[self.shard_for_key(&key)];
        shard.read().get(&key).is_some_and(|b| b.contains(t))
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(|b| b.len()).sum::<usize>())
            .sum()
    }

    fn for_each(&self, f: &mut dyn FnMut(&Tuple) -> bool) {
        for shard in &self.shards {
            for bucket in shard.read().values() {
                for t in bucket {
                    if !f(t) {
                        return;
                    }
                }
            }
        }
    }

    fn query(&self, q: &Query, f: &mut dyn FnMut(&Tuple) -> bool) {
        self.query_hinted(q, q.covers_fields(&self.index_fields), f);
    }

    fn query_hinted(&self, q: &Query, use_index: bool, f: &mut dyn FnMut(&Tuple) -> bool) {
        // Fast path: all indexed fields are bound — one bucket. The
        // decision arrives pre-computed (engine `QueryPlan`) or from
        // `query`'s own covers check.
        if use_index {
            let key: Box<[Value]> = self
                .index_fields
                .iter()
                .map(|&i| q.eq_value(i).expect("covered").clone())
                .collect();
            let shard = &self.shards[self.shard_for_key(&key)];
            if let Some(bucket) = shard.read().get(&key) {
                for t in bucket {
                    if q.matches(t) && !f(t) {
                        return;
                    }
                }
            }
            return;
        }
        self.for_each(&mut |t| if q.matches(t) { f(t) } else { true });
    }

    fn index_fields(&self) -> Option<&[usize]> {
        Some(&self.index_fields)
    }

    fn retain(&self, keep: &dyn Fn(&Tuple) -> bool) {
        for shard in &self.shards {
            let mut map = shard.write();
            for bucket in map.values_mut() {
                bucket.retain(|t| keep(t));
            }
            map.retain(|_, b| !b.is_empty());
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::testutil::{exercise_store_contract, keyed_def, kt};
    use crate::schema::TableId;

    fn indexed_on_key() -> HashStore {
        HashStore::new(keyed_def(), vec![0], 8)
    }

    #[test]
    fn satisfies_store_contract() {
        exercise_store_contract(&indexed_on_key());
    }

    #[test]
    fn insert_batch_matches_per_tuple_outcomes() {
        let batch_store = indexed_on_key();
        let loop_store = indexed_on_key();
        // Duplicates and key conflicts interleaved across buckets/shards.
        let tuples: Vec<_> = (0..100)
            .map(|i| match i % 4 {
                0 => kt(i / 4, i, "v"),
                1 => kt(i / 4, i - 1, "v"), // key conflict with the 0-arm
                2 => kt(i / 4, i - 2, "v"), // duplicate of the 0-arm
                _ => kt(1000 + i, i, "w"),  // fresh, other shard
            })
            .collect();
        let want: Vec<InsertOutcome> = tuples
            .iter()
            .map(|t| loop_store.insert(t.clone()))
            .collect();
        let mut got = Vec::new();
        batch_store.insert_batch(&tuples, &mut got);
        assert_eq!(got, want, "batch outcomes match per-tuple order");
        assert_eq!(batch_store.len(), loop_store.len());
    }

    #[test]
    fn point_query_hits_one_bucket() {
        let store = indexed_on_key();
        for a in 0..1000 {
            store.insert(kt(a, a * 2, "v"));
        }
        let q = Query::on(TableId(0)).eq(0, 500i64);
        let mut got = Vec::new();
        store.query(&q, &mut |t| {
            got.push(t.clone());
            true
        });
        assert_eq!(got, vec![kt(500, 1000, "v")]);
    }

    #[test]
    fn multi_field_index() {
        // Index on (a, b) like the paper's PvWatts (year, month) hashtable.
        let store = HashStore::new(keyed_def(), vec![0, 1], 4);
        store.insert(kt(2023, 1, "jan"));
        store.insert(kt(2024, 1, "jan"));
        let q = Query::on(TableId(0)).eq(0, 2023i64).eq(1, 1i64);
        let mut got = Vec::new();
        store.query(&q, &mut |t| {
            got.push(t.clone());
            true
        });
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].str(2), "jan");
    }

    #[test]
    fn unindexed_query_falls_back_to_scan() {
        let store = indexed_on_key();
        for a in 0..100 {
            store.insert(kt(a, a % 5, "v"));
        }
        let q = Query::on(TableId(0)).eq(1, 2i64);
        let mut count = 0;
        store.query(&q, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 20);
    }

    #[test]
    fn concurrent_inserts_dedup() {
        let store = Arc::new(indexed_on_key());
        let pool = jstar_pool::ThreadPool::new(4);
        pool.scope(|s| {
            for _ in 0..6 {
                let store = Arc::clone(&store);
                s.spawn(move |_| {
                    for a in 0..300 {
                        store.insert(kt(a, a, "v"));
                    }
                });
            }
        });
        assert_eq!(store.len(), 300);
    }

    #[test]
    fn duplicate_detection_is_constant_time_per_bucket() {
        // Large single-bucket load: 20k inserts into one (keyless) bucket
        // must complete quickly — a quadratic scan would take seconds.
        let def = crate::gamma::testutil::set_def();
        let store = HashStore::new(def, vec![0], 2);
        let t0 = std::time::Instant::now();
        for i in 0..20_000i64 {
            store.insert(Tuple::new(TableId(0), vec![Value::Int(1), Value::Int(i)]));
        }
        assert_eq!(store.len(), 20_000);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(2),
            "bucket inserts must not be quadratic: {:?}",
            t0.elapsed()
        );
    }
}
