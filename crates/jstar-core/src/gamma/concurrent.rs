//! Concurrent ordered store — the paper's `ConcurrentSkipListSet` default
//! for parallel code, realised as sharded reader-writer-locked BTrees.

use super::{insert_locked, InsertOutcome, TableStore};
use crate::query::Query;
use crate::schema::TableDef;
use crate::tuple::Tuple;
use parking_lot::RwLock;
use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A sharded ordered tuple store for parallel execution.
///
/// Tuples are distributed across shards by a hash of their **key fields**
/// (primary key if declared, else all fields), so duplicate and key-conflict
/// detection stay within one shard while inserts from different workers
/// mostly touch different locks. Ordered queries visit every shard; as in
/// the paper, the concurrent structure trades some sequential efficiency
/// for insert scalability ("the sequential Java data structures are
/// significantly faster than the equivalent concurrent data structures").
pub struct ConcurrentOrderedStore {
    def: Arc<TableDef>,
    shards: Vec<RwLock<BTreeSet<Tuple>>>,
    mask: usize,
}

impl ConcurrentOrderedStore {
    /// Creates a store with `shards` rounded up to a power of two.
    pub fn new(def: Arc<TableDef>, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ConcurrentOrderedStore {
            def,
            shards: (0..n).map(|_| RwLock::new(BTreeSet::new())).collect(),
            mask: n - 1,
        }
    }

    fn shard_of(&self, t: &Tuple) -> usize {
        let mut h = DefaultHasher::new();
        t.key_fields(&self.def).hash(&mut h);
        (h.finish() as usize) & self.mask
    }
}

impl TableStore for ConcurrentOrderedStore {
    fn insert(&self, t: Tuple) -> InsertOutcome {
        let shard = &self.shards[self.shard_of(&t)];
        insert_locked(&self.def, &mut shard.write(), t)
    }

    fn insert_batch(&self, tuples: &[Tuple], outcomes: &mut Vec<InsertOutcome>) {
        // Group the batch by shard so each shard lock is taken once per
        // run instead of once per tuple. Order of outcomes still matches
        // the input order.
        let base = outcomes.len();
        outcomes.resize(base + tuples.len(), InsertOutcome::Duplicate);
        let mut by_shard: Vec<(usize, usize)> = tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (self.shard_of(t), i))
            .collect();
        by_shard.sort_unstable();
        let mut i = 0;
        while i < by_shard.len() {
            let shard_idx = by_shard[i].0;
            let mut set = self.shards[shard_idx].write();
            while i < by_shard.len() && by_shard[i].0 == shard_idx {
                let tuple_idx = by_shard[i].1;
                outcomes[base + tuple_idx] =
                    insert_locked(&self.def, &mut set, tuples[tuple_idx].clone());
                i += 1;
            }
        }
    }

    fn contains(&self, t: &Tuple) -> bool {
        self.shards[self.shard_of(t)].read().contains(t)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn for_each(&self, f: &mut dyn FnMut(&Tuple) -> bool) {
        for shard in &self.shards {
            for t in shard.read().iter() {
                if !f(t) {
                    return;
                }
            }
        }
    }

    fn query(&self, q: &Query, f: &mut dyn FnMut(&Tuple) -> bool) {
        // Each shard narrows on a first-column equality like BTreeStore.
        if let Some(v) = q.eq_value(0) {
            for shard in &self.shards {
                let set = shard.read();
                let probe = Tuple::new(q.table, vec![v.clone()]);
                for t in set.range(probe..) {
                    if t.get(0) != v {
                        break;
                    }
                    if q.matches(t) && !f(t) {
                        return;
                    }
                }
            }
            return;
        }
        for shard in &self.shards {
            for t in shard.read().iter() {
                if q.matches(t) && !f(t) {
                    return;
                }
            }
        }
    }

    fn retain(&self, keep: &dyn Fn(&Tuple) -> bool) {
        for shard in &self.shards {
            shard.write().retain(|t| keep(t));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::testutil::{exercise_store_contract, keyed_def, kt};
    use crate::schema::TableId;

    #[test]
    fn satisfies_store_contract() {
        let store = ConcurrentOrderedStore::new(keyed_def(), 8);
        exercise_store_contract(&store);
    }

    #[test]
    fn single_shard_also_works() {
        let store = ConcurrentOrderedStore::new(keyed_def(), 1);
        exercise_store_contract(&store);
    }

    #[test]
    fn concurrent_inserts_preserve_set_semantics() {
        let store = Arc::new(ConcurrentOrderedStore::new(keyed_def(), 16));
        let pool = jstar_pool::ThreadPool::new(4);
        let fresh = std::sync::atomic::AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                let store = Arc::clone(&store);
                let fresh = &fresh;
                s.spawn(move |_| {
                    for a in 0..500 {
                        if store.insert(kt(a, a, "v")) == InsertOutcome::Fresh {
                            fresh.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // Every tuple inserted by 8 threads, but each distinct tuple is
        // fresh exactly once.
        assert_eq!(fresh.load(std::sync::atomic::Ordering::Relaxed), 500);
        assert_eq!(store.len(), 500);
    }

    #[test]
    fn queries_span_shards() {
        let store = ConcurrentOrderedStore::new(keyed_def(), 4);
        for a in 0..200 {
            store.insert(kt(a, a % 7, "v"));
        }
        let q = Query::on(TableId(0)).eq(1, 3i64);
        let mut count = 0;
        store.query(&q, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, (0..200).filter(|a| a % 7 == 3).count());
    }
}
