//! Concurrent store — the paper's `ConcurrentSkipListSet` default for
//! parallel code, realised as a lock-free reservation table.

use super::reservation::{export_chunks_for, hash_values, ReservationTable, SwappableTable};
use super::{InsertOutcome, TableStore};
use crate::query::Query;
use crate::schema::TableDef;
use crate::tuple::Tuple;
use std::any::Any;
use std::sync::Arc;

/// The default Gamma store for parallel execution.
///
/// Earlier revisions sharded reader-writer-locked BTrees; every insert
/// still paid one writer-lock acquisition, the last lock on the tuple
/// hot path. Storage is now a reservation table: an insert claims a
/// slot with a single CAS and publishes the tuple afterwards, so
/// workers inserting the same wide equivalence class never serialise on
/// a lock, and readers never observe a partially written tuple.
///
/// Tuples probe by their **key fields** (primary key if declared, else
/// all fields), so duplicate and key-conflict detection happen on the
/// insert's own probe walk. Queries narrow two ways: a query that
/// equality-binds the whole primary key walks the key's probe path
/// (point lookup), and a query that binds the first column walks that
/// column value's chain index — the replacement for the old per-shard
/// ordered range scan. Anything else scans. As in the paper, the
/// concurrent structure trades some sequential efficiency for insert
/// scalability ("the sequential Java data structures are significantly
/// faster than the equivalent concurrent data structures") — ordered
/// traversal is the [`super::BTreeStore`]'s job.
pub struct ConcurrentOrderedStore {
    def: Arc<TableDef>,
    table: SwappableTable,
}

impl ConcurrentOrderedStore {
    /// Creates a store; `capacity` hints the initial slot-table size
    /// (the table grows by doubling segments).
    pub fn new(def: Arc<TableDef>, capacity: usize) -> Self {
        ConcurrentOrderedStore {
            table: SwappableTable::new(ReservationTable::new(capacity * 256, def.arity() > 0)),
            def,
        }
    }

    fn primary_hash(&self, t: &Tuple) -> u64 {
        hash_values(t.key_fields(&self.def))
    }

    fn secondary_hash(&self, t: &Tuple) -> u64 {
        if self.def.arity() > 0 {
            hash_values([t.get(0)])
        } else {
            0
        }
    }
}

impl TableStore for ConcurrentOrderedStore {
    fn insert(&self, t: Tuple) -> InsertOutcome {
        let primary = self.primary_hash(&t);
        let secondary = self.secondary_hash(&t);
        self.table.get().insert(&self.def, primary, secondary, t)
    }

    fn contains(&self, t: &Tuple) -> bool {
        self.table.get().contains(self.primary_hash(t), t)
    }

    fn len(&self) -> usize {
        self.table.get().len()
    }

    fn for_each(&self, f: &mut dyn FnMut(&Tuple) -> bool) {
        self.table.get().for_each(f);
    }

    fn export_snapshot(&self, f: &mut dyn FnMut(&Tuple)) {
        self.export_snapshot_chunk(0, 1, f);
    }

    fn export_chunks(&self, hint: usize) -> usize {
        export_chunks_for(self.table.get().journal_entries(), hint)
    }

    fn export_snapshot_chunk(&self, chunk: usize, of: usize, f: &mut dyn FnMut(&Tuple)) {
        let table = self.table.get();
        let entries = table.journal_entries();
        table.for_each_journal_range(entries * chunk / of, entries * (chunk + 1) / of, f);
    }

    fn index_stamp(&self) -> Option<super::IndexStamp> {
        Some(self.table.index_stamp())
    }

    fn for_each_journal_suffix(&self, lo: usize, hi: usize, f: &mut dyn FnMut(&Tuple)) -> usize {
        self.table.for_each_journal_suffix(lo, hi, f)
    }

    fn query(&self, q: &Query, f: &mut dyn FnMut(&Tuple) -> bool) {
        // Point lookup: the whole primary key is equality-bound, so the
        // matches live on one probe walk.
        if let Some(k) = self.def.key_arity {
            if k > 0 && (0..k).all(|i| q.eq_value(i).is_some()) {
                // lint: allow(expect): the all() guard proved every key field is bound.
                let hash = hash_values((0..k).map(|i| q.eq_value(i).expect("bound")));
                self.table.get().probe_primary(hash, &mut |t| {
                    if q.matches(t) {
                        f(t)
                    } else {
                        true
                    }
                });
                return;
            }
        }
        // First-column narrowing (the successor of the per-shard range
        // scan): walk the column value's chain.
        if self.def.arity() > 0 {
            if let Some(v) = q.eq_value(0) {
                self.table.get().scan_index(hash_values([v]), &mut |t| {
                    if q.matches(t) {
                        f(t)
                    } else {
                        true
                    }
                });
                return;
            }
        }
        self.for_each(&mut |t| if q.matches(t) { f(t) } else { true });
    }

    fn retain(&self, keep: &dyn Fn(&Tuple) -> bool) {
        self.table.get().retain(keep);
    }

    fn maybe_compact(&self, max_tombstone_fraction: f64) -> bool {
        self.table.compact_quiescent(
            &self.def,
            max_tombstone_fraction,
            self.def.arity() > 0,
            |t| (self.primary_hash(t), self.secondary_hash(t)),
        )
    }

    fn import_snapshot(&self, tuples: Vec<Tuple>) {
        // Bulk segment rebuild: a fresh right-sized table loaded with
        // unchecked claims (snapshot input is verified and deduplicated)
        // replaces the old one wholesale — O(incoming), no per-tuple
        // duplicate scans. Quiescent-point only, like `maybe_compact`.
        self.table
            .import_quiescent(self.def.arity() > 0, tuples, |t| {
                (self.primary_hash(t), self.secondary_hash(t))
            });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::testutil::{exercise_store_contract, keyed_def, kt};
    use crate::schema::TableId;

    #[test]
    fn satisfies_store_contract() {
        let store = ConcurrentOrderedStore::new(keyed_def(), 8);
        exercise_store_contract(&store);
    }

    #[test]
    fn minimal_capacity_also_works() {
        let store = ConcurrentOrderedStore::new(keyed_def(), 1);
        exercise_store_contract(&store);
    }

    #[test]
    fn concurrent_inserts_preserve_set_semantics() {
        use jstar_check::sync::{AtomicUsize, Ordering};
        let store = Arc::new(ConcurrentOrderedStore::new(keyed_def(), 16));
        let pool = jstar_pool::ThreadPool::new(4);
        let fresh = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                let store = Arc::clone(&store);
                let fresh = &fresh;
                s.spawn(move |_| {
                    for a in 0..500 {
                        if store.insert(kt(a, a, "v")) == InsertOutcome::Fresh {
                            // ord: Relaxed — independent counter bumps; the
                            // scope join orders them before the read below.
                            fresh.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // Every tuple inserted by 8 threads, but each distinct tuple is
        // fresh exactly once.
        // ord: Relaxed — read after the scope join, no concurrent writers.
        assert_eq!(fresh.load(Ordering::Relaxed), 500);
        assert_eq!(store.len(), 500);
    }

    #[test]
    fn first_column_queries_narrow_via_the_chain_index() {
        let store = ConcurrentOrderedStore::new(keyed_def(), 4);
        for a in 0..200 {
            store.insert(kt(a, a % 7, "v"));
        }
        let q = Query::on(TableId(0)).eq(1, 3i64);
        let mut count = 0;
        store.query(&q, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, (0..200).filter(|a| a % 7 == 3).count());

        // Key-bound point query takes the probe-walk path.
        let q = Query::on(TableId(0)).eq(0, 42i64);
        let mut got = Vec::new();
        store.query(&q, &mut |t| {
            got.push(t.clone());
            true
        });
        assert_eq!(got, vec![kt(42, 0, "v")]);
    }

    #[test]
    fn compaction_rebuilds_keyed_store() {
        let store = ConcurrentOrderedStore::new(keyed_def(), 4);
        for a in 0..300 {
            store.insert(kt(a, a, "v"));
        }
        store.retain(&|t| t.int(0) < 60);
        assert!(store.maybe_compact(0.5));
        assert_eq!(store.len(), 60);
        // Point lookup, chain narrowing, dedup and key conflicts all
        // survive the rebuild.
        let q = Query::on(TableId(0)).eq(0, 42i64);
        let mut got = Vec::new();
        store.query(&q, &mut |t| {
            got.push(t.clone());
            true
        });
        assert_eq!(got, vec![kt(42, 42, "v")]);
        assert_eq!(store.insert(kt(42, 42, "v")), InsertOutcome::Duplicate);
        assert_eq!(store.insert(kt(42, 43, "v")), InsertOutcome::KeyConflict);
        assert_eq!(store.insert(kt(1000, 1, "w")), InsertOutcome::Fresh);
    }

    #[test]
    fn import_snapshot_replaces_contents_and_restores_narrowing() {
        let store = ConcurrentOrderedStore::new(keyed_def(), 4);
        for a in 0..50 {
            store.insert(kt(a, a, "old"));
        }
        let incoming: Vec<Tuple> = (100..160).map(|a| kt(a, a % 7, "new")).collect();
        store.import_snapshot(incoming);
        assert_eq!(store.len(), 60);
        assert!(!store.contains(&kt(3, 3, "old")));
        // Point lookup and dedup work on the imported table.
        let q = Query::on(TableId(0)).eq(0, 142i64);
        let mut got = Vec::new();
        store.query(&q, &mut |t| {
            got.push(t.clone());
            true
        });
        assert_eq!(got, vec![kt(142, 142 % 7, "new")]);
        assert_eq!(
            store.insert(kt(142, 142 % 7, "new")),
            InsertOutcome::Duplicate
        );
        assert_eq!(store.insert(kt(142, 0, "x")), InsertOutcome::KeyConflict);
    }

    #[test]
    fn keyless_tables_narrow_on_first_column() {
        let def = crate::gamma::testutil::set_def();
        let store = ConcurrentOrderedStore::new(def, 4);
        for i in 0..300i64 {
            store.insert(Tuple::new(
                TableId(0),
                vec![
                    crate::value::Value::Int(i % 10),
                    crate::value::Value::Int(i),
                ],
            ));
        }
        let q = Query::on(TableId(0)).eq(0, 4i64);
        let mut count = 0;
        store.query(&q, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 30);
    }
}
