//! An Fx-style multiply hasher for the tuple hot path.
//!
//! The runtime hashes on **every** tuple movement — Delta-set dedup,
//! staging-bin routing, Gamma probe placement (twice per insert when a
//! secondary index exists) — so the std SipHash's per-call setup/finish
//! cost, fine for an occasional `HashMap` lookup, is ruinous at these
//! rates. This hasher does one multiply-xor per written word instead.
//! Distribution is adequate for power-of-two masked tables, and no
//! correctness anywhere relies on it: hash candidates are always
//! verified by full value comparison.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The hasher state. Construct via [`Default`] (through
/// [`FxBuildHasher`]) or [`hash_values`].
#[derive(Default)]
pub(crate) struct FxHasher(u64);

/// `BuildHasher` for Fx-hashed collections
/// (`HashSet<T, FxBuildHasher>`).
pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(FX_SEED);
        }
    }
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
    fn finish(&self) -> u64 {
        // One final avalanche so the low bits (the probe start / bin
        // index under a power-of-two mask) depend on every input word.
        let mut h = self.0;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
}

/// Hashes any sequence of hashable values.
pub(crate) fn hash_seq<'a, T: Hash + 'a>(values: impl IntoIterator<Item = &'a T>) -> u64 {
    let mut h = FxHasher::default();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}
