//! Immutable tuples — the only data JStar programs manipulate.
//!
//! "Each tuple in a table is typically implemented as an immutable Java
//! object with a fixed set of named fields" (§3). Here a [`Tuple`] is an
//! `Arc`-shared immutable row; cloning is a reference-count bump, which is
//! what lets the same tuple sit in the Delta tree, the Gamma database and
//! rule-trigger queues without copying.

use crate::schema::{TableDef, TableId};
use crate::value::Value;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

#[derive(Debug)]
struct TupleInner {
    table: TableId,
    fields: Box<[Value]>,
}

/// An immutable tuple belonging to one table.
#[derive(Debug, Clone)]
pub struct Tuple(Arc<TupleInner>);

impl Tuple {
    /// Creates a tuple by position (the `new Ship(0,10,10,150,0)` form).
    /// Field types are *not* checked here; [`crate::program::Program`]
    /// checks them at `put` time when type checking is enabled.
    pub fn new(table: TableId, fields: impl Into<Vec<Value>>) -> Tuple {
        Tuple(Arc::new(TupleInner {
            table,
            fields: fields.into().into_boxed_slice(),
        }))
    }

    /// Starts a named-field builder (the `new Ship() [frame=0; x=10]` form):
    /// unset fields keep the column defaults from the table definition.
    pub fn build(def: &TableDef) -> TupleBuilder<'_> {
        TupleBuilder {
            def,
            fields: def.default_fields(),
        }
    }

    /// The table this tuple belongs to.
    pub fn table(&self) -> TableId {
        self.0.table
    }

    /// All field values in column order.
    pub fn fields(&self) -> &[Value] {
        &self.0.fields
    }

    /// Raw pointer to the tuple's heap allocation — a prefetch hint
    /// for bulk walks (the snapshot export's lookahead window). Never
    /// dereferenced by callers; reading the fields still goes through
    /// [`Tuple::fields`].
    pub(crate) fn heap_ptr(&self) -> *const u8 {
        std::sync::Arc::as_ptr(&self.0) as *const u8
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.fields.len()
    }

    /// The `i`-th field.
    pub fn get(&self, i: usize) -> &Value {
        &self.0.fields[i]
    }

    /// Integer field accessor.
    pub fn int(&self, i: usize) -> i64 {
        self.get(i).as_int()
    }

    /// Double field accessor.
    pub fn double(&self, i: usize) -> f64 {
        self.get(i).as_double()
    }

    /// String field accessor.
    pub fn str(&self, i: usize) -> &str {
        self.get(i).as_str()
    }

    /// Bool field accessor.
    pub fn bool(&self, i: usize) -> bool {
        self.get(i).as_bool()
    }

    /// Copy-update: returns a builder pre-loaded with this tuple's fields
    /// (the generated `copy` method of the paper's builder classes, which
    /// "can take an existing (immutable) tuple, update a few fields and
    /// create a new tuple").
    pub fn copy<'d>(&self, def: &'d TableDef) -> TupleBuilder<'d> {
        assert_eq!(def.id, self.table(), "copy with mismatched table def");
        TupleBuilder {
            def,
            fields: self.fields().to_vec(),
        }
    }

    /// The leading key fields (primary key if declared, else all fields).
    pub fn key_fields<'t>(&'t self, def: &TableDef) -> &'t [Value] {
        match def.key_arity {
            Some(k) => &self.fields()[..k],
            None => self.fields(),
        }
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality fast path: clones share the same allocation.
        Arc::ptr_eq(&self.0, &other.0)
            || (self.0.table == other.0.table && self.0.fields == other.0.fields)
    }
}
impl Eq for Tuple {}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.table.hash(state);
        self.0.fields.hash(state);
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Tuples order by (table, fields) lexicographically — the order used by
/// the BTree-based Gamma stores (the paper's `TreeSet` default).
impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .table
            .cmp(&other.0.table)
            .then_with(|| self.0.fields.cmp(&other.0.fields))
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.0.table)?;
        for (i, v) in self.0.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Builder for the named-field construction form.
pub struct TupleBuilder<'d> {
    def: &'d TableDef,
    fields: Vec<Value>,
}

impl<'d> TupleBuilder<'d> {
    /// Sets a field by name.
    pub fn set(mut self, name: &str, v: impl Into<Value>) -> Self {
        let idx = self.def.col(name);
        let v = v.into();
        assert_eq!(
            v.value_type(),
            self.def.columns[idx].ty,
            "field {name} of table {} has type {}",
            self.def.name,
            self.def.columns[idx].ty
        );
        self.fields[idx] = v;
        self
    }

    /// Finishes the tuple.
    pub fn finish(self) -> Tuple {
        Tuple::new(self.def.id, self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orderby::{seq, strat};
    use crate::schema::TableDefBuilder;

    fn ship_def() -> TableDef {
        let b = TableDefBuilder::new("Ship")
            .col_int("frame")
            .col_int("x")
            .col_int("y")
            .col_int("dx")
            .default_value(150i64)
            .col_int("dy")
            .key(1)
            .orderby(&[strat("Int"), seq("frame")]);
        TableDef {
            id: TableId(0),
            name: b.name,
            columns: b.columns,
            key_arity: b.key_arity,
            orderby: b.orderby,
        }
    }

    #[test]
    fn positional_construction() {
        let def = ship_def();
        let t = Tuple::new(
            def.id,
            vec![
                Value::Int(0),
                Value::Int(10),
                Value::Int(10),
                Value::Int(150),
                Value::Int(0),
            ],
        );
        assert_eq!(t.int(0), 0);
        assert_eq!(t.int(3), 150);
        assert_eq!(t.arity(), 5);
    }

    #[test]
    fn named_construction_uses_defaults() {
        // new Ship() [x=10; y=10] — frame and dy default to 0, dx to 150.
        let def = ship_def();
        let t = Tuple::build(&def).set("x", 10i64).set("y", 10i64).finish();
        assert_eq!(t.int(0), 0, "frame defaults to 0");
        assert_eq!(t.int(3), 150, "dx has an overridden default");
        assert_eq!(t.int(4), 0, "dy defaults to 0");
    }

    #[test]
    fn equivalent_construction_forms_are_equal() {
        let def = ship_def();
        let positional = Tuple::new(
            def.id,
            vec![
                Value::Int(0),
                Value::Int(10),
                Value::Int(10),
                Value::Int(150),
                Value::Int(0),
            ],
        );
        let named = Tuple::build(&def)
            .set("frame", 0i64)
            .set("x", 10i64)
            .set("dx", 150i64)
            .set("y", 10i64)
            .set("dy", 0i64)
            .finish();
        let defaulted = Tuple::build(&def).set("x", 10i64).set("y", 10i64).finish();
        assert_eq!(positional, named);
        assert_eq!(positional, defaulted);
    }

    #[test]
    fn copy_updates_some_fields() {
        let def = ship_def();
        let t = Tuple::build(&def).set("x", 10i64).finish();
        let t2 = t.copy(&def).set("frame", 1i64).set("x", 160i64).finish();
        assert_eq!(t2.int(0), 1);
        assert_eq!(t2.int(1), 160);
        assert_eq!(t2.int(3), t.int(3), "unchanged fields preserved");
        assert_ne!(t, t2);
    }

    #[test]
    fn clones_are_equal_and_cheap() {
        let def = ship_def();
        let t = Tuple::build(&def).finish();
        let c = t.clone();
        assert_eq!(t, c);
    }

    #[test]
    fn key_fields_respect_pk() {
        let def = ship_def();
        let t = Tuple::build(&def).set("frame", 7i64).finish();
        assert_eq!(t.key_fields(&def), &[Value::Int(7)]);
    }

    #[test]
    fn ordering_is_by_table_then_fields() {
        let a = Tuple::new(TableId(0), vec![Value::Int(5)]);
        let b = Tuple::new(TableId(0), vec![Value::Int(6)]);
        let c = Tuple::new(TableId(1), vec![Value::Int(0)]);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    #[should_panic(expected = "has type int")]
    fn builder_rejects_wrong_type() {
        let def = ship_def();
        let _ = Tuple::build(&def).set("x", "oops");
    }

    #[test]
    fn display_renders_fields() {
        let t = Tuple::new(TableId(3), vec![Value::Int(1), Value::str("a")]);
        assert_eq!(t.to_string(), "T3(1, a)");
    }
}
