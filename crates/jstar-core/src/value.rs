//! Dynamic field values for JStar tuples.
//!
//! JStar tables are relations whose columns hold Java-like scalar values.
//! Our engine is dynamically typed at the tuple level (the XText compiler's
//! static typing is out of scope), so fields are [`Value`]s with a *total*
//! order and hash — both required because tuples live in ordered sets
//! (Gamma), hash sets (Delta leaves) and orderby keys.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a column, declared in a [`crate::schema::TableDef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer (covers Java `int` and `long`).
    Int,
    /// 64-bit IEEE float with total ordering (`f64::total_cmp`).
    Double,
    /// Immutable interned string.
    Str,
    /// Boolean.
    Bool,
}

impl ValueType {
    /// The default value of this type, used by the tuple builder when a
    /// field is not specified (`new Ship() [x=10; dx=150; y=10]` leaves
    /// `frame` and `dy` at their defaults).
    pub fn default_value(self) -> Value {
        match self {
            ValueType::Int => Value::Int(0),
            ValueType::Double => Value::Double(0.0),
            ValueType::Str => Value::str(""),
            ValueType::Bool => Value::Bool(false),
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "int"),
            ValueType::Double => write!(f, "double"),
            ValueType::Str => write!(f, "String"),
            ValueType::Bool => write!(f, "boolean"),
        }
    }
}

/// A dynamically typed field value.
///
/// `Value` implements `Eq`, `Ord` and `Hash` for *all* variants, including
/// `Double` (via `total_cmp` / bit hashing), so tuples can be stored in
/// ordered and hashed containers. Values of different types order by a fixed
/// type rank (Int < Double < Str < Bool); well-typed programs never compare
/// across types, but the total order keeps container invariants safe.
#[derive(Debug, Clone)]
pub enum Value {
    Int(i64),
    Double(f64),
    Str(Arc<str>),
    Bool(bool),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<Cow<'static, str>>) -> Value {
        match s.into() {
            Cow::Borrowed(b) => Value::Str(Arc::from(b)),
            Cow::Owned(o) => Value::Str(Arc::from(o.as_str())),
        }
    }

    /// The runtime type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Double(_) => ValueType::Double,
            Value::Str(_) => ValueType::Str,
            Value::Bool(_) => ValueType::Bool,
        }
    }

    /// Extracts an integer, panicking on type mismatch (rule bodies are
    /// generated code in the paper; a mismatch is a compiler bug there and a
    /// programming bug here).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            other => panic!("expected int value, found {other:?}"),
        }
    }

    /// Extracts a double, panicking on type mismatch.
    pub fn as_double(&self) -> f64 {
        match self {
            Value::Double(d) => *d,
            other => panic!("expected double value, found {other:?}"),
        }
    }

    /// Extracts a string slice, panicking on type mismatch.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected String value, found {other:?}"),
        }
    }

    /// Extracts a bool, panicking on type mismatch.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected boolean value, found {other:?}"),
        }
    }

    /// Numeric view: Int and Double both convert to f64. Used by the
    /// built-in aggregate reducers (`Statistics`, sum, min, max).
    pub fn as_f64_lossy(&self) -> f64 {
        match self {
            Value::Int(i) => *i as f64,
            Value::Double(d) => *d,
            other => panic!("expected numeric value, found {other:?}"),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Double(_) => 1,
            Value::Str(_) => 2,
            Value::Bool(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                0u8.hash(state);
                i.hash(state);
            }
            Value::Double(d) => {
                1u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_ordering() {
        assert!(Value::Int(1) < Value::Int(2));
        assert_eq!(Value::Int(5), Value::Int(5));
    }

    #[test]
    fn double_total_order_handles_nan() {
        let nan = Value::Double(f64::NAN);
        let one = Value::Double(1.0);
        // total_cmp puts NaN above all normal numbers.
        assert!(nan > one);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn double_zero_signs_distinct_but_consistent() {
        let pz = Value::Double(0.0);
        let nz = Value::Double(-0.0);
        // total_cmp: -0.0 < +0.0; Eq must agree with Ord.
        assert!(nz < pz);
        assert_ne!(nz, pz);
        assert_ne!(hash_of(&nz), hash_of(&pz));
    }

    #[test]
    fn eq_and_hash_agree() {
        let a = Value::str("hello");
        let b = Value::str("hello");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn cross_type_order_is_total_and_antisymmetric() {
        let vals = [
            Value::Int(3),
            Value::Double(1.5),
            Value::str("x"),
            Value::Bool(true),
        ];
        for a in &vals {
            for b in &vals {
                let ab = a.cmp(b);
                let ba = b.cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn accessors_extract_and_display() {
        assert_eq!(Value::Int(7).as_int(), 7);
        assert_eq!(Value::Double(2.5).as_double(), 2.5);
        assert_eq!(Value::str("abc").as_str(), "abc");
        assert!(Value::Bool(true).as_bool());
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Int(3).as_f64_lossy(), 3.0);
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn as_int_panics_on_type_mismatch() {
        Value::Bool(false).as_int();
    }

    #[test]
    fn defaults_match_types() {
        assert_eq!(ValueType::Int.default_value(), Value::Int(0));
        assert_eq!(ValueType::Str.default_value(), Value::str(""));
        assert_eq!(ValueType::Bool.default_value(), Value::Bool(false));
        assert_eq!(ValueType::Double.default_value(), Value::Double(0.0));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from(2.0f64), Value::Double(2.0));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("t")), Value::str("t"));
    }
}
