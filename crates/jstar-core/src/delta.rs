//! The Delta set — JStar's multi-level causal priority queue (§5).
//!
//! "The Delta set is organised as a single tree, containing tuples from many
//! tables, sorted lexicographically by the orderby lists of those tables."
//! Each level of the tree is one component of the [`OrderKey`]; the leaves
//! hold *sets* of tuples (duplicates are removed on insert — "a
//! priority-queue is not sufficient, because we also need to remove
//! duplicate tuples as they are inserted"). All tuples in the minimal leaf
//! form one equivalence class and may execute in parallel.
//!
//! Two front-ends share the tree:
//!
//! * [`DeltaTree`] — the single-threaded tree used directly by the
//!   sequential engine and by the coordinator of the parallel engine;
//! * [`ShardedInbox`] — per-worker staging buffers that worker threads
//!   append freshly produced tuples into during a parallel step. Each pool
//!   worker owns one shard (routed by its stable
//!   [`jstar_pool::ThreadPool::current_worker_index`]), so staging a tuple
//!   is an uncontended `Vec::push`; the coordinator swaps all shards out in
//!   bulk between steps ([`ShardedInbox::drain_batch`]). The Law of
//!   Causality guarantees staged tuples never belong to the *current* step,
//!   so draining at the step boundary is semantically exact. (The paper's
//!   implementation used a `ConcurrentSkipListMap` tree, which all workers
//!   mutate concurrently; the sharded design removes that contention point
//!   entirely — the predecessor of this design, a single shared MPMC
//!   `SegQueue`, serialised every worker `put` on one queue head.)

use crate::orderby::{KeyPart, OrderKey};
use crate::tuple::Tuple;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashSet};

/// One node of the Delta tree: tuples whose keys end exactly here, plus
/// children for longer keys.
#[derive(Debug, Default)]
struct DeltaNode {
    /// Tuples whose order key terminates at this node (one equivalence
    /// class). For most programs only leaves are populated, but tables with
    /// prefix-length keys (or `par` components, which truncate keys) also
    /// land in interior nodes.
    here: HashSet<Tuple>,
    /// Children, sorted by the next key component. `KeyPart`'s `Ord` gives
    /// named strat levels and `seq` levels their paper ordering.
    children: BTreeMap<KeyPart, DeltaNode>,
}

impl DeltaNode {
    fn is_empty(&self) -> bool {
        self.here.is_empty() && self.children.is_empty()
    }

    fn insert(&mut self, key: &[KeyPart], tuple: Tuple) -> bool {
        match key.first() {
            None => self.here.insert(tuple),
            Some(part) => {
                // Look up by reference first: the common case on a hot
                // workload (Dijkstra re-putting Estimates at an existing
                // distance) hits an existing child, so the `KeyPart` clone
                // of the `entry` API would be pure waste.
                match self.children.get_mut(part) {
                    Some(child) => child.insert(&key[1..], tuple),
                    None => self
                        .children
                        .entry(part.clone())
                        .or_default()
                        .insert(&key[1..], tuple),
                }
            }
        }
    }

    fn contains(&self, key: &[KeyPart], tuple: &Tuple) -> bool {
        match key.first() {
            None => self.here.contains(tuple),
            Some(part) => self
                .children
                .get(part)
                .is_some_and(|c| c.contains(&key[1..], tuple)),
        }
    }

    /// Removes and returns the minimal equivalence class below this node,
    /// appending the path to `path`. Prunes nodes emptied by the removal.
    fn pop_min(&mut self, path: &mut Vec<KeyPart>) -> Option<Vec<Tuple>> {
        // Tuples ending at this node order before everything in children
        // (a strict prefix is causally earlier).
        if !self.here.is_empty() {
            return Some(self.here.drain().collect());
        }
        loop {
            let mut entry = self.children.first_entry()?;
            path.push(entry.key().clone());
            if let Some(class) = entry.get_mut().pop_min(path) {
                if entry.get().is_empty() {
                    entry.remove();
                }
                return Some(class);
            }
            // Empty child left behind (should not happen, but prune and
            // retry rather than loop forever).
            path.pop();
            entry.remove();
        }
    }

    #[cfg(test)]
    fn count(&self) -> usize {
        self.here.len() + self.children.values().map(|c| c.count()).sum::<usize>()
    }
}

/// The single-threaded Delta tree.
#[derive(Debug, Default)]
pub struct DeltaTree {
    root: DeltaNode,
    len: usize,
}

impl DeltaTree {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a tuple at its order key. Returns false when an identical
    /// tuple already waits at the same position (set semantics).
    pub fn insert(&mut self, key: &OrderKey, tuple: Tuple) -> bool {
        let fresh = self.root.insert(&key.0, tuple);
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// True if the identical tuple is already queued at `key`.
    pub fn contains(&self, key: &OrderKey, tuple: &Tuple) -> bool {
        self.root.contains(&key.0, tuple)
    }

    /// Removes and returns the minimal equivalence class: the set of all
    /// queued tuples with the smallest order key, together with that key.
    ///
    /// This is the unit of parallelism of the paper's "simple all-minimums
    /// parallelisation strategy".
    pub fn pop_min_class(&mut self) -> Option<(OrderKey, Vec<Tuple>)> {
        if self.len == 0 {
            return None;
        }
        let mut path = Vec::new();
        let class = self.root.pop_min(&mut path)?;
        self.len -= class.len();
        Some((OrderKey(path), class))
    }

    /// Number of queued tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[cfg(test)]
    fn deep_count(&self) -> usize {
        self.root.count()
    }
}

/// A flat alternative Delta structure: one ordered map from complete
/// [`OrderKey`]s to tuple sets, instead of a tree of key components.
///
/// Functionally interchangeable with [`DeltaTree`] (same dedup, same
/// extraction order) — kept as an **ablation** of the paper's tree design:
/// the tree shares key prefixes across tables and levels, the flat map
/// clones and compares whole keys on every operation. The
/// `ablation_delta` bench measures the difference on a Dijkstra-shaped
/// workload; [`DeltaKind`] lets the engine switch between them at
/// configuration time (another "late commitment" knob).
#[derive(Debug, Default)]
pub struct FlatDelta {
    map: BTreeMap<OrderKey, HashSet<Tuple>>,
    len: usize,
}

impl FlatDelta {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a tuple; false when it is a duplicate at the same key.
    pub fn insert(&mut self, key: &OrderKey, tuple: Tuple) -> bool {
        // Borrow-first lookup avoids cloning the whole key when the class
        // already exists (the common case for wide classes).
        let fresh = match self.map.get_mut(key) {
            Some(set) => set.insert(tuple),
            None => self.map.entry(key.clone()).or_default().insert(tuple),
        };
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// True if the identical tuple waits at `key`.
    pub fn contains(&self, key: &OrderKey, tuple: &Tuple) -> bool {
        self.map.get(key).is_some_and(|s| s.contains(tuple))
    }

    /// Removes and returns the minimal equivalence class.
    pub fn pop_min_class(&mut self) -> Option<(OrderKey, Vec<Tuple>)> {
        let (key, set) = self.map.pop_first()?;
        self.len -= set.len();
        Some((key, set.into_iter().collect()))
    }

    /// Number of queued tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Which Delta structure the engine should use (ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaKind {
    /// The paper's multi-level tree.
    #[default]
    Tree,
    /// The flat whole-key ordered map.
    Flat,
}

/// Engine-facing wrapper over the two Delta structures.
#[derive(Debug)]
pub enum DeltaQueue {
    Tree(DeltaTree),
    Flat(FlatDelta),
}

impl DeltaQueue {
    pub fn new(kind: DeltaKind) -> Self {
        match kind {
            DeltaKind::Tree => DeltaQueue::Tree(DeltaTree::new()),
            DeltaKind::Flat => DeltaQueue::Flat(FlatDelta::new()),
        }
    }

    pub fn insert(&mut self, key: &OrderKey, tuple: Tuple) -> bool {
        match self {
            DeltaQueue::Tree(t) => t.insert(key, tuple),
            DeltaQueue::Flat(f) => f.insert(key, tuple),
        }
    }

    pub fn pop_min_class(&mut self) -> Option<(OrderKey, Vec<Tuple>)> {
        match self {
            DeltaQueue::Tree(t) => t.pop_min_class(),
            DeltaQueue::Flat(f) => f.pop_min_class(),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            DeltaQueue::Tree(t) => t.len(),
            DeltaQueue::Flat(f) => f.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One staging shard. Padded to its own cache lines so two workers
/// appending to neighbouring shards never false-share.
#[derive(Debug, Default)]
#[repr(align(128))]
struct Shard {
    buf: Mutex<Vec<(OrderKey, Tuple)>>,
}

/// Per-worker staging area for tuples produced during a parallel step.
///
/// Shard `i` is written only by pool worker `i` (routed via
/// [`jstar_pool::ThreadPool::current_worker_index`]); the last shard
/// collects puts from foreign threads (the coordinator between steps,
/// `-noDelta` rule cascades on external threads, injected events). A
/// worker's push is therefore an uncontended mutex acquire — the lock
/// exists only to order the worker's appends against the coordinator's
/// bulk swap at the step boundary, never against other workers.
#[derive(Debug)]
pub struct ShardedInbox {
    shards: Vec<Shard>,
}

impl ShardedInbox {
    /// Creates an inbox with one shard per pool worker plus one overflow
    /// shard for non-worker threads.
    pub fn new(workers: usize) -> Self {
        ShardedInbox {
            shards: (0..workers + 1).map(|_| Shard::default()).collect(),
        }
    }

    /// The shard index for threads that are not pool workers.
    pub fn external_shard(&self) -> usize {
        self.shards.len() - 1
    }

    /// Stages a tuple produced during the current step. `shard` must be
    /// the caller's stable worker index, or [`Self::external_shard`].
    /// Deliberately touches *only* the caller's shard — no shared counter,
    /// no cross-core cache-line traffic per tuple.
    pub fn push(&self, shard: usize, key: OrderKey, tuple: Tuple) {
        self.shards[shard].buf.lock().push((key, tuple));
    }

    /// Swaps every shard's buffer out into `out` (appending), leaving the
    /// inbox empty. One mutex acquire per shard per step (shards =
    /// workers + 1) — the per-tuple queue traffic of the old single-queue
    /// design is gone.
    pub fn drain_batch(&self, out: &mut Vec<(OrderKey, Tuple)>) {
        for shard in &self.shards {
            let mut buf = shard.buf.lock();
            if out.is_empty() && buf.len() > out.capacity() {
                // Steal the biggest allocation wholesale instead of copying.
                std::mem::swap(&mut *buf, out);
            } else {
                out.append(&mut buf);
            }
        }
    }

    /// Drains everything staged so far into the tree. Returns the number
    /// of tuples actually inserted (duplicates are dropped by the tree).
    pub fn drain_into(&self, tree: &mut DeltaTree) -> usize {
        let mut staged = Vec::new();
        self.drain_batch(&mut staged);
        let mut inserted = 0;
        for (key, tuple) in staged {
            if tree.insert(&key, tuple) {
                inserted += 1;
            }
        }
        inserted
    }

    /// True when nothing is staged (sweeps the shards; intended for
    /// assertions and tests, not the hot path).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.buf.lock().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;
    use crate::value::Value;

    fn key(parts: &[KeyPart]) -> OrderKey {
        OrderKey(parts.to_vec())
    }

    fn tup(table: u32, v: i64) -> Tuple {
        Tuple::new(TableId(table), vec![Value::Int(v)])
    }

    fn skey(strat: u32, s: i64) -> OrderKey {
        key(&[KeyPart::Strat(strat), KeyPart::Seq(Value::Int(s))])
    }

    #[test]
    fn pop_returns_keys_in_order() {
        let mut tree = DeltaTree::new();
        tree.insert(&skey(0, 5), tup(0, 5));
        tree.insert(&skey(0, 1), tup(0, 1));
        tree.insert(&skey(1, 0), tup(1, 0));
        tree.insert(&skey(0, 3), tup(0, 3));

        let mut seen = Vec::new();
        while let Some((k, class)) = tree.pop_min_class() {
            assert_eq!(class.len(), 1);
            seen.push(k);
        }
        let expected = vec![skey(0, 1), skey(0, 3), skey(0, 5), skey(1, 0)];
        assert_eq!(seen, expected);
        assert!(tree.is_empty());
    }

    #[test]
    fn equal_keys_form_one_class() {
        // "If we had 11 Ship tuples within frame 18, ... 11 fork/join tasks
        // will be created" (§5).
        let mut tree = DeltaTree::new();
        for i in 0..11 {
            tree.insert(&skey(0, 18), tup(0, 100 + i));
        }
        tree.insert(&skey(0, 19), tup(0, 999));
        let (k, class) = tree.pop_min_class().unwrap();
        assert_eq!(k, skey(0, 18));
        assert_eq!(class.len(), 11);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn duplicates_are_removed_on_insert() {
        let mut tree = DeltaTree::new();
        assert!(tree.insert(&skey(0, 1), tup(0, 7)));
        assert!(!tree.insert(&skey(0, 1), tup(0, 7)));
        assert_eq!(tree.len(), 1);
        let (_, class) = tree.pop_min_class().unwrap();
        assert_eq!(class.len(), 1);
    }

    #[test]
    fn contains_checks_exact_position() {
        let mut tree = DeltaTree::new();
        tree.insert(&skey(0, 1), tup(0, 7));
        assert!(tree.contains(&skey(0, 1), &tup(0, 7)));
        assert!(!tree.contains(&skey(0, 2), &tup(0, 7)));
        assert!(!tree.contains(&skey(0, 1), &tup(0, 8)));
    }

    #[test]
    fn prefix_keys_pop_before_extensions() {
        // A table whose orderby is a strict prefix of another's: its tuples
        // are causally earlier.
        let mut tree = DeltaTree::new();
        let short = key(&[KeyPart::Strat(0)]);
        let long = key(&[KeyPart::Strat(0), KeyPart::Seq(Value::Int(0))]);
        tree.insert(&long, tup(1, 1));
        tree.insert(&short, tup(0, 0));
        let (k1, _) = tree.pop_min_class().unwrap();
        assert_eq!(k1, short);
        let (k2, _) = tree.pop_min_class().unwrap();
        assert_eq!(k2, long);
    }

    #[test]
    fn len_tracks_inserts_and_pops() {
        let mut tree = DeltaTree::new();
        for i in 0..100 {
            tree.insert(&skey(0, i % 10), tup(0, i));
        }
        assert_eq!(tree.len(), 100);
        assert_eq!(tree.deep_count(), 100);
        let mut drained = 0;
        while let Some((_, class)) = tree.pop_min_class() {
            drained += class.len();
        }
        assert_eq!(drained, 100);
        assert_eq!(tree.len(), 0);
    }

    #[test]
    fn interleaved_insert_and_pop_respects_order() {
        // Dijkstra's pattern: popping distance d inserts d + w.
        let mut tree = DeltaTree::new();
        tree.insert(&skey(0, 0), tup(0, 0));
        let mut last = i64::MIN;
        let mut steps = 0;
        while let Some((k, class)) = tree.pop_min_class() {
            let d = match &k.0[1] {
                KeyPart::Seq(Value::Int(d)) => *d,
                _ => unreachable!(),
            };
            assert!(d >= last, "keys must be non-decreasing");
            last = d;
            steps += 1;
            if steps < 20 {
                for t in class {
                    let v = t.int(0);
                    tree.insert(&skey(0, d + 3), tup(0, v + 1));
                    tree.insert(&skey(0, d + 1), tup(0, v + 2));
                }
            }
        }
        assert!(steps >= 20);
    }

    #[test]
    fn flat_delta_matches_tree_behaviour() {
        let mut tree = DeltaTree::new();
        let mut flat = FlatDelta::new();
        let inserts = [
            (skey(0, 5), tup(0, 5)),
            (skey(0, 1), tup(0, 1)),
            (skey(0, 1), tup(0, 1)), // duplicate
            (skey(1, 0), tup(1, 0)),
            (skey(0, 1), tup(0, 99)),
        ];
        for (k, t) in &inserts {
            assert_eq!(tree.insert(k, t.clone()), flat.insert(k, t.clone()));
        }
        assert_eq!(tree.len(), flat.len());
        assert_eq!(
            flat.contains(&skey(0, 1), &tup(0, 1)),
            tree.contains(&skey(0, 1), &tup(0, 1))
        );
        loop {
            match (tree.pop_min_class(), flat.pop_min_class()) {
                (None, None) => break,
                (Some((kt, mut ct)), Some((kf, mut cf))) => {
                    assert_eq!(kt, kf);
                    ct.sort();
                    cf.sort();
                    assert_eq!(ct, cf);
                }
                other => panic!("structures disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn delta_queue_dispatches_both_kinds() {
        for kind in [DeltaKind::Tree, DeltaKind::Flat] {
            let mut q = DeltaQueue::new(kind);
            assert!(q.is_empty());
            assert!(q.insert(&skey(0, 2), tup(0, 2)));
            assert!(q.insert(&skey(0, 1), tup(0, 1)));
            assert!(!q.insert(&skey(0, 1), tup(0, 1)));
            assert_eq!(q.len(), 2);
            let (k, _) = q.pop_min_class().unwrap();
            assert_eq!(k, skey(0, 1), "{kind:?}");
        }
    }

    #[test]
    fn inbox_drains_to_tree_with_dedup() {
        let inbox = ShardedInbox::new(2);
        let ext = inbox.external_shard();
        inbox.push(ext, skey(0, 1), tup(0, 1));
        inbox.push(0, skey(0, 1), tup(0, 1)); // duplicate, different shard
        inbox.push(1, skey(0, 2), tup(0, 2));
        let mut tree = DeltaTree::new();
        let inserted = inbox.drain_into(&mut tree);
        assert_eq!(inserted, 2);
        assert!(inbox.is_empty());
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn inbox_drain_batch_collects_all_shards() {
        let inbox = ShardedInbox::new(3);
        for shard in 0..4 {
            for i in 0..10 {
                inbox.push(shard, skey(0, i), tup(0, (shard as i64) * 100 + i));
            }
        }
        let mut out = Vec::new();
        inbox.drain_batch(&mut out);
        assert_eq!(out.len(), 40);
        assert!(inbox.is_empty());
        // Second drain is a no-op.
        inbox.drain_batch(&mut out);
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn inbox_is_safe_from_many_worker_threads() {
        let inbox = std::sync::Arc::new(ShardedInbox::new(4));
        let pool = jstar_pool::ThreadPool::new(4);
        pool.scope(|s| {
            for thread in 0..8i64 {
                let inbox = std::sync::Arc::clone(&inbox);
                let pool = &pool;
                s.spawn(move |_| {
                    let shard = pool
                        .current_worker_index()
                        .unwrap_or_else(|| inbox.external_shard());
                    for i in 0..250 {
                        inbox.push(shard, skey(0, i % 50), tup(0, thread * 1000 + i));
                    }
                });
            }
        });
        let mut tree = DeltaTree::new();
        let inserted = inbox.drain_into(&mut tree);
        assert_eq!(inserted, 2000, "all distinct tuples arrive");
        // 50 classes of 40 tuples each.
        let (_, first) = tree.pop_min_class().unwrap();
        assert_eq!(first.len(), 40);
    }
}
