//! The Delta set — JStar's multi-level causal priority queue (§5).
//!
//! "The Delta set is organised as a single tree, containing tuples from many
//! tables, sorted lexicographically by the orderby lists of those tables."
//! Each level of the tree is one component of the [`OrderKey`]; the leaves
//! hold *sets* of tuples (duplicates are removed on insert — "a
//! priority-queue is not sufficient, because we also need to remove
//! duplicate tuples as they are inserted"). All tuples in the minimal leaf
//! form one equivalence class and may execute in parallel.
//!
//! Two front-ends share the tree:
//!
//! * [`DeltaTree`] — the single-threaded tree used directly by the
//!   sequential engine and by the coordinator of the parallel engine;
//! * [`ShardedInbox`] — per-worker staging buffers that worker threads
//!   append freshly produced tuples into during a parallel step. Each pool
//!   worker owns one shard (routed by its stable
//!   [`jstar_pool::ThreadPool::current_worker_index`]), so staging a tuple
//!   is an uncontended `Vec::push`; the coordinator swaps all shards out in
//!   bulk between steps ([`ShardedInbox::drain_batch`]). The Law of
//!   Causality guarantees staged tuples never belong to the *current* step,
//!   so draining at the step boundary is semantically exact. (The paper's
//!   implementation used a `ConcurrentSkipListMap` tree, which all workers
//!   mutate concurrently; the sharded design removes that contention point
//!   entirely — the predecessor of this design, a single shared MPMC
//!   `SegQueue`, serialised every worker `put` on one queue head.)

use crate::fxhash::{hash_seq, FxBuildHasher};
use crate::orderby::{KeyPart, OrderKey};
use crate::tuple::Tuple;
use jstar_pool::{TaskBatch, ThreadPool};
// Synchronisation comes from the jstar-check shim: real std/parking_lot
// types in production, instrumented model-checked types under
// `--features model-check` (see crates/jstar-check and CONCURRENCY.md).
use jstar_check::sync::{AtomicUsize, Mutex, Ordering};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashSet};

/// Tuple sets throughout the Delta structures use the crate's Fx hasher:
/// dedup hashes every staged tuple, so SipHash setup cost per insert is
/// pure hot-path overhead (candidates are verified by `Eq` regardless).
type TupleSet = HashSet<Tuple, FxBuildHasher>;

/// One node of the Delta tree: tuples whose keys end exactly here, plus
/// children for longer keys.
#[derive(Debug, Default)]
struct DeltaNode {
    /// Tuples whose order key terminates at this node (one equivalence
    /// class). For most programs only leaves are populated, but tables with
    /// prefix-length keys (or `par` components, which truncate keys) also
    /// land in interior nodes.
    here: TupleSet,
    /// Children, sorted by the next key component. `KeyPart`'s `Ord` gives
    /// named strat levels and `seq` levels their paper ordering.
    children: BTreeMap<KeyPart, DeltaNode>,
}

impl DeltaNode {
    fn is_empty(&self) -> bool {
        self.here.is_empty() && self.children.is_empty()
    }

    fn insert(&mut self, key: &[KeyPart], tuple: Tuple) -> bool {
        match key.first() {
            None => self.here.insert(tuple),
            Some(part) => {
                // Look up by reference first: the common case on a hot
                // workload (Dijkstra re-putting Estimates at an existing
                // distance) hits an existing child, so the `KeyPart` clone
                // of the `entry` API would be pure waste.
                match self.children.get_mut(part) {
                    Some(child) => child.insert(&key[1..], tuple),
                    None => self
                        .children
                        .entry(part.clone())
                        .or_default()
                        .insert(&key[1..], tuple),
                }
            }
        }
    }

    fn contains(&self, key: &[KeyPart], tuple: &Tuple) -> bool {
        match key.first() {
            None => self.here.contains(tuple),
            Some(part) => self
                .children
                .get(part)
                .is_some_and(|c| c.contains(&key[1..], tuple)),
        }
    }

    /// Removes and returns the minimal equivalence class below this node,
    /// appending the path to `path`. Prunes nodes emptied by the removal.
    fn pop_min(&mut self, path: &mut Vec<KeyPart>) -> Option<Vec<Tuple>> {
        // Tuples ending at this node order before everything in children
        // (a strict prefix is causally earlier).
        if !self.here.is_empty() {
            return Some(self.here.drain().collect());
        }
        loop {
            let mut entry = self.children.first_entry()?;
            path.push(entry.key().clone());
            if let Some(class) = entry.get_mut().pop_min(path) {
                if entry.get().is_empty() {
                    entry.remove();
                }
                return Some(class);
            }
            // Empty child left behind (should not happen, but prune and
            // retry rather than loop forever).
            path.pop();
            entry.remove();
        }
    }

    /// Visits every tuple at this node and below, non-destructively.
    fn for_each(&self, f: &mut dyn FnMut(&Tuple)) {
        for t in &self.here {
            f(t);
        }
        for child in self.children.values() {
            child.for_each(f);
        }
    }

    /// Non-destructive twin of [`DeltaNode::pop_min`]: finds the minimal
    /// equivalence class below this node, appending its path to `path`,
    /// without removing anything.
    fn peek_min<'a>(&'a self, path: &mut Vec<KeyPart>) -> Option<&'a TupleSet> {
        if !self.here.is_empty() {
            return Some(&self.here);
        }
        for (part, child) in &self.children {
            path.push(part.clone());
            if let Some(set) = child.peek_min(path) {
                return Some(set);
            }
            path.pop();
        }
        None
    }

    /// Structurally merges `other` into `self`, calling `on_dup(table
    /// index)` for every tuple of `other` that was already present at the
    /// same position. Subtrees that exist only in `other` are spliced in
    /// wholesale (O(1) per subtree — no per-tuple work), which is what
    /// makes grafting worker-built partition trees cheap: the coordinator
    /// pays per *shared* node, not per tuple.
    fn merge_from(&mut self, mut other: DeltaNode, on_dup: &mut dyn FnMut(usize)) {
        if self.here.is_empty() && self.children.is_empty() {
            *self = other;
            return;
        }
        for t in other.here.drain() {
            let ti = t.table().index();
            if !self.here.insert(t) {
                on_dup(ti);
            }
        }
        for (part, child) in std::mem::take(&mut other.children) {
            match self.children.entry(part) {
                Entry::Vacant(e) => {
                    e.insert(child);
                }
                Entry::Occupied(mut e) => e.get_mut().merge_from(child, on_dup),
            }
        }
    }

    #[cfg(test)]
    fn count(&self) -> usize {
        self.here.len() + self.children.values().map(|c| c.count()).sum::<usize>()
    }
}

/// The pieces a Delta structure contributes to the shared
/// [`merge_partitioned_impl`] scaffold: a sequential insert, an
/// off-thread partial build, and a coordinator-side graft.
trait PartitionMerge {
    /// The structure a pool worker builds from one partition run.
    type Partial: Send;

    /// Sequential-fallback insert (identical to the public `insert`).
    fn insert_one(&mut self, key: &OrderKey, t: Tuple) -> bool;

    /// Builds a partial from a run, counting fresh inserts per table in
    /// `per_table`; returns the partial and its fresh-insert total. Runs
    /// on pool workers — no access to the main structure.
    fn build_partial(
        run: &mut Vec<(OrderKey, Tuple)>,
        per_table: &mut [u64],
    ) -> (Self::Partial, usize);

    /// Merges a partial into the main structure, calling `on_dup(table
    /// index)` for every tuple that was already present.
    fn graft(&mut self, partial: Self::Partial, on_dup: &mut dyn FnMut(usize));

    /// Adjusts the structure's cached length after a graft round (the
    /// sequential path goes through `insert_one`, which already counts).
    fn add_len(&mut self, n: usize);
}

/// Shared scaffold for the partitioned merges of [`DeltaTree`] and
/// [`FlatDelta`]: decides sequential-vs-parallel, runs the per-partition
/// partial builds on the pool (handing the emptied run buffers back so
/// staging allocations survive the round trip — the next drain
/// swap-steals them into the shard bins instead of re-growing every
/// buffer from zero), and settles the per-table dedup accounting around
/// the caller's graft.
fn merge_partitioned_impl<M: PartitionMerge>(
    m: &mut M,
    partitions: &mut [Vec<(OrderKey, Tuple)>],
    pool: Option<&ThreadPool>,
    inserted_by_table: &mut [u64],
    seq_threshold: usize,
) -> usize {
    let total: usize = partitions.iter().map(Vec::len).sum();
    if total == 0 {
        return 0;
    }
    let busy = partitions.iter().filter(|p| !p.is_empty()).count();
    let pool = match pool {
        Some(p) if total >= seq_threshold.max(1) && busy > 1 && p.num_threads() > 1 => p,
        _ => {
            let mut inserted = 0usize;
            for part in partitions.iter_mut() {
                for (key, t) in part.drain(..) {
                    let ti = t.table().index();
                    if m.insert_one(&key, t) {
                        inserted_by_table[ti] += 1;
                        inserted += 1;
                    }
                }
            }
            return inserted;
        }
    };

    let n_tables = inserted_by_table.len();
    let busy_idx: Vec<usize> = (0..partitions.len())
        .filter(|&i| !partitions[i].is_empty())
        .collect();
    let mut tasks = Vec::with_capacity(busy_idx.len());
    for &i in &busy_idx {
        let mut run: Vec<(OrderKey, Tuple)> = std::mem::take(&mut partitions[i]);
        tasks.push(move || {
            let mut per_table = vec![0u64; n_tables];
            let (partial, len) = M::build_partial(&mut run, &mut per_table);
            (partial, len, per_table, run)
        });
    }
    let partials = jstar_pool::parallel_tasks(pool, tasks);

    let mut inserted = 0usize;
    for (&i, (partial, len, per_table, run)) in busy_idx.iter().zip(partials) {
        partitions[i] = run;
        inserted += len;
        for (ti, c) in per_table.iter().enumerate() {
            inserted_by_table[ti] += c;
        }
        // Tuples the main structure already queues at the same position
        // are duplicates after all: take their counts back.
        let mut dropped = 0usize;
        m.graft(partial, &mut |ti| {
            inserted_by_table[ti] -= 1;
            dropped += 1;
        });
        inserted -= dropped;
    }
    m.add_len(inserted);
    inserted
}

/// The minimal equivalence class, extracted from a Delta queue ahead of
/// its execution slot by the lookahead step machine.
///
/// [`DeltaQueue::prepare_min_class`] removes the minimal class exactly
/// like [`DeltaQueue::pop_min_class`] would, but wraps it so the engine
/// can hold it *speculatively* while later epoch merges land:
///
/// * a merge whose minimum key orders **after** `key` cannot touch the
///   class (no new tuple can join it or precede it) — the preparation
///   stays valid and the next step starts from it with zero extraction
///   work on the critical path;
/// * a merge whose minimum orders **at or below** `key` invalidates it:
///   [`DeltaQueue::restore_prepared`] returns the tuples to the queue,
///   where canonical-set semantics collapse any duplicates the merge
///   introduced, so the subsequent pop yields exactly the class the
///   non-lookahead engine would have extracted. The pop *schedule* is
///   therefore bit-identical whether or not classes are ever prepared.
#[derive(Debug)]
pub struct PreparedClass {
    /// The class's order key (the minimum at preparation time).
    pub key: OrderKey,
    /// The class members.
    pub tuples: Vec<Tuple>,
    /// The epoch sequence number current at preparation time: merges up
    /// to and including this epoch are already reflected in the class,
    /// later ones must be validated against `key`.
    pub epoch_mark: u64,
}

impl PreparedClass {
    /// True when a merged epoch with minimal key `merged_min` leaves
    /// this preparation valid (every merged tuple orders strictly after
    /// the prepared class, so none can join or precede it).
    pub fn survives(&self, merged_min: Option<&OrderKey>) -> bool {
        match merged_min {
            None => true,
            Some(min) => *min > self.key,
        }
    }
}

/// One closed staging epoch on its way into the Delta queue: the
/// per-partition runs taken by [`ShardedInbox::swap_epoch`], with their
/// subtree builds possibly still in flight on the pool's background
/// lane.
///
/// This is the unit the pipelined engine's epoch *ring* holds: with
/// `pipeline_depth` ≥ 2 the coordinator closes up to `depth` epochs and
/// lets their builds proceed while it does other work, absorbing each
/// epoch **in order** via [`DeltaQueue::absorb_epoch`] once its builds
/// complete (or blocking on the oldest when the ring is full). Absorb
/// order does not affect the queue contents — the Delta structures are
/// canonical sets — but in-order absorption keeps the per-epoch minimum
/// keys meaningful for lookahead invalidation.
pub struct EpochBuild {
    inner: EpochInner,
    staged: usize,
    seq: u64,
}

/// One partition's finished background build.
struct Built<P> {
    partial: P,
    len: usize,
    per_table: Vec<u64>,
    /// Minimum staged key of the partition (pre-dedup — conservative
    /// for invalidation checks).
    min_key: Option<OrderKey>,
    /// The emptied run buffer, recycled to the caller.
    run: Vec<(OrderKey, Tuple)>,
}

enum EpochInner {
    /// Below the parallel-merge threshold (or no usable pool): the raw
    /// runs, inserted sequentially at absorb time.
    Sequential(Vec<Vec<(OrderKey, Tuple)>>),
    /// Per-partition tree builds in flight; `spare` keeps the empty
    /// partition buffers for recycling.
    Tree {
        batch: TaskBatch<Built<DeltaNode>>,
        spare: Vec<Vec<(OrderKey, Tuple)>>,
    },
    /// Flat-map twin of `Tree`.
    Flat {
        batch: TaskBatch<Built<BTreeMap<OrderKey, TupleSet>>>,
        spare: Vec<Vec<(OrderKey, Tuple)>>,
    },
}

fn build_task<M: PartitionMerge>(
    mut run: Vec<(OrderKey, Tuple)>,
    n_tables: usize,
) -> Built<M::Partial> {
    let min_key = run.iter().map(|(k, _)| k).min().cloned();
    let mut per_table = vec![0u64; n_tables];
    let (partial, len) = M::build_partial(&mut run, &mut per_table);
    Built {
        partial,
        len,
        per_table,
        min_key,
        run,
    }
}

impl EpochBuild {
    /// Closes a swapped-out set of partition runs into an epoch build.
    ///
    /// Mirrors the parallel/sequential decision of
    /// [`DeltaTree::merge_partitioned`]: with a multi-thread pool, at
    /// least `seq_threshold` staged tuples and more than one busy
    /// partition, the per-partition subtree builds are submitted on the
    /// pool's **background lane** (via [`jstar_pool::submit_background`])
    /// and run while the caller does other work; otherwise the runs are
    /// kept raw and inserted sequentially at absorb time. `seq` is the
    /// epoch's sequence number (the [`PreparedClass::epoch_mark`]
    /// domain); `n_tables` sizes the per-table insert counters.
    pub fn start(
        kind: DeltaKind,
        seq: u64,
        partitions: Vec<Vec<(OrderKey, Tuple)>>,
        pool: Option<&ThreadPool>,
        n_tables: usize,
        seq_threshold: usize,
    ) -> EpochBuild {
        let staged: usize = partitions.iter().map(Vec::len).sum();
        let busy = partitions.iter().filter(|p| !p.is_empty()).count();
        let pool = match pool {
            Some(p) if staged >= seq_threshold.max(1) && busy > 1 && p.num_threads() > 1 => p,
            _ => {
                return EpochBuild {
                    inner: EpochInner::Sequential(partitions),
                    staged,
                    seq,
                }
            }
        };
        let mut spare = Vec::with_capacity(partitions.len() - busy);
        let mut runs = Vec::with_capacity(busy);
        for run in partitions {
            if run.is_empty() {
                spare.push(run);
            } else {
                runs.push(run);
            }
        }
        let inner = match kind {
            DeltaKind::Tree => EpochInner::Tree {
                batch: jstar_pool::submit_background(
                    pool,
                    runs.into_iter()
                        .map(|run| move || build_task::<DeltaTree>(run, n_tables))
                        .collect(),
                ),
                spare,
            },
            DeltaKind::Flat => EpochInner::Flat {
                batch: jstar_pool::submit_background(
                    pool,
                    runs.into_iter()
                        .map(|run| move || build_task::<FlatDelta>(run, n_tables))
                        .collect(),
                ),
                spare,
            },
        };
        EpochBuild { inner, staged, seq }
    }

    /// Number of staged entries in the epoch (pre-dedup).
    pub fn staged(&self) -> usize {
        self.staged
    }

    /// The epoch's sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// True once the epoch can be absorbed without waiting: its
    /// background builds (if any) have all completed.
    pub fn is_ready(&self) -> bool {
        match &self.inner {
            EpochInner::Sequential(_) => true,
            EpochInner::Tree { batch, .. } => batch.is_complete(),
            EpochInner::Flat { batch, .. } => batch.is_complete(),
        }
    }
}

/// The outcome of absorbing one [`EpochBuild`].
pub struct EpochAbsorbed {
    /// Tuples actually inserted (duplicates dropped).
    pub inserted: usize,
    /// Minimum staged key of the epoch (pre-dedup) — the lookahead
    /// invalidation probe. `None` for an empty epoch.
    pub min_key: Option<OrderKey>,
    /// The emptied run buffers, recycled for the next swap.
    pub buffers: Vec<Vec<(OrderKey, Tuple)>>,
}

fn absorb_built<M: PartitionMerge>(
    m: &mut M,
    builts: Vec<Built<M::Partial>>,
    inserted_by_table: &mut [u64],
    buffers: &mut Vec<Vec<(OrderKey, Tuple)>>,
) -> (usize, Option<OrderKey>) {
    let mut inserted = 0usize;
    let mut min_key: Option<OrderKey> = None;
    for built in builts {
        inserted += built.len;
        for (ti, c) in built.per_table.iter().enumerate() {
            inserted_by_table[ti] += c;
        }
        if let Some(k) = built.min_key {
            if min_key.as_ref().is_none_or(|m| k < *m) {
                min_key = Some(k);
            }
        }
        let mut dropped = 0usize;
        m.graft(built.partial, &mut |ti| {
            inserted_by_table[ti] -= 1;
            dropped += 1;
        });
        inserted -= dropped;
        buffers.push(built.run);
    }
    m.add_len(inserted);
    (inserted, min_key)
}

/// The single-threaded Delta tree.
#[derive(Debug, Default)]
pub struct DeltaTree {
    root: DeltaNode,
    len: usize,
}

impl DeltaTree {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a tuple at its order key. Returns false when an identical
    /// tuple already waits at the same position (set semantics).
    pub fn insert(&mut self, key: &OrderKey, tuple: Tuple) -> bool {
        let fresh = self.root.insert(&key.0, tuple);
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// True if the identical tuple is already queued at `key`.
    pub fn contains(&self, key: &OrderKey, tuple: &Tuple) -> bool {
        self.root.contains(&key.0, tuple)
    }

    /// Removes and returns the minimal equivalence class: the set of all
    /// queued tuples with the smallest order key, together with that key.
    ///
    /// This is the unit of parallelism of the paper's "simple all-minimums
    /// parallelisation strategy".
    pub fn pop_min_class(&mut self) -> Option<(OrderKey, Vec<Tuple>)> {
        if self.len == 0 {
            return None;
        }
        let mut path = Vec::new();
        let class = self.root.pop_min(&mut path)?;
        self.len -= class.len();
        Some((OrderKey(path), class))
    }

    /// Non-destructive [`DeltaTree::pop_min_class`]: the minimal key and
    /// borrowed views of the class members, leaving the tree untouched.
    pub fn peek_min_class(&self) -> Option<(OrderKey, Vec<&Tuple>)> {
        if self.len == 0 {
            return None;
        }
        let mut path = Vec::new();
        let set = self.root.peek_min(&mut path)?;
        Some((OrderKey(path), set.iter().collect()))
    }

    /// The minimal queued order key, without removing anything.
    pub fn peek_min_key(&self) -> Option<OrderKey> {
        if self.len == 0 {
            return None;
        }
        let mut path = Vec::new();
        self.root.peek_min(&mut path)?;
        Some(OrderKey(path))
    }

    /// Extracts the minimal equivalence class into a [`PreparedClass`]
    /// stamped with `epoch_mark`. Exactly [`DeltaTree::pop_min_class`]
    /// plus the speculation wrapper — see [`PreparedClass`] for the
    /// validity contract.
    pub fn prepare_min_class(&mut self, epoch_mark: u64) -> Option<PreparedClass> {
        let (key, tuples) = self.pop_min_class()?;
        Some(PreparedClass {
            key,
            tuples,
            epoch_mark,
        })
    }

    /// Returns an invalidated [`PreparedClass`] to the tree. Canonical
    /// set semantics collapse any duplicates that merged in at the same
    /// position while the class was extracted; `on_dup(table index)` is
    /// called for each such collapse so the caller can unwind the
    /// insert accounting the duplicate's merge already recorded.
    pub fn restore_prepared(&mut self, prepared: PreparedClass, on_dup: &mut dyn FnMut(usize)) {
        for t in prepared.tuples {
            let ti = t.table().index();
            if !self.insert(&prepared.key, t) {
                on_dup(ti);
            }
        }
    }

    /// Visits every queued tuple non-destructively, in no particular
    /// order — the snapshot writer's walk. Order keys are not reported:
    /// they are pure functions of the tuple fields, so a restore
    /// recomputes them by re-injecting through the normal put path.
    pub fn for_each_pending(&self, f: &mut dyn FnMut(&Tuple)) {
        self.root.for_each(f);
    }

    /// Number of queued tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Merges pre-partitioned staged runs into the tree, the per-tuple
    /// work (key hashing, tree descent, set insertion) parallelised on
    /// `pool` when the batch is large enough to pay for fork/join.
    ///
    /// Each partition holds complete key-prefix groups (the
    /// [`ShardedInbox`] bins by prefix at push time, so two entries with
    /// the same order key can never sit in different partitions). Pool
    /// workers build one independent subtree per partition; the
    /// coordinator then grafts them with the structural node merge, which
    /// splices disjoint subtrees wholesale and only walks nodes the main
    /// tree already has. Below `seq_threshold` staged tuples (or without
    /// a pool, or with a single busy partition) the sequential insert
    /// loop runs instead.
    ///
    /// The resulting tree contents — and therefore the
    /// [`DeltaTree::pop_min_class`] sequence — are identical to inserting
    /// every `(key, tuple)` pair sequentially: the tree is a canonical
    /// set keyed by position, so the merge order cannot be observed.
    ///
    /// `inserted_by_table[ti]` is incremented once per tuple of table
    /// `ti` actually inserted (duplicates dropped, exactly as
    /// [`DeltaTree::insert`] reports them); returns the total inserted.
    pub fn merge_partitioned(
        &mut self,
        partitions: &mut [Vec<(OrderKey, Tuple)>],
        pool: Option<&ThreadPool>,
        inserted_by_table: &mut [u64],
        seq_threshold: usize,
    ) -> usize {
        merge_partitioned_impl(self, partitions, pool, inserted_by_table, seq_threshold)
    }

    #[cfg(test)]
    fn deep_count(&self) -> usize {
        self.root.count()
    }
}

impl PartitionMerge for DeltaTree {
    type Partial = DeltaNode;

    fn insert_one(&mut self, key: &OrderKey, t: Tuple) -> bool {
        self.insert(key, t)
    }

    fn build_partial(
        run: &mut Vec<(OrderKey, Tuple)>,
        per_table: &mut [u64],
    ) -> (DeltaNode, usize) {
        let mut node = DeltaNode::default();
        let mut len = 0usize;
        for (key, t) in run.drain(..) {
            let ti = t.table().index();
            if node.insert(&key.0, t) {
                per_table[ti] += 1;
                len += 1;
            }
        }
        (node, len)
    }

    fn graft(&mut self, partial: DeltaNode, on_dup: &mut dyn FnMut(usize)) {
        self.root.merge_from(partial, on_dup);
    }

    fn add_len(&mut self, n: usize) {
        self.len += n;
    }
}

/// A flat alternative Delta structure: one ordered map from complete
/// [`OrderKey`]s to tuple sets, instead of a tree of key components.
///
/// Functionally interchangeable with [`DeltaTree`] (same dedup, same
/// extraction order) — kept as an **ablation** of the paper's tree design:
/// the tree shares key prefixes across tables and levels, the flat map
/// clones and compares whole keys on every operation. The
/// `ablation_delta` bench measures the difference on a Dijkstra-shaped
/// workload; [`DeltaKind`] lets the engine switch between them at
/// configuration time (another "late commitment" knob).
#[derive(Debug, Default)]
pub struct FlatDelta {
    map: BTreeMap<OrderKey, TupleSet>,
    len: usize,
}

impl FlatDelta {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a tuple; false when it is a duplicate at the same key.
    pub fn insert(&mut self, key: &OrderKey, tuple: Tuple) -> bool {
        // Borrow-first lookup avoids cloning the whole key when the class
        // already exists (the common case for wide classes).
        let fresh = match self.map.get_mut(key) {
            Some(set) => set.insert(tuple),
            None => self.map.entry(key.clone()).or_default().insert(tuple),
        };
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// True if the identical tuple waits at `key`.
    pub fn contains(&self, key: &OrderKey, tuple: &Tuple) -> bool {
        self.map.get(key).is_some_and(|s| s.contains(tuple))
    }

    /// Removes and returns the minimal equivalence class.
    pub fn pop_min_class(&mut self) -> Option<(OrderKey, Vec<Tuple>)> {
        let (key, set) = self.map.pop_first()?;
        self.len -= set.len();
        Some((key, set.into_iter().collect()))
    }

    /// Non-destructive [`FlatDelta::pop_min_class`].
    pub fn peek_min_class(&self) -> Option<(OrderKey, Vec<&Tuple>)> {
        let (key, set) = self.map.first_key_value()?;
        Some((key.clone(), set.iter().collect()))
    }

    /// The minimal queued order key, without removing anything.
    pub fn peek_min_key(&self) -> Option<OrderKey> {
        self.map.first_key_value().map(|(k, _)| k.clone())
    }

    /// Flat-map twin of [`DeltaTree::prepare_min_class`].
    pub fn prepare_min_class(&mut self, epoch_mark: u64) -> Option<PreparedClass> {
        let (key, tuples) = self.pop_min_class()?;
        Some(PreparedClass {
            key,
            tuples,
            epoch_mark,
        })
    }

    /// Flat-map twin of [`DeltaTree::restore_prepared`].
    pub fn restore_prepared(&mut self, prepared: PreparedClass, on_dup: &mut dyn FnMut(usize)) {
        for t in prepared.tuples {
            let ti = t.table().index();
            if !self.insert(&prepared.key, t) {
                on_dup(ti);
            }
        }
    }

    /// Flat-map twin of [`DeltaTree::for_each_pending`].
    pub fn for_each_pending(&self, f: &mut dyn FnMut(&Tuple)) {
        for set in self.map.values() {
            for t in set {
                f(t);
            }
        }
    }

    /// Number of queued tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Flat-map twin of [`DeltaTree::merge_partitioned`]: workers build
    /// one ordered sub-map per partition, the coordinator merges them
    /// key-wise (whole tuple sets move when the key is new). Same
    /// contract: contents identical to sequential insertion, counts
    /// reported through `inserted_by_table`, total returned.
    pub fn merge_partitioned(
        &mut self,
        partitions: &mut [Vec<(OrderKey, Tuple)>],
        pool: Option<&ThreadPool>,
        inserted_by_table: &mut [u64],
        seq_threshold: usize,
    ) -> usize {
        merge_partitioned_impl(self, partitions, pool, inserted_by_table, seq_threshold)
    }
}

impl PartitionMerge for FlatDelta {
    type Partial = BTreeMap<OrderKey, TupleSet>;

    fn insert_one(&mut self, key: &OrderKey, t: Tuple) -> bool {
        self.insert(key, t)
    }

    fn build_partial(
        run: &mut Vec<(OrderKey, Tuple)>,
        per_table: &mut [u64],
    ) -> (Self::Partial, usize) {
        let mut map: BTreeMap<OrderKey, TupleSet> = BTreeMap::new();
        let mut len = 0usize;
        for (key, t) in run.drain(..) {
            let ti = t.table().index();
            let fresh = match map.get_mut(&key) {
                Some(set) => set.insert(t),
                None => map.entry(key).or_default().insert(t),
            };
            if fresh {
                per_table[ti] += 1;
                len += 1;
            }
        }
        (map, len)
    }

    fn graft(&mut self, partial: Self::Partial, on_dup: &mut dyn FnMut(usize)) {
        for (key, set) in partial {
            match self.map.entry(key) {
                Entry::Vacant(e) => {
                    e.insert(set);
                }
                Entry::Occupied(mut e) => {
                    for t in set {
                        let ti = t.table().index();
                        if !e.get_mut().insert(t) {
                            on_dup(ti);
                        }
                    }
                }
            }
        }
    }

    fn add_len(&mut self, n: usize) {
        self.len += n;
    }
}

/// Which Delta structure the engine should use (ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaKind {
    /// The paper's multi-level tree.
    #[default]
    Tree,
    /// The flat whole-key ordered map.
    Flat,
}

/// Engine-facing wrapper over the two Delta structures.
#[derive(Debug)]
pub enum DeltaQueue {
    Tree(DeltaTree),
    Flat(FlatDelta),
}

impl DeltaQueue {
    pub fn new(kind: DeltaKind) -> Self {
        match kind {
            DeltaKind::Tree => DeltaQueue::Tree(DeltaTree::new()),
            DeltaKind::Flat => DeltaQueue::Flat(FlatDelta::new()),
        }
    }

    pub fn insert(&mut self, key: &OrderKey, tuple: Tuple) -> bool {
        match self {
            DeltaQueue::Tree(t) => t.insert(key, tuple),
            DeltaQueue::Flat(f) => f.insert(key, tuple),
        }
    }

    pub fn pop_min_class(&mut self) -> Option<(OrderKey, Vec<Tuple>)> {
        match self {
            DeltaQueue::Tree(t) => t.pop_min_class(),
            DeltaQueue::Flat(f) => f.pop_min_class(),
        }
    }

    /// The structure this queue was configured with.
    pub fn kind(&self) -> DeltaKind {
        match self {
            DeltaQueue::Tree(_) => DeltaKind::Tree,
            DeltaQueue::Flat(_) => DeltaKind::Flat,
        }
    }

    /// Non-destructive [`DeltaQueue::pop_min_class`].
    pub fn peek_min_class(&self) -> Option<(OrderKey, Vec<&Tuple>)> {
        match self {
            DeltaQueue::Tree(t) => t.peek_min_class(),
            DeltaQueue::Flat(f) => f.peek_min_class(),
        }
    }

    /// The minimal queued order key, without removing anything.
    pub fn peek_min_key(&self) -> Option<OrderKey> {
        match self {
            DeltaQueue::Tree(t) => t.peek_min_key(),
            DeltaQueue::Flat(f) => f.peek_min_key(),
        }
    }

    /// Extracts the minimal class speculatively (see [`PreparedClass`]).
    pub fn prepare_min_class(&mut self, epoch_mark: u64) -> Option<PreparedClass> {
        match self {
            DeltaQueue::Tree(t) => t.prepare_min_class(epoch_mark),
            DeltaQueue::Flat(f) => f.prepare_min_class(epoch_mark),
        }
    }

    /// Returns an invalidated [`PreparedClass`] to the queue (see
    /// [`DeltaTree::restore_prepared`]).
    pub fn restore_prepared(&mut self, prepared: PreparedClass, on_dup: &mut dyn FnMut(usize)) {
        match self {
            DeltaQueue::Tree(t) => t.restore_prepared(prepared, on_dup),
            DeltaQueue::Flat(f) => f.restore_prepared(prepared, on_dup),
        }
    }

    /// Absorbs one closed epoch: joins its background subtree builds
    /// (helping execute queued pool work while anything is outstanding)
    /// and merges the contents into the queue. Contents — and therefore
    /// the [`DeltaQueue::pop_min_class`] sequence — are identical to
    /// inserting every staged `(key, tuple)` sequentially, exactly as
    /// for [`DeltaQueue::merge_partitioned`].
    ///
    /// The epoch must have been started with this queue's
    /// [`DeltaQueue::kind`]; mixing kinds is a programming error and
    /// panics.
    pub fn absorb_epoch(
        &mut self,
        epoch: EpochBuild,
        pool: Option<&ThreadPool>,
        inserted_by_table: &mut [u64],
    ) -> EpochAbsorbed {
        let mut buffers;
        let (inserted, min_key) = match (epoch.inner, self) {
            (EpochInner::Sequential(mut runs), queue) => {
                let mut inserted = 0usize;
                let mut min_key: Option<OrderKey> = None;
                for run in runs.iter_mut() {
                    for (key, t) in run.drain(..) {
                        if min_key.as_ref().is_none_or(|m| key < *m) {
                            min_key = Some(key.clone());
                        }
                        let ti = t.table().index();
                        if queue.insert(&key, t) {
                            inserted_by_table[ti] += 1;
                            inserted += 1;
                        }
                    }
                }
                buffers = runs;
                (inserted, min_key)
            }
            (EpochInner::Tree { batch, spare }, DeltaQueue::Tree(tree)) => {
                buffers = spare;
                let pool = pool.expect("a parallel epoch build implies a pool");
                absorb_built(tree, batch.join(pool), inserted_by_table, &mut buffers)
            }
            (EpochInner::Flat { batch, spare }, DeltaQueue::Flat(flat)) => {
                buffers = spare;
                let pool = pool.expect("a parallel epoch build implies a pool");
                absorb_built(flat, batch.join(pool), inserted_by_table, &mut buffers)
            }
            _ => panic!("EpochBuild kind does not match the DeltaQueue it is absorbed into"),
        };
        EpochAbsorbed {
            inserted,
            min_key,
            buffers,
        }
    }

    /// Dispatches to the structure's partitioned merge (see
    /// [`DeltaTree::merge_partitioned`]).
    pub fn merge_partitioned(
        &mut self,
        partitions: &mut [Vec<(OrderKey, Tuple)>],
        pool: Option<&ThreadPool>,
        inserted_by_table: &mut [u64],
        seq_threshold: usize,
    ) -> usize {
        match self {
            DeltaQueue::Tree(t) => {
                t.merge_partitioned(partitions, pool, inserted_by_table, seq_threshold)
            }
            DeltaQueue::Flat(f) => {
                f.merge_partitioned(partitions, pool, inserted_by_table, seq_threshold)
            }
        }
    }

    /// Visits every queued tuple non-destructively (see
    /// [`DeltaTree::for_each_pending`]).
    pub fn for_each_pending(&self, f: &mut dyn FnMut(&Tuple)) {
        match self {
            DeltaQueue::Tree(t) => t.for_each_pending(f),
            DeltaQueue::Flat(fl) => fl.for_each_pending(f),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            DeltaQueue::Tree(t) => t.len(),
            DeltaQueue::Flat(f) => f.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One staging shard. Padded to its own cache lines so two workers
/// appending to neighbouring shards never false-share. Each shard holds
/// one buffer per key-prefix partition, so binning happens at push time
/// on the owning worker instead of in a coordinator pass.
#[derive(Debug)]
#[repr(align(128))]
struct Shard {
    bins: Mutex<Vec<Vec<(OrderKey, Tuple)>>>,
    /// This shard's staged-tuple count. Kept per shard — inside the
    /// cache-padded struct — so a worker's push bumps only memory it
    /// already owns; a single inbox-wide counter would put one shared
    /// cache line back on every worker's put path.
    len: AtomicUsize,
}

impl Shard {
    fn new(partitions: usize) -> Self {
        Shard {
            bins: Mutex::new((0..partitions).map(|_| Vec::new()).collect()),
            len: AtomicUsize::new(0),
        }
    }
}

/// Per-worker staging area for tuples produced during a parallel step.
///
/// Shard `i` is written only by pool worker `i` (routed via
/// [`jstar_pool::ThreadPool::current_worker_index`]); the last shard
/// collects puts from foreign threads (the coordinator between steps,
/// `-noDelta` rule cascades on external threads, injected events). A
/// worker's push is therefore an uncontended mutex acquire — the lock
/// exists only to order the worker's appends against the coordinator's
/// bulk swap at the step boundary, never against other workers.
///
/// **Partition-aware staging**: each shard keeps one bin per key-prefix
/// partition and [`ShardedInbox::push`] routes by a hash of the leading
/// `prefix_len` components of the order key (derived by the engine from
/// the program's orderby schema — deep enough to reach the first
/// tuple-dependent `seq` level, so workloads like Dijkstra whose tuples
/// all share one stratum still spread across partitions by distance).
/// Two entries with equal keys always share a partition, which is what
/// lets [`DeltaTree::merge_partitioned`] hand the partitions to pool
/// workers as disjoint merge units. With `partitions == 1` (the
/// sequential engine) binning is a no-op.
#[derive(Debug)]
pub struct ShardedInbox {
    shards: Vec<Shard>,
    /// Partition-count mask (`partitions - 1`, partitions a power of two).
    mask: usize,
    /// Number of leading key components hashed into the partition index.
    prefix_len: usize,
}

impl ShardedInbox {
    /// Creates an inbox with one shard per pool worker plus one overflow
    /// shard for non-worker threads, and a single partition (no binning).
    pub fn new(workers: usize) -> Self {
        ShardedInbox::with_partitioning(workers, 1, 0)
    }

    /// Creates an inbox whose shards bin by a hash of the first
    /// `prefix_len` key components into `partitions` (rounded up to a
    /// power of two) bins.
    pub fn with_partitioning(workers: usize, partitions: usize, prefix_len: usize) -> Self {
        let parts = partitions.max(1).next_power_of_two();
        ShardedInbox {
            shards: (0..workers + 1).map(|_| Shard::new(parts)).collect(),
            mask: parts - 1,
            prefix_len,
        }
    }

    /// Number of key-prefix partitions.
    pub fn partitions(&self) -> usize {
        self.mask + 1
    }

    /// The shard index for threads that are not pool workers.
    pub fn external_shard(&self) -> usize {
        self.shards.len() - 1
    }

    /// The partition a key belongs to: a hash of its leading components.
    #[inline]
    fn partition_of(&self, key: &OrderKey) -> usize {
        if self.mask == 0 {
            return 0;
        }
        (hash_seq(key.0.iter().take(self.prefix_len)) as usize) & self.mask
    }

    /// Stages a tuple produced during the current step. `shard` must be
    /// the caller's stable worker index, or [`Self::external_shard`].
    /// Touches *only* the caller's shard (buffer and counter alike) — no
    /// shared cache line, no coordinator pass to bin later.
    pub fn push(&self, shard: usize, key: OrderKey, tuple: Tuple) {
        let p = self.partition_of(&key);
        let sh = &self.shards[shard];
        let mut bins = sh.bins.lock();
        bins[p].push((key, tuple));
        // Counted while still holding the shard lock: the pipelined
        // coordinator's mid-step [`ShardedInbox::swap_epoch`] subtracts
        // what it drains under the same lock, so an entry can never be
        // drained before its increment lands (an unlocked add here
        // could be overtaken by the subtract and wrap the counter).
        // ord: Relaxed — the shard mutex orders the count against the
        // drain; `len`/`is_empty` readers are advisory polls whose
        // exactness comes from the step boundary's scope join.
        sh.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Swaps every shard's buffers out into `out` (appending, partitions
    /// flattened), leaving the inbox empty. One mutex acquire per shard
    /// per step (shards = workers + 1) — the per-tuple queue traffic of
    /// the old single-queue design is gone.
    pub fn drain_batch(&self, out: &mut Vec<(OrderKey, Tuple)>) {
        for shard in &self.shards {
            let mut bins = shard.bins.lock();
            let mut drained = 0usize;
            for buf in bins.iter_mut() {
                drained += buf.len();
                if out.is_empty() && buf.len() > out.capacity() {
                    // Steal the biggest allocation wholesale instead of
                    // copying.
                    std::mem::swap(buf, out);
                } else {
                    out.append(buf);
                }
            }
            // ord: Relaxed — under the shard mutex; see `push`.
            shard.len.fetch_sub(drained, Ordering::Relaxed);
        }
    }

    /// Swaps every shard's buffers out into the per-partition runs of
    /// `out` (appending; `out` must have at least [`Self::partitions`]
    /// entries), leaving the inbox empty. This is the coordinator's
    /// partitioned drain: per-partition runs feed
    /// [`DeltaTree::merge_partitioned`] directly, no re-binning pass.
    pub fn drain_partitions(&self, out: &mut [Vec<(OrderKey, Tuple)>]) {
        self.swap_epoch(out);
    }

    /// Closes the current staging **epoch**: swaps every shard's bins
    /// out into the per-partition runs of `out` (appending; `out` must
    /// have at least [`Self::partitions`] entries) and leaves fresh
    /// (or recycled) bins behind for the next epoch. Returns the number
    /// of entries taken.
    ///
    /// Unlike the step-boundary drain, this is safe to call **while
    /// workers are still pushing**: each shard's swap happens under
    /// that shard's own mutex, so an entry is either wholly in the
    /// closed epoch or wholly in the next one, and key groups stay
    /// intact because the partition of a key never changes. This is
    /// the double-buffering that lets the pipelined coordinator absorb
    /// step N+1's tuples while step N executes; entries staged after
    /// the swap simply wait for the next epoch.
    pub fn swap_epoch(&self, out: &mut [Vec<(OrderKey, Tuple)>]) -> usize {
        let mut total = 0usize;
        for shard in &self.shards {
            let mut bins = shard.bins.lock();
            let mut drained = 0usize;
            for (buf, run) in bins.iter_mut().zip(out.iter_mut()) {
                drained += buf.len();
                if run.is_empty() && buf.len() > run.capacity() {
                    // Steal the filled allocation wholesale; the empty
                    // (previous-epoch) buffer becomes the new bin.
                    std::mem::swap(buf, run);
                } else {
                    run.append(buf);
                }
            }
            // ord: Relaxed — under the shard mutex; see `push`.
            shard.len.fetch_sub(drained, Ordering::Relaxed);
            total += drained;
        }
        total
    }

    /// Drains everything staged so far into the tree. Returns the number
    /// of tuples actually inserted (duplicates are dropped by the tree).
    pub fn drain_into(&self, tree: &mut DeltaTree) -> usize {
        let mut staged = Vec::new();
        self.drain_batch(&mut staged);
        let mut inserted = 0;
        for (key, tuple) in staged {
            if tree.insert(&key, tuple) {
                inserted += 1;
            }
        }
        inserted
    }

    /// Number of staged tuples (relaxed sum of the per-shard counters).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            // ord: Relaxed — advisory poll; see `push`.
            .map(|s| s.len.load(Ordering::Relaxed))
            .sum()
    }

    /// True when nothing is staged. One relaxed load per shard (shards =
    /// workers + 1) — the previous implementation locked every shard per
    /// poll. Exact at step boundaries: the fork/join scope join orders
    /// every worker push before the coordinator's read.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            // ord: Relaxed — advisory poll; see `push`.
            .all(|s| s.len.load(Ordering::Relaxed) == 0)
    }

    /// The checkpoint-time quiescence invariant: a snapshot serializes
    /// the Delta queue only after every staged epoch has been absorbed,
    /// so the inbox must be empty — a staged tuple left here would be
    /// silently missing from the snapshot. Violation is an engine bug
    /// (not a recoverable I/O condition), so this panics.
    pub fn assert_quiescent(&self) {
        assert!(
            self.is_empty(),
            "checkpoint reached with {} tuples still staged in the inbox",
            self.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;
    use crate::value::Value;

    fn key(parts: &[KeyPart]) -> OrderKey {
        OrderKey(parts.to_vec())
    }

    fn tup(table: u32, v: i64) -> Tuple {
        Tuple::new(TableId(table), vec![Value::Int(v)])
    }

    fn skey(strat: u32, s: i64) -> OrderKey {
        key(&[KeyPart::Strat(strat), KeyPart::Seq(Value::Int(s))])
    }

    #[test]
    fn pop_returns_keys_in_order() {
        let mut tree = DeltaTree::new();
        tree.insert(&skey(0, 5), tup(0, 5));
        tree.insert(&skey(0, 1), tup(0, 1));
        tree.insert(&skey(1, 0), tup(1, 0));
        tree.insert(&skey(0, 3), tup(0, 3));

        let mut seen = Vec::new();
        while let Some((k, class)) = tree.pop_min_class() {
            assert_eq!(class.len(), 1);
            seen.push(k);
        }
        let expected = vec![skey(0, 1), skey(0, 3), skey(0, 5), skey(1, 0)];
        assert_eq!(seen, expected);
        assert!(tree.is_empty());
    }

    #[test]
    fn equal_keys_form_one_class() {
        // "If we had 11 Ship tuples within frame 18, ... 11 fork/join tasks
        // will be created" (§5).
        let mut tree = DeltaTree::new();
        for i in 0..11 {
            tree.insert(&skey(0, 18), tup(0, 100 + i));
        }
        tree.insert(&skey(0, 19), tup(0, 999));
        let (k, class) = tree.pop_min_class().unwrap();
        assert_eq!(k, skey(0, 18));
        assert_eq!(class.len(), 11);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn duplicates_are_removed_on_insert() {
        let mut tree = DeltaTree::new();
        assert!(tree.insert(&skey(0, 1), tup(0, 7)));
        assert!(!tree.insert(&skey(0, 1), tup(0, 7)));
        assert_eq!(tree.len(), 1);
        let (_, class) = tree.pop_min_class().unwrap();
        assert_eq!(class.len(), 1);
    }

    #[test]
    fn contains_checks_exact_position() {
        let mut tree = DeltaTree::new();
        tree.insert(&skey(0, 1), tup(0, 7));
        assert!(tree.contains(&skey(0, 1), &tup(0, 7)));
        assert!(!tree.contains(&skey(0, 2), &tup(0, 7)));
        assert!(!tree.contains(&skey(0, 1), &tup(0, 8)));
    }

    #[test]
    fn prefix_keys_pop_before_extensions() {
        // A table whose orderby is a strict prefix of another's: its tuples
        // are causally earlier.
        let mut tree = DeltaTree::new();
        let short = key(&[KeyPart::Strat(0)]);
        let long = key(&[KeyPart::Strat(0), KeyPart::Seq(Value::Int(0))]);
        tree.insert(&long, tup(1, 1));
        tree.insert(&short, tup(0, 0));
        let (k1, _) = tree.pop_min_class().unwrap();
        assert_eq!(k1, short);
        let (k2, _) = tree.pop_min_class().unwrap();
        assert_eq!(k2, long);
    }

    #[test]
    fn len_tracks_inserts_and_pops() {
        let mut tree = DeltaTree::new();
        for i in 0..100 {
            tree.insert(&skey(0, i % 10), tup(0, i));
        }
        assert_eq!(tree.len(), 100);
        assert_eq!(tree.deep_count(), 100);
        let mut drained = 0;
        while let Some((_, class)) = tree.pop_min_class() {
            drained += class.len();
        }
        assert_eq!(drained, 100);
        assert_eq!(tree.len(), 0);
    }

    #[test]
    fn interleaved_insert_and_pop_respects_order() {
        // Dijkstra's pattern: popping distance d inserts d + w.
        let mut tree = DeltaTree::new();
        tree.insert(&skey(0, 0), tup(0, 0));
        let mut last = i64::MIN;
        let mut steps = 0;
        while let Some((k, class)) = tree.pop_min_class() {
            let d = match &k.0[1] {
                KeyPart::Seq(Value::Int(d)) => *d,
                _ => unreachable!(),
            };
            assert!(d >= last, "keys must be non-decreasing");
            last = d;
            steps += 1;
            if steps < 20 {
                for t in class {
                    let v = t.int(0);
                    tree.insert(&skey(0, d + 3), tup(0, v + 1));
                    tree.insert(&skey(0, d + 1), tup(0, v + 2));
                }
            }
        }
        assert!(steps >= 20);
    }

    #[test]
    fn flat_delta_matches_tree_behaviour() {
        let mut tree = DeltaTree::new();
        let mut flat = FlatDelta::new();
        let inserts = [
            (skey(0, 5), tup(0, 5)),
            (skey(0, 1), tup(0, 1)),
            (skey(0, 1), tup(0, 1)), // duplicate
            (skey(1, 0), tup(1, 0)),
            (skey(0, 1), tup(0, 99)),
        ];
        for (k, t) in &inserts {
            assert_eq!(tree.insert(k, t.clone()), flat.insert(k, t.clone()));
        }
        assert_eq!(tree.len(), flat.len());
        assert_eq!(
            flat.contains(&skey(0, 1), &tup(0, 1)),
            tree.contains(&skey(0, 1), &tup(0, 1))
        );
        loop {
            match (tree.pop_min_class(), flat.pop_min_class()) {
                (None, None) => break,
                (Some((kt, mut ct)), Some((kf, mut cf))) => {
                    assert_eq!(kt, kf);
                    ct.sort();
                    cf.sort();
                    assert_eq!(ct, cf);
                }
                other => panic!("structures disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn delta_queue_dispatches_both_kinds() {
        for kind in [DeltaKind::Tree, DeltaKind::Flat] {
            let mut q = DeltaQueue::new(kind);
            assert!(q.is_empty());
            assert!(q.insert(&skey(0, 2), tup(0, 2)));
            assert!(q.insert(&skey(0, 1), tup(0, 1)));
            assert!(!q.insert(&skey(0, 1), tup(0, 1)));
            assert_eq!(q.len(), 2);
            let (k, _) = q.pop_min_class().unwrap();
            assert_eq!(k, skey(0, 1), "{kind:?}");
        }
    }

    #[test]
    fn inbox_drains_to_tree_with_dedup() {
        let inbox = ShardedInbox::new(2);
        let ext = inbox.external_shard();
        inbox.push(ext, skey(0, 1), tup(0, 1));
        inbox.push(0, skey(0, 1), tup(0, 1)); // duplicate, different shard
        inbox.push(1, skey(0, 2), tup(0, 2));
        let mut tree = DeltaTree::new();
        let inserted = inbox.drain_into(&mut tree);
        assert_eq!(inserted, 2);
        assert!(inbox.is_empty());
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn inbox_drain_batch_collects_all_shards() {
        let inbox = ShardedInbox::new(3);
        for shard in 0..4 {
            for i in 0..10 {
                inbox.push(shard, skey(0, i), tup(0, (shard as i64) * 100 + i));
            }
        }
        let mut out = Vec::new();
        inbox.drain_batch(&mut out);
        assert_eq!(out.len(), 40);
        assert!(inbox.is_empty());
        // Second drain is a no-op.
        inbox.drain_batch(&mut out);
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn inbox_len_counter_tracks_push_and_drain() {
        let inbox = ShardedInbox::with_partitioning(2, 4, 2);
        assert!(inbox.is_empty());
        for i in 0..10 {
            inbox.push(0, skey(0, i), tup(0, i));
        }
        assert_eq!(inbox.len(), 10);
        assert!(!inbox.is_empty());
        let mut out = Vec::new();
        inbox.drain_batch(&mut out);
        assert_eq!(out.len(), 10);
        assert!(inbox.is_empty());
    }

    #[test]
    fn drain_partitions_keeps_equal_keys_together() {
        let inbox = ShardedInbox::with_partitioning(2, 8, 2);
        for shard in 0..3 {
            for i in 0..40 {
                inbox.push(shard, skey(0, i % 10), tup(0, shard as i64 * 1000 + i));
            }
        }
        let mut parts: Vec<Vec<(OrderKey, Tuple)>> =
            (0..inbox.partitions()).map(|_| Vec::new()).collect();
        inbox.drain_partitions(&mut parts);
        assert!(inbox.is_empty());
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 120);
        // Every distinct key lands in exactly one partition.
        let mut seen: std::collections::HashMap<OrderKey, usize> = std::collections::HashMap::new();
        for (p, run) in parts.iter().enumerate() {
            for (k, _) in run {
                let prev = seen.insert(k.clone(), p);
                assert!(
                    prev.is_none_or(|q| q == p),
                    "key {k} split across partitions"
                );
            }
        }
    }

    #[test]
    fn merge_partitioned_matches_sequential_inserts() {
        let pool = jstar_pool::ThreadPool::new(4);
        // Build the same batch both ways: partitioned-parallel and plain.
        let entries: Vec<(OrderKey, Tuple)> = (0..2000)
            .map(|i| (skey((i % 3) as u32, i % 40), tup(0, i % 200)))
            .collect();

        let mut seq_tree = DeltaTree::new();
        for (k, t) in &entries {
            seq_tree.insert(k, t.clone());
        }

        let inbox = ShardedInbox::with_partitioning(4, 8, 2);
        for (i, (k, t)) in entries.iter().enumerate() {
            inbox.push(i % 5, k.clone(), t.clone());
        }
        let mut parts: Vec<Vec<(OrderKey, Tuple)>> =
            (0..inbox.partitions()).map(|_| Vec::new()).collect();
        inbox.drain_partitions(&mut parts);
        let mut par_tree = DeltaTree::new();
        let mut by_table = vec![0u64; 2];
        let inserted = par_tree.merge_partitioned(&mut parts, Some(&pool), &mut by_table, 1);
        assert_eq!(inserted, seq_tree.len());
        assert_eq!(by_table.iter().sum::<u64>() as usize, inserted);
        assert_eq!(par_tree.len(), seq_tree.len());

        // Identical pop sequence: same keys, same class contents.
        loop {
            match (seq_tree.pop_min_class(), par_tree.pop_min_class()) {
                (None, None) => break,
                (Some((ks, mut cs)), Some((kp, mut cp))) => {
                    assert_eq!(ks, kp);
                    cs.sort();
                    cp.sort();
                    assert_eq!(cs, cp);
                }
                other => panic!("trees disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn merge_partitioned_dedups_against_existing_tree_content() {
        let pool = jstar_pool::ThreadPool::new(2);
        let mut tree = DeltaTree::new();
        // Pre-existing content at the same positions as half the batch.
        for i in 0..50 {
            tree.insert(&skey(0, i), tup(0, i));
        }
        let mut parts: Vec<Vec<(OrderKey, Tuple)>> = (0..4).map(|_| Vec::new()).collect();
        let probe = ShardedInbox::with_partitioning(0, 4, 2);
        for i in 0..100 {
            let k = skey(0, i % 50);
            let p = probe.partition_of(&k);
            parts[p].push((k, tup(0, i % 50)));
        }
        let mut by_table = vec![0u64; 1];
        let inserted = tree.merge_partitioned(&mut parts, Some(&pool), &mut by_table, 1);
        assert_eq!(inserted, 0, "everything was already queued");
        assert_eq!(by_table[0], 0);
        assert_eq!(tree.len(), 50);
    }

    #[test]
    fn merge_partitioned_sequential_fallback_below_threshold() {
        let pool = jstar_pool::ThreadPool::new(2);
        for seq_threshold in [usize::MAX, 1] {
            let mut parts: Vec<Vec<(OrderKey, Tuple)>> = (0..4).map(|_| Vec::new()).collect();
            for i in 0..20 {
                parts[(i % 4) as usize].push((skey(0, i), tup(0, i)));
            }
            let mut by_table = vec![0u64; 1];
            let mut tree = DeltaTree::new();
            let inserted =
                tree.merge_partitioned(&mut parts, Some(&pool), &mut by_table, seq_threshold);
            assert_eq!(inserted, 20);
            assert_eq!(tree.len(), 20);
            assert!(parts.iter().all(Vec::is_empty), "runs are consumed");
        }
    }

    #[test]
    fn flat_merge_partitioned_matches_tree_merge() {
        let pool = jstar_pool::ThreadPool::new(3);
        let entries: Vec<(OrderKey, Tuple)> = (0..1500)
            .map(|i| (skey((i % 2) as u32, i % 30), tup(1, i % 100)))
            .collect();
        let mut parts_t: Vec<Vec<(OrderKey, Tuple)>> = (0..8).map(|_| Vec::new()).collect();
        let mut parts_f: Vec<Vec<(OrderKey, Tuple)>> = (0..8).map(|_| Vec::new()).collect();
        let probe = ShardedInbox::with_partitioning(0, 8, 2);
        for (k, t) in entries {
            let p = probe.partition_of(&k);
            parts_t[p].push((k.clone(), t.clone()));
            parts_f[p].push((k, t));
        }
        let mut tree = DeltaTree::new();
        let mut flat = FlatDelta::new();
        let mut bt = vec![0u64; 2];
        let mut bf = vec![0u64; 2];
        let it = tree.merge_partitioned(&mut parts_t, Some(&pool), &mut bt, 1);
        let if_ = flat.merge_partitioned(&mut parts_f, Some(&pool), &mut bf, 1);
        assert_eq!(it, if_);
        assert_eq!(bt, bf);
        loop {
            match (tree.pop_min_class(), flat.pop_min_class()) {
                (None, None) => break,
                (Some((kt, mut ct)), Some((kf, mut cf))) => {
                    assert_eq!(kt, kf);
                    ct.sort();
                    cf.sort();
                    assert_eq!(ct, cf);
                }
                other => panic!("structures disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn swap_epoch_under_concurrent_pushes_loses_nothing() {
        // Pushers race a swapper: every entry must land in exactly one
        // epoch, and each epoch's runs must keep key groups intact.
        let inbox = std::sync::Arc::new(ShardedInbox::with_partitioning(4, 8, 2));
        let pool = jstar_pool::ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        pool.scope(|s| {
            for thread in 0..4i64 {
                let inbox = std::sync::Arc::clone(&inbox);
                let pool = &pool;
                s.spawn(move |_| {
                    let shard = pool
                        .current_worker_index()
                        .unwrap_or_else(|| inbox.external_shard());
                    for i in 0..2000 {
                        inbox.push(shard, skey(0, i % 97), tup(0, thread * 10_000 + i));
                    }
                });
            }
            // The scope owner swaps epochs while pushes are in flight.
            let mut runs: Vec<Vec<(OrderKey, Tuple)>> =
                (0..inbox.partitions()).map(|_| Vec::new()).collect();
            for _ in 0..50 {
                let n = inbox.swap_epoch(&mut runs);
                total.fetch_add(n, Ordering::Relaxed);
                for run in runs.iter_mut() {
                    run.clear();
                }
                std::thread::yield_now();
            }
        });
        // Final epoch: whatever was staged after the last mid-flight swap.
        let mut runs: Vec<Vec<(OrderKey, Tuple)>> =
            (0..inbox.partitions()).map(|_| Vec::new()).collect();
        let n = inbox.swap_epoch(&mut runs);
        total.fetch_add(n, Ordering::Relaxed);
        assert_eq!(total.load(Ordering::Relaxed), 8000);
        assert!(inbox.is_empty());
    }

    #[test]
    fn peek_matches_pop_without_mutating() {
        let mut tree = DeltaTree::new();
        assert!(tree.peek_min_class().is_none());
        assert!(tree.peek_min_key().is_none());
        tree.insert(&skey(0, 5), tup(0, 5));
        tree.insert(&skey(0, 2), tup(0, 2));
        tree.insert(&skey(0, 2), tup(0, 22));
        let mut flat = FlatDelta::new();
        flat.insert(&skey(0, 5), tup(0, 5));
        flat.insert(&skey(0, 2), tup(0, 2));
        flat.insert(&skey(0, 2), tup(0, 22));
        for _ in 0..2 {
            // Peeking twice returns the same answer: nothing moved.
            assert_eq!(tree.peek_min_key(), Some(skey(0, 2)));
            assert_eq!(flat.peek_min_key(), Some(skey(0, 2)));
            let (k, members) = tree.peek_min_class().unwrap();
            assert_eq!(k, skey(0, 2));
            assert_eq!(members.len(), 2);
            let (kf, mf) = flat.peek_min_class().unwrap();
            assert_eq!(kf, skey(0, 2));
            assert_eq!(mf.len(), 2);
        }
        assert_eq!(tree.len(), 3);
        let (k, class) = tree.pop_min_class().unwrap();
        assert_eq!(k, skey(0, 2));
        assert_eq!(class.len(), 2);
    }

    #[test]
    fn prepare_then_restore_is_identity() {
        for kind in [DeltaKind::Tree, DeltaKind::Flat] {
            let mut q = DeltaQueue::new(kind);
            let mut control = DeltaQueue::new(kind);
            for i in 0..30 {
                q.insert(&skey(0, i % 6), tup(0, i));
                control.insert(&skey(0, i % 6), tup(0, i));
            }
            let prepared = q.prepare_min_class(7).unwrap();
            assert_eq!(prepared.key, skey(0, 0));
            assert_eq!(prepared.epoch_mark, 7);
            assert_eq!(q.len() + prepared.tuples.len(), control.len());
            let mut dups = 0;
            q.restore_prepared(prepared, &mut |_| dups += 1);
            assert_eq!(dups, 0, "nothing merged meanwhile, nothing to dedup");
            assert_eq!(q.len(), control.len());
            loop {
                match (q.pop_min_class(), control.pop_min_class()) {
                    (None, None) => break,
                    (Some((ka, mut ca)), Some((kb, mut cb))) => {
                        assert_eq!(ka, kb);
                        ca.sort();
                        cb.sort();
                        assert_eq!(ca, cb);
                    }
                    other => panic!("queues disagree: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn restore_after_duplicate_merge_collapses_and_reports() {
        // A merge lands a duplicate of a prepared tuple (same key, same
        // tuple) while the class is extracted; restoring must collapse
        // it and report the dedup so insert accounting can unwind.
        let mut q = DeltaQueue::new(DeltaKind::Tree);
        q.insert(&skey(0, 1), tup(0, 10));
        q.insert(&skey(0, 1), tup(0, 11));
        q.insert(&skey(0, 9), tup(0, 90));
        let prepared = q.prepare_min_class(0).unwrap();
        assert_eq!(prepared.tuples.len(), 2);
        // The adversarial merge: one duplicate of a prepared tuple, one
        // fresh tuple in the same class.
        q.insert(&skey(0, 1), tup(0, 10));
        q.insert(&skey(0, 1), tup(0, 12));
        assert!(!prepared.survives(Some(&skey(0, 1))));
        let mut dup_tables = Vec::new();
        q.restore_prepared(prepared, &mut |ti| dup_tables.push(ti));
        assert_eq!(dup_tables, vec![0], "exactly the duplicate reported");
        let (k, mut class) = q.pop_min_class().unwrap();
        assert_eq!(k, skey(0, 1));
        class.sort();
        let mut want = vec![tup(0, 10), tup(0, 11), tup(0, 12)];
        want.sort();
        assert_eq!(class, want, "restored ∪ merged, duplicates collapsed");
    }

    #[test]
    fn prepared_survives_only_strictly_later_merges() {
        let p = PreparedClass {
            key: skey(0, 5),
            tuples: vec![tup(0, 5)],
            epoch_mark: 3,
        };
        assert!(p.survives(None), "an empty epoch never invalidates");
        assert!(p.survives(Some(&skey(0, 6))));
        assert!(p.survives(Some(&skey(1, 0))));
        assert!(
            !p.survives(Some(&skey(0, 5))),
            "equal keys extend the class"
        );
        assert!(!p.survives(Some(&skey(0, 4))), "earlier keys preempt it");
    }

    #[test]
    fn epoch_build_absorb_matches_merge_partitioned() {
        let pool = jstar_pool::ThreadPool::new(4);
        for kind in [DeltaKind::Tree, DeltaKind::Flat] {
            let entries: Vec<(OrderKey, Tuple)> = (0..2500)
                .map(|i| (skey((i % 3) as u32, i % 50), tup((i % 2) as u32, i % 250)))
                .collect();
            let probe = ShardedInbox::with_partitioning(0, 8, 2);
            let mut parts_a: Vec<Vec<(OrderKey, Tuple)>> = (0..8).map(|_| Vec::new()).collect();
            let mut parts_b: Vec<Vec<(OrderKey, Tuple)>> = (0..8).map(|_| Vec::new()).collect();
            for (k, t) in entries {
                let p = probe.partition_of(&k);
                parts_a[p].push((k.clone(), t.clone()));
                parts_b[p].push((k, t));
            }
            let mut direct = DeltaQueue::new(kind);
            let mut ca = vec![0u64; 2];
            let na = direct.merge_partitioned(&mut parts_a, Some(&pool), &mut ca, 1);

            let mut ringed = DeltaQueue::new(kind);
            let build = EpochBuild::start(kind, 1, parts_b, Some(&pool), 2, 1);
            assert_eq!(build.staged(), 2500);
            assert_eq!(build.seq(), 1);
            let mut cb = vec![0u64; 2];
            let absorbed = ringed.absorb_epoch(build, Some(&pool), &mut cb);
            assert_eq!(absorbed.inserted, na);
            assert_eq!(cb, ca);
            assert_eq!(absorbed.min_key, Some(skey(0, 0)));
            assert_eq!(absorbed.buffers.len(), 8, "all run buffers recycled");
            loop {
                match (direct.pop_min_class(), ringed.pop_min_class()) {
                    (None, None) => break,
                    (Some((ka, mut xa)), Some((kb, mut xb))) => {
                        assert_eq!(ka, kb);
                        xa.sort();
                        xb.sort();
                        assert_eq!(xa, xb);
                    }
                    other => panic!("queues disagree ({kind:?}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn epoch_build_sequential_fallback_below_threshold() {
        // Small epochs (or no pool) skip the background lane entirely.
        let mut parts: Vec<Vec<(OrderKey, Tuple)>> = (0..4).map(|_| Vec::new()).collect();
        for i in 0..20 {
            parts[(i % 4) as usize].push((skey(0, i), tup(0, i)));
        }
        let build = EpochBuild::start(DeltaKind::Tree, 0, parts, None, 1, usize::MAX);
        assert!(build.is_ready(), "sequential epochs are always ready");
        let mut q = DeltaQueue::new(DeltaKind::Tree);
        let mut by_table = vec![0u64; 1];
        let absorbed = q.absorb_epoch(build, None, &mut by_table);
        assert_eq!(absorbed.inserted, 20);
        assert_eq!(absorbed.min_key, Some(skey(0, 0)));
        assert_eq!(absorbed.buffers.len(), 4);
        assert!(absorbed.buffers.iter().all(Vec::is_empty));
        assert_eq!(q.len(), 20);
    }

    #[test]
    fn inbox_is_safe_from_many_worker_threads() {
        let inbox = std::sync::Arc::new(ShardedInbox::new(4));
        let pool = jstar_pool::ThreadPool::new(4);
        pool.scope(|s| {
            for thread in 0..8i64 {
                let inbox = std::sync::Arc::clone(&inbox);
                let pool = &pool;
                s.spawn(move |_| {
                    let shard = pool
                        .current_worker_index()
                        .unwrap_or_else(|| inbox.external_shard());
                    for i in 0..250 {
                        inbox.push(shard, skey(0, i % 50), tup(0, thread * 1000 + i));
                    }
                });
            }
        });
        let mut tree = DeltaTree::new();
        let inserted = inbox.drain_into(&mut tree);
        assert_eq!(inserted, 2000, "all distinct tuples arrive");
        // 50 classes of 40 tuples each.
        let (_, first) = tree.pop_min_class().unwrap();
        assert_eq!(first.len(), 40);
    }

    #[test]
    fn for_each_pending_visits_everything_without_disturbing_the_queue() {
        for kind in [DeltaKind::Tree, DeltaKind::Flat] {
            let mut q = DeltaQueue::new(kind);
            for i in 0..30i64 {
                q.insert(&skey(0, i % 3), tup(0, i));
            }
            let mut seen = Vec::new();
            q.for_each_pending(&mut |t| seen.push(t.int(0)));
            seen.sort_unstable();
            assert_eq!(seen, (0..30).collect::<Vec<_>>());
            assert_eq!(q.len(), 30, "walk is non-destructive ({kind:?})");
            // Pop order is unaffected by the walk.
            let (_, class) = q.pop_min_class().unwrap();
            assert_eq!(class.len(), 10);
        }
    }

    #[test]
    fn quiescence_assert_accepts_only_an_empty_inbox() {
        let inbox = ShardedInbox::new(2);
        inbox.assert_quiescent();
        inbox.push(inbox.external_shard(), skey(0, 1), tup(0, 1));
        let panicked =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inbox.assert_quiescent()))
                .is_err();
        assert!(panicked, "a staged tuple must trip the invariant");
    }
}

/// Exhaustive interleaving checks for the inbox's epoch protocol. Run
/// with `cargo test -p jstar-core --features model-check`.
#[cfg(all(test, feature = "model-check"))]
mod model_tests {
    use super::*;
    use crate::schema::TableId;
    use crate::value::Value;
    use jstar_check::{thread, Checker};
    use std::sync::Arc;

    fn tup(v: i64) -> Tuple {
        Tuple::new(TableId(0), vec![Value::Int(v)])
    }

    fn skey(s: i64) -> OrderKey {
        OrderKey(vec![KeyPart::Strat(0), KeyPart::Seq(Value::Int(s))])
    }

    /// The pipelined coordinator's mid-step epoch close racing a worker
    /// push: every entry must land in exactly one epoch — either the
    /// closed one or the next — and the shard counter must never go
    /// stale negative or lose an entry, in every interleaving.
    #[test]
    fn epoch_close_vs_concurrent_push_loses_nothing() {
        let report = Checker::new().check(|| {
            let inbox = Arc::new(ShardedInbox::with_partitioning(1, 2, 2));
            let pusher = {
                let inbox = Arc::clone(&inbox);
                thread::spawn(move || {
                    inbox.push(0, skey(1), tup(1));
                    inbox.push(0, skey(2), tup(2));
                })
            };
            let swapper = {
                let inbox = Arc::clone(&inbox);
                thread::spawn(move || {
                    let mut runs: Vec<Vec<(OrderKey, Tuple)>> =
                        (0..inbox.partitions()).map(|_| Vec::new()).collect();
                    let n = inbox.swap_epoch(&mut runs);
                    assert_eq!(n, runs.iter().map(Vec::len).sum::<usize>());
                    n
                })
            };
            pusher.join();
            let closed = swapper.join();
            // Whatever the closed epoch missed is still staged intact.
            let mut runs: Vec<Vec<(OrderKey, Tuple)>> =
                (0..inbox.partitions()).map(|_| Vec::new()).collect();
            let rest = inbox.swap_epoch(&mut runs);
            assert_eq!(closed + rest, 2);
            assert!(inbox.is_empty());
        });
        report.assert_ok();
        assert!(report.complete, "exploration hit a budget cap");
    }
}
