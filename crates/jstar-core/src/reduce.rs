//! Reduce and scan operations with user-defined operators (§1.3).
//!
//! "To replace some common uses of sequential loops, JStar supports reduce
//! and scan operations with user-defined operators." A [`Reducer`] is a
//! monoid over tuples: an identity, an `accept` step folding one tuple in,
//! and an associative `combine` so partial results can be merged by a
//! tree-based parallel pass (§5.2).
//!
//! [`Statistics`] is the standard reducer the PvWatts program uses
//! (`stats += record.power; ... stats.mean`).

use crate::tuple::Tuple;
use jstar_pool::ThreadPool;

/// A monoid over tuples.
pub trait Reducer: Send + Sync {
    /// The accumulator type.
    type Acc: Send;

    /// The monoid identity.
    fn identity(&self) -> Self::Acc;

    /// Folds one tuple into the accumulator.
    fn accept(&self, acc: &mut Self::Acc, t: &Tuple);

    /// Merges two accumulators. Must be associative, with
    /// [`Self::identity`] as the unit, for parallel reduction to be
    /// deterministic.
    fn combine(&self, a: Self::Acc, b: Self::Acc) -> Self::Acc;

    /// The field index this reducer reads per tuple, if any. The engine
    /// validates it against the queried table's arity so an
    /// out-of-bounds aggregate reports
    /// [`crate::error::JStarError::NoSuchField`] instead of panicking
    /// inside a store. Reducers that read no field (counts) keep the
    /// `None` default.
    fn input_field(&self) -> Option<usize> {
        None
    }
}

/// Accumulated summary statistics over a numeric field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Stats {
    pub fn empty() -> Stats {
        Stats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Arithmetic mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Folds one sample in.
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another accumulator in.
    pub fn merge(mut self, other: Stats) -> Stats {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self
    }
}

/// The paper's `Statistics` reducer over one numeric field
/// (Int or Double).
pub struct Statistics {
    pub field: usize,
}

impl Reducer for Statistics {
    type Acc = Stats;
    fn identity(&self) -> Stats {
        Stats::empty()
    }
    fn accept(&self, acc: &mut Stats, t: &Tuple) {
        acc.add(t.get(self.field).as_f64_lossy());
    }
    fn combine(&self, a: Stats, b: Stats) -> Stats {
        a.merge(b)
    }
    fn input_field(&self) -> Option<usize> {
        Some(self.field)
    }
}

/// Sums a numeric field.
pub struct SumReducer {
    pub field: usize,
}

impl Reducer for SumReducer {
    type Acc = f64;
    fn identity(&self) -> f64 {
        0.0
    }
    fn accept(&self, acc: &mut f64, t: &Tuple) {
        *acc += t.get(self.field).as_f64_lossy();
    }
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }
    fn input_field(&self) -> Option<usize> {
        Some(self.field)
    }
}

/// Counts tuples.
pub struct CountReducer;

impl Reducer for CountReducer {
    type Acc = u64;
    fn identity(&self) -> u64 {
        0
    }
    fn accept(&self, acc: &mut u64, _t: &Tuple) {
        *acc += 1;
    }
    fn combine(&self, a: u64, b: u64) -> u64 {
        a + b
    }
}

/// Minimum of an integer field (`get min Tuple1(...)` in §4's example).
pub struct MinIntReducer {
    pub field: usize,
}

impl Reducer for MinIntReducer {
    type Acc = Option<i64>;
    fn identity(&self) -> Option<i64> {
        None
    }
    fn accept(&self, acc: &mut Option<i64>, t: &Tuple) {
        let v = t.int(self.field);
        *acc = Some(acc.map_or(v, |a| a.min(v)));
    }
    fn combine(&self, a: Option<i64>, b: Option<i64>) -> Option<i64> {
        match (a, b) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (x, None) | (None, x) => x,
        }
    }
    fn input_field(&self) -> Option<usize> {
        Some(self.field)
    }
}

/// Maximum of an integer field.
pub struct MaxIntReducer {
    pub field: usize,
}

impl Reducer for MaxIntReducer {
    type Acc = Option<i64>;
    fn identity(&self) -> Option<i64> {
        None
    }
    fn accept(&self, acc: &mut Option<i64>, t: &Tuple) {
        let v = t.int(self.field);
        *acc = Some(acc.map_or(v, |a| a.max(v)));
    }
    fn combine(&self, a: Option<i64>, b: Option<i64>) -> Option<i64> {
        match (a, b) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (x, None) | (None, x) => x,
        }
    }
    fn input_field(&self) -> Option<usize> {
        Some(self.field)
    }
}

/// Sequential reduction over a slice of tuples.
pub fn reduce_seq<R: Reducer>(reducer: &R, tuples: &[Tuple]) -> R::Acc {
    let mut acc = reducer.identity();
    for t in tuples {
        reducer.accept(&mut acc, t);
    }
    acc
}

/// Parallel tree reduction over a slice of tuples: chunks are folded in
/// parallel, partials merged with `combine` — §5.2's "tree-based pass to
/// combine the final reducer results".
pub fn reduce_par<R: Reducer>(pool: &ThreadPool, reducer: &R, tuples: &[Tuple]) -> R::Acc {
    let partials = jstar_pool::parallel_chunks(pool, tuples, 0, |chunk, _| {
        let mut acc = reducer.identity();
        for t in chunk {
            reducer.accept(&mut acc, t);
        }
        acc
    });
    partials
        .into_iter()
        .fold(reducer.identity(), |a, b| reducer.combine(a, b))
}

/// Inclusive scan (prefix reduction) with an associative operator.
pub fn scan_inclusive<T, F>(items: &[T], op: F) -> Vec<T>
where
    T: Clone,
    F: Fn(&T, &T) -> T,
{
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match out.last() {
            None => out.push(item.clone()),
            Some(prev) => out.push(op(prev, item)),
        }
    }
    out
}

/// Exclusive scan: element `i` of the result combines items `0..i`;
/// element 0 is `identity`.
pub fn scan_exclusive<T, F>(items: &[T], identity: T, op: F) -> Vec<T>
where
    T: Clone,
    F: Fn(&T, &T) -> T,
{
    let mut out = Vec::with_capacity(items.len());
    let mut acc = identity;
    for item in items {
        out.push(acc.clone());
        acc = op(&acc, item);
    }
    out
}

/// Parallel inclusive scan: the classic two-pass blocked algorithm
/// (per-block scan, exclusive scan of block totals, then offset fix-up).
pub fn scan_inclusive_par<T, F>(pool: &ThreadPool, items: &[T], identity: T, op: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = pool.num_threads();
    let block = n.div_ceil(threads * 4).max(1);
    // Pass 1: scan each block independently.
    let mut blocks: Vec<Vec<T>> =
        jstar_pool::parallel_chunks(pool, items, block, |chunk, _| scan_inclusive(chunk, &op));
    // Pass 2: exclusive scan of block totals.
    let totals: Vec<T> = blocks
        .iter()
        .map(|b| b.last().expect("non-empty block").clone())
        .collect();
    let offsets = scan_exclusive(&totals, identity, &op);
    // Pass 3: add the offset into every element of each block (parallel).
    pool.scope(|s| {
        for (blk, off) in blocks.iter_mut().zip(offsets.iter()) {
            let op = &op;
            s.spawn(move |_| {
                for v in blk.iter_mut() {
                    *v = op(off, v);
                }
            });
        }
    });
    // The offset for block 0 is the identity, so this is exact.
    blocks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableId;
    use crate::value::Value;

    fn tuples(vals: &[i64]) -> Vec<Tuple> {
        vals.iter()
            .map(|v| Tuple::new(TableId(0), vec![Value::Int(*v)]))
            .collect()
    }

    #[test]
    fn statistics_reducer_computes_mean() {
        let r = Statistics { field: 0 };
        let acc = reduce_seq(&r, &tuples(&[10, 20, 30]));
        assert_eq!(acc.count, 3);
        assert_eq!(acc.sum, 60.0);
        assert_eq!(acc.mean(), 20.0);
        assert_eq!(acc.min, 10.0);
        assert_eq!(acc.max, 30.0);
    }

    #[test]
    fn statistics_identity_is_unit() {
        let r = Statistics { field: 0 };
        let a = reduce_seq(&r, &tuples(&[1, 2, 3]));
        let merged = r.combine(a, r.identity());
        assert_eq!(merged, a);
        let merged = r.combine(r.identity(), a);
        assert_eq!(merged, a);
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = ThreadPool::new(4);
        let data: Vec<i64> = (0..10_000).map(|i| (i * 37) % 1000).collect();
        let ts = tuples(&data);
        let r = Statistics { field: 0 };
        let seq = reduce_seq(&r, &ts);
        let par = reduce_par(&pool, &r, &ts);
        assert_eq!(seq.count, par.count);
        assert_eq!(seq.sum, par.sum);
        assert_eq!(seq.min, par.min);
        assert_eq!(seq.max, par.max);
    }

    #[test]
    fn sum_count_min_max_reducers() {
        let ts = tuples(&[5, -3, 12]);
        assert_eq!(reduce_seq(&SumReducer { field: 0 }, &ts), 14.0);
        assert_eq!(reduce_seq(&CountReducer, &ts), 3);
        assert_eq!(reduce_seq(&MinIntReducer { field: 0 }, &ts), Some(-3));
        assert_eq!(reduce_seq(&MaxIntReducer { field: 0 }, &ts), Some(12));
        assert_eq!(reduce_seq(&MinIntReducer { field: 0 }, &[]), None);
    }

    #[test]
    fn min_combine_handles_none() {
        let r = MinIntReducer { field: 0 };
        assert_eq!(r.combine(None, Some(3)), Some(3));
        assert_eq!(r.combine(Some(2), None), Some(2));
        assert_eq!(r.combine(Some(2), Some(3)), Some(2));
        assert_eq!(r.combine(None, None), None);
    }

    #[test]
    fn scans_match_reference() {
        let data = vec![1i64, 2, 3, 4, 5];
        assert_eq!(scan_inclusive(&data, |a, b| a + b), vec![1, 3, 6, 10, 15]);
        assert_eq!(scan_exclusive(&data, 0, |a, b| a + b), vec![0, 1, 3, 6, 10]);
        assert!(scan_inclusive(&Vec::<i64>::new(), |a, b| a + b).is_empty());
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let pool = ThreadPool::new(4);
        let data: Vec<i64> = (1..=997).collect();
        let seq = scan_inclusive(&data, |a, b| a + b);
        let par = scan_inclusive_par(&pool, &data, 0, |a, b| a + b);
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_scan_with_max_operator() {
        let pool = ThreadPool::new(3);
        let data: Vec<i64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
        let seq = scan_inclusive(&data, |a, b| *a.max(b));
        let par = scan_inclusive_par(&pool, &data, i64::MIN, |a, b| *a.max(b));
        assert_eq!(seq, par);
    }
}
