//! Stratum literals and `order` declarations.
//!
//! JStar programs declare a partial order over the capitalised literal names
//! used in orderby lists, e.g. `order Req < PvWatts < SumMonth` (Fig. 4).
//! The Delta tree needs a *total* order at each named level (its named
//! branches are "a linear array of subtrees, indexed by a total ordering of
//! the order relationship"), so we linearise the declared partial order
//! topologically. Causality *proofs*, however, must use only the declared
//! partial order — `A < B` is provable only if the programmer actually
//! declared a chain from `A` to `B` (otherwise Fig. 4's stratification error
//! must fire).

use std::collections::HashMap;
use std::fmt;

/// Identifies an interned stratum literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StratId(pub u32);

impl StratId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Error returned when `order` declarations are cyclic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrataCycle {
    /// One literal participating in the cycle.
    pub literal: String,
}

impl fmt::Display for StrataCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "order declarations form a cycle through literal {}",
            self.literal
        )
    }
}

impl std::error::Error for StrataCycle {}

/// Collects literals and `order` chains while a program is being built.
#[derive(Debug, Default, Clone)]
pub struct StrataBuilder {
    names: Vec<String>,
    index: HashMap<String, StratId>,
    edges: Vec<(StratId, StratId)>,
}

impl StrataBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a literal name, returning its id.
    pub fn intern(&mut self, name: &str) -> StratId {
        if let Some(id) = self.index.get(name) {
            return *id;
        }
        let id = StratId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Records an `order a < b < c < ...` chain.
    pub fn order_chain(&mut self, chain: &[&str]) {
        for pair in chain.windows(2) {
            let a = self.intern(pair[0]);
            let b = self.intern(pair[1]);
            self.edges.push((a, b));
        }
    }

    /// Finalises into a [`StrataOrder`]: computes transitive reachability
    /// (the provable partial order) and a deterministic topological
    /// linearisation (the executable total order). Fails on cycles.
    pub fn build(self) -> Result<StrataOrder, StrataCycle> {
        let n = self.names.len();
        // Transitive closure by repeated relaxation (n is small: the number
        // of distinct literals in a program, typically < 20).
        let mut reach = vec![false; n * n];
        for &(a, b) in &self.edges {
            reach[a.index() * n + b.index()] = true;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for j in 0..n {
                    if reach[i * n + j] {
                        for k in 0..n {
                            if reach[j * n + k] && !reach[i * n + k] {
                                reach[i * n + k] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        for i in 0..n {
            if reach[i * n + i] {
                return Err(StrataCycle {
                    literal: self.names[i].clone(),
                });
            }
        }
        // Kahn topological sort; ties broken by interning order so ranks are
        // deterministic run to run.
        // Count each edge once even if declared twice.
        let mut seen_edges: Vec<(StratId, StratId)> = self.edges.clone();
        seen_edges.sort();
        seen_edges.dedup();
        let mut indeg = vec![0usize; n];
        for &(_, b) in &seen_edges {
            indeg[b.index()] += 1;
        }
        let mut ranks = vec![0u32; n];
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut next_rank = 0u32;
        let mut emitted = 0usize;
        while let Some(i) = queue.first().copied() {
            queue.remove(0);
            ranks[i] = next_rank;
            next_rank += 1;
            emitted += 1;
            for &(a, b) in &seen_edges {
                if a.index() == i {
                    indeg[b.index()] -= 1;
                    if indeg[b.index()] == 0 {
                        queue.push(b.index());
                    }
                }
            }
            queue.sort();
        }
        debug_assert_eq!(emitted, n, "cycle detection above makes Kahn total");
        Ok(StrataOrder {
            names: self.names,
            index: self.index,
            reach,
            ranks,
        })
    }
}

/// The finalised stratum ordering of a program.
#[derive(Debug, Clone)]
pub struct StrataOrder {
    names: Vec<String>,
    index: HashMap<String, StratId>,
    /// Row-major `n×n` reachability matrix of the declared partial order.
    reach: Vec<bool>,
    /// Topological total ranks (a linearisation of `reach`).
    ranks: Vec<u32>,
}

impl StrataOrder {
    /// An order over no literals (programs without strat components).
    pub fn empty() -> Self {
        StrataBuilder::new()
            .build()
            .expect("empty order is acyclic")
    }

    /// Number of interned literals.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no literals were interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Looks up a literal by name.
    pub fn lookup(&self, name: &str) -> Option<StratId> {
        self.index.get(name).copied()
    }

    /// The literal's name.
    pub fn name(&self, id: StratId) -> &str {
        &self.names[id.index()]
    }

    /// The executable total rank (linearised order) of a literal.
    pub fn rank(&self, id: StratId) -> u32 {
        self.ranks[id.index()]
    }

    /// True iff `a < b` is *provable* from the declared `order` chains
    /// (transitively). This is what the causality checker uses: an
    /// undeclared relation must yield a stratification warning even though
    /// the linearisation happens to place the literals somewhere.
    pub fn declared_lt(&self, a: StratId, b: StratId) -> bool {
        let n = self.names.len();
        self.reach[a.index() * n + b.index()]
    }

    /// True iff the two literals are related (in either direction) by the
    /// declared partial order.
    pub fn comparable(&self, a: StratId, b: StratId) -> bool {
        a == b || self.declared_lt(a, b) || self.declared_lt(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut b = StrataBuilder::new();
        let a1 = b.intern("Req");
        let a2 = b.intern("Req");
        assert_eq!(a1, a2);
        assert_eq!(b.build().unwrap().len(), 1);
    }

    #[test]
    fn chain_declares_transitive_order() {
        let mut b = StrataBuilder::new();
        b.order_chain(&["Req", "PvWatts", "SumMonth"]);
        let order = b.build().unwrap();
        let req = order.lookup("Req").unwrap();
        let pv = order.lookup("PvWatts").unwrap();
        let sm = order.lookup("SumMonth").unwrap();
        assert!(order.declared_lt(req, pv));
        assert!(order.declared_lt(pv, sm));
        assert!(order.declared_lt(req, sm), "transitivity");
        assert!(!order.declared_lt(sm, req));
        // Ranks must respect the declared order.
        assert!(order.rank(req) < order.rank(pv));
        assert!(order.rank(pv) < order.rank(sm));
    }

    #[test]
    fn unrelated_literals_are_incomparable_but_ranked() {
        let mut b = StrataBuilder::new();
        b.order_chain(&["A", "B"]);
        let c = b.intern("C");
        let order = b.build().unwrap();
        let a = order.lookup("A").unwrap();
        assert!(!order.comparable(a, c));
        // The linearisation still assigns distinct ranks to all three.
        let mut ranks = vec![
            order.rank(a),
            order.rank(order.lookup("B").unwrap()),
            order.rank(c),
        ];
        ranks.sort();
        ranks.dedup();
        assert_eq!(ranks.len(), 3);
    }

    #[test]
    fn cycle_is_detected() {
        let mut b = StrataBuilder::new();
        b.order_chain(&["X", "Y"]);
        b.order_chain(&["Y", "Z"]);
        b.order_chain(&["Z", "X"]);
        let err = b.build().unwrap_err();
        assert!(["X", "Y", "Z"].contains(&err.literal.as_str()));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut b = StrataBuilder::new();
        b.order_chain(&["X", "X"]);
        assert!(b.build().is_err());
    }

    #[test]
    fn diamond_order_is_fine() {
        let mut b = StrataBuilder::new();
        b.order_chain(&["A", "B", "D"]);
        b.order_chain(&["A", "C", "D"]);
        let order = b.build().unwrap();
        let a = order.lookup("A").unwrap();
        let d = order.lookup("D").unwrap();
        assert!(order.declared_lt(a, d));
    }

    #[test]
    fn duplicate_edges_do_not_break_topo_sort() {
        let mut b = StrataBuilder::new();
        b.order_chain(&["A", "B"]);
        b.order_chain(&["A", "B"]);
        let order = b.build().unwrap();
        let a = order.lookup("A").unwrap();
        let bb = order.lookup("B").unwrap();
        assert!(order.rank(a) < order.rank(bb));
    }

    #[test]
    fn dijkstra_example_orders() {
        // order Vertex < Edge < Int; order Estimate < Done (Fig. 5)
        let mut b = StrataBuilder::new();
        b.order_chain(&["Vertex", "Edge", "Int"]);
        b.order_chain(&["Estimate", "Done"]);
        let order = b.build().unwrap();
        let est = order.lookup("Estimate").unwrap();
        let done = order.lookup("Done").unwrap();
        let vertex = order.lookup("Vertex").unwrap();
        let int = order.lookup("Int").unwrap();
        assert!(order.declared_lt(est, done));
        assert!(order.declared_lt(vertex, int));
        assert!(!order.comparable(est, int));
    }

    #[test]
    fn empty_order_builds() {
        let order = StrataOrder::empty();
        assert!(order.is_empty());
        assert_eq!(order.lookup("Anything"), None);
    }
}
