//! Queries over the Gamma database.
//!
//! JStar rules query tables positively (`get Edge(dist.vertex)`), negatively
//! (`get uniq? Done(vertex) == null`), with predicates written as boolean
//! lambdas (`[distance < dist.distance]`), and with aggregates (§4). A
//! [`Query`] is the runtime representation the paper's compiler would
//! extract by static analysis of those expressions — conjunctive equality
//! constraints, range constraints and a residual predicate — which is what
//! lets the Gamma stores pick indexes.
//!
//! # Multi-relation joins
//!
//! A [`crate::relation::TypedQuery`] binds one table; joins across
//! tables have two typed forms sharing one execution contract:
//!
//! * **read-side**: [`crate::relation::join`]`::<A, B>()` /
//!   [`crate::relation::join3`] over shared [`crate::relation::Field`]
//!   tokens, evaluated by [`crate::engine::Engine::join_rel`] /
//!   `join3_rel` as one leapfrog sorted-merge walk over per-column
//!   ordered views of Gamma;
//! * **rule-side**: [`crate::program::ProgramBuilder::rule_rel_join`]
//!   and `rule_rel_join2`, whose inspectable plans the engine lowers
//!   onto the same merged-cursor walk when a wide class executes as a
//!   batched delta-join
//!   (see [`crate::engine::EngineConfig::join_strategy`]).
//!
//! **The variable order is fixed, never optimized.** Relations
//! intersect in the order the builder declares them, each keyed on the
//! column its *first* equality pair names; every further pair is a
//! residual filter inside matched groups. There are no statistics and
//! no planner — order the relations yourself (most selective first),
//! and read the cost directly off `RunReport::join_seeks` /
//! `join_cursor_opens` instead of guessing what a planner chose.
//!
//! Migrating a hand-written nested loop onto `join()`:
//!
//! ```
//! use jstar_core::jstar_table;
//! use jstar_core::prelude::*;
//! use std::sync::Arc;
//!
//! jstar_table! {
//!     #[derive(Copy, Eq)]
//!     pub Emp(int id, int dept) orderby (Emp)
//! }
//! jstar_table! {
//!     #[derive(Copy, Eq)]
//!     pub Dept(int dept, int floor) orderby (Dep)
//! }
//!
//! let mut p = ProgramBuilder::new();
//! p.relation::<Emp>();
//! p.relation::<Dept>();
//! p.order(&["Emp", "Dep"]);
//! p.put_rel(Emp { id: 1, dept: 7 });
//! p.put_rel(Emp { id: 2, dept: 9 });
//! p.put_rel(Dept { dept: 7, floor: 3 });
//! let mut engine = Engine::new(Arc::new(p.build()?), EngineConfig::sequential());
//! engine.run()?;
//!
//! // Before: a nested loop of single-table queries — one indexed
//! // probe per outer row.
//! let mut nested = Vec::new();
//! engine.for_each_rel_gamma(Emp::query(), |e: Emp| {
//!     engine.for_each_rel_gamma(Dept::query().eq(Dept::dept, e.dept), |d: Dept| {
//!         nested.push((e.id, d.floor));
//!         true
//!     });
//!     true
//! });
//!
//! // After: one typed join — both column views walked together.
//! let mut joined = Vec::new();
//! engine.join_rel(join::<Emp, Dept>().on(Emp::dept, Dept::dept), |e, d| {
//!     joined.push((e.id, d.floor));
//! });
//! assert_eq!(joined, vec![(1, 3)]);
//! assert_eq!(nested, joined);
//! # Result::Ok(())
//! ```

use crate::schema::TableId;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::ops::Bound;
use std::sync::Arc;

/// A residual boolean predicate over a tuple (the `[...]` lambdas).
pub type Predicate = Arc<dyn Fn(&Tuple) -> bool + Send + Sync>;

/// A range constraint on one field.
#[derive(Clone)]
pub struct FieldRange {
    pub field: usize,
    pub lo: Bound<Value>,
    pub hi: Bound<Value>,
}

impl FieldRange {
    fn matches(&self, v: &Value) -> bool {
        let lo_ok = match &self.lo {
            Bound::Unbounded => true,
            Bound::Included(b) => v >= b,
            Bound::Excluded(b) => v > b,
        };
        let hi_ok = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(b) => v <= b,
            Bound::Excluded(b) => v < b,
        };
        lo_ok && hi_ok
    }
}

/// A conjunctive query against one table.
#[derive(Clone)]
pub struct Query {
    pub table: TableId,
    /// Equality constraints `field == value`.
    pub eq: Vec<(usize, Value)>,
    /// Range constraints.
    pub ranges: Vec<FieldRange>,
    /// Residual boolean lambda (the `[...]` expressions of the paper).
    pub pred: Option<Predicate>,
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Query")
            .field("table", &self.table)
            .field("eq", &self.eq)
            .field("ranges", &self.ranges.len())
            .field("pred", &self.pred.is_some())
            .finish()
    }
}

impl Query {
    /// Starts an unconstrained query over `table`.
    pub fn on(table: TableId) -> Query {
        Query {
            table,
            eq: Vec::new(),
            ranges: Vec::new(),
            pred: None,
        }
    }

    /// Adds `field == value`.
    pub fn eq(mut self, field: usize, value: impl Into<Value>) -> Query {
        self.eq.push((field, value.into()));
        self
    }

    /// Adds `field == value` in place — the non-consuming twin of
    /// [`Query::eq`] for callers assembling a query inside a loop, such
    /// as the delta-join runtime building one probe per distinct key
    /// group of an extracted class.
    pub fn add_eq(&mut self, field: usize, value: Value) {
        self.eq.push((field, value));
    }

    /// Adds `field < value`.
    pub fn lt(mut self, field: usize, value: impl Into<Value>) -> Query {
        self.ranges.push(FieldRange {
            field,
            lo: Bound::Unbounded,
            hi: Bound::Excluded(value.into()),
        });
        self
    }

    /// Adds `field <= value`.
    pub fn le(mut self, field: usize, value: impl Into<Value>) -> Query {
        self.ranges.push(FieldRange {
            field,
            lo: Bound::Unbounded,
            hi: Bound::Included(value.into()),
        });
        self
    }

    /// Adds `field > value`.
    pub fn gt(mut self, field: usize, value: impl Into<Value>) -> Query {
        self.ranges.push(FieldRange {
            field,
            lo: Bound::Excluded(value.into()),
            hi: Bound::Unbounded,
        });
        self
    }

    /// Adds `field >= value`.
    pub fn ge(mut self, field: usize, value: impl Into<Value>) -> Query {
        self.ranges.push(FieldRange {
            field,
            lo: Bound::Included(value.into()),
            hi: Bound::Unbounded,
        });
        self
    }

    /// Adds a residual predicate (boolean lambda).
    pub fn filter(mut self, pred: impl Fn(&Tuple) -> bool + Send + Sync + 'static) -> Query {
        self.pred = Some(Arc::new(pred));
        self
    }

    /// True if `t` satisfies every constraint. Used by stores as the
    /// post-filter after any index narrowing.
    pub fn matches(&self, t: &Tuple) -> bool {
        debug_assert_eq!(t.table(), self.table);
        for (f, v) in &self.eq {
            if t.get(*f) != v {
                return false;
            }
        }
        for r in &self.ranges {
            if !r.matches(t.get(r.field)) {
                return false;
            }
        }
        match &self.pred {
            Some(p) => p(t),
            None => true,
        }
    }

    /// The equality value constraining `field`, if any — used by indexed
    /// stores to decide whether their index applies.
    pub fn eq_value(&self, field: usize) -> Option<&Value> {
        self.eq.iter().find(|(f, _)| *f == field).map(|(_, v)| v)
    }

    /// True if all of `fields` are equality-constrained (index usable).
    pub fn covers_fields(&self, fields: &[usize]) -> bool {
        fields.iter().all(|f| self.eq_value(*f).is_some())
    }

    /// Checks every constrained field index against `def`'s arity.
    ///
    /// Positional queries are built without schema access
    /// ([`Query::on`] only has a [`TableId`]), so this runs when the
    /// query first reaches the engine; an out-of-bounds index used to
    /// panic deep in a store or silently match nothing depending on the
    /// access path. Typed [`crate::relation::TypedQuery`] constraints
    /// cannot express an invalid field, so they skip straight through.
    pub fn validate(&self, def: &crate::schema::TableDef) -> crate::error::Result<()> {
        let arity = def.arity();
        let bad_field = self
            .eq
            .iter()
            .map(|(f, _)| *f)
            .chain(self.ranges.iter().map(|r| r.field))
            .find(|f| *f >= arity);
        match bad_field {
            Some(f) => Err(crate::error::JStarError::NoSuchField {
                table: def.name.clone(),
                field: format!("#{f}"),
            }),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(fields: Vec<Value>) -> Tuple {
        Tuple::new(TableId(0), fields)
    }

    #[test]
    fn eq_constraint_matches() {
        let q = Query::on(TableId(0)).eq(0, 5i64);
        assert!(q.matches(&t(vec![Value::Int(5), Value::Int(9)])));
        assert!(!q.matches(&t(vec![Value::Int(4), Value::Int(9)])));
    }

    #[test]
    fn range_constraints() {
        let q = Query::on(TableId(0)).ge(1, 10i64).lt(1, 20i64);
        assert!(q.matches(&t(vec![Value::Int(0), Value::Int(10)])));
        assert!(q.matches(&t(vec![Value::Int(0), Value::Int(19)])));
        assert!(!q.matches(&t(vec![Value::Int(0), Value::Int(20)])));
        assert!(!q.matches(&t(vec![Value::Int(0), Value::Int(9)])));
    }

    #[test]
    fn gt_and_le() {
        let q = Query::on(TableId(0)).gt(0, 1i64).le(0, 3i64);
        assert!(!q.matches(&t(vec![Value::Int(1)])));
        assert!(q.matches(&t(vec![Value::Int(2)])));
        assert!(q.matches(&t(vec![Value::Int(3)])));
        assert!(!q.matches(&t(vec![Value::Int(4)])));
    }

    #[test]
    fn predicate_lambda() {
        // The paper's Done(dist.vertex, [distance < dist.distance]) shape.
        let q = Query::on(TableId(0)).eq(0, 3i64).filter(|t| t.int(1) < 100);
        assert!(q.matches(&t(vec![Value::Int(3), Value::Int(50)])));
        assert!(!q.matches(&t(vec![Value::Int(3), Value::Int(100)])));
    }

    #[test]
    fn covers_fields_for_indexes() {
        let q = Query::on(TableId(0)).eq(0, 1i64).eq(2, 2i64);
        assert!(q.covers_fields(&[0]));
        assert!(q.covers_fields(&[0, 2]));
        assert!(!q.covers_fields(&[0, 1]));
        assert_eq!(q.eq_value(2), Some(&Value::Int(2)));
        assert_eq!(q.eq_value(1), None);
    }

    #[test]
    fn conjunction_of_everything() {
        let q = Query::on(TableId(0))
            .eq(0, 1i64)
            .ge(1, 0i64)
            .filter(|t| t.int(1) % 2 == 0);
        assert!(q.matches(&t(vec![Value::Int(1), Value::Int(4)])));
        assert!(!q.matches(&t(vec![Value::Int(1), Value::Int(3)])));
        assert!(!q.matches(&t(vec![Value::Int(1), Value::Int(-2)])));
    }
}
