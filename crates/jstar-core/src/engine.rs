//! The execution engine — JStar's improved incremental pseudo-naive
//! bottom-up evaluator (§3, §5).
//!
//! The tuple lifecycle (Fig. 3): a rule `put`s a tuple → it waits in the
//! Delta set → it is taken out "in an order that respects the causality
//! ordering", inserted into Gamma, and triggers applicable rules → later
//! rules may query it → (optionally) it is discarded via lifetime hints.
//!
//! Two modes mirror the paper's compiler flags:
//!
//! * **sequential** (`-sequential`): one thread, ordered stores;
//! * **parallel** (default): the *all-minimums strategy* — every tuple of
//!   the minimal Delta equivalence class is executed as a fork/join task on
//!   a [`jstar_pool::ThreadPool`] sized by `--threads=N`.
//!
//! Per-table optimisation flags are faithful to §5.1: `-noDelta T` sends
//! `T`'s tuples straight to Gamma and fires their rules immediately;
//! `-noGamma T` skips storing `T`'s tuples (they act as pure triggers).

use crate::delta::{DeltaInbox, DeltaKind, DeltaQueue};
use crate::error::{JStarError, Result};
use crate::gamma::{Gamma, InsertOutcome, StoreKind, TableStore};
use crate::orderby::OrderKey;
use crate::program::Program;
use crate::query::Query;
use crate::reduce::Reducer;
use crate::schema::TableId;
use crate::stats::{EngineStats, StepRecord};
use crate::tuple::Tuple;
use jstar_pool::ThreadPool;
use parking_lot::Mutex;
use std::cmp::Ordering as CmpOrdering;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A tuple-lifetime predicate (§5 step 4): returns true to keep a tuple.
pub type LifetimeHint = Arc<dyn Fn(&Tuple) -> bool + Send + Sync>;

/// Engine configuration — the paper's compiler flags and runtime options,
/// kept *outside* the program source (workflow stages 3–4).
#[derive(Clone)]
pub struct EngineConfig {
    /// `-sequential`: single-threaded execution with sequential stores.
    pub sequential: bool,
    /// `--threads=N`: fork/join pool size for parallel execution.
    pub threads: usize,
    /// `-noDelta T` tables: bypass the Delta tree.
    pub no_delta: Vec<TableId>,
    /// `-noGamma T` tables: never stored in Gamma.
    pub no_gamma: Vec<TableId>,
    /// Per-table store overrides (the paper's data-structure hints).
    pub stores: HashMap<TableId, StoreKind>,
    /// Check field types on every put (cheap; on by default).
    pub type_check: bool,
    /// Check the Law of Causality on every put (on by default; §4).
    pub enforce_causality: bool,
    /// Record a per-step log for parallelism profiling.
    pub record_steps: bool,
    /// Abort after this many steps — a guard for accidentally non-causal
    /// infinite programs like §3's unconditional Ship rule.
    pub max_steps: Option<u64>,
    /// Share an existing pool instead of creating one per engine.
    pub pool: Option<Arc<ThreadPool>>,
    /// Which Delta structure to use (the tree of the paper, or the flat
    /// ordered map kept as an ablation).
    pub delta: DeltaKind,
    /// Tuple-lifetime hints (§5 step 4): after every `hint_interval` steps
    /// the engine drops tuples the hook rejects from the table's Gamma
    /// store. "We simply retain all tuples, or use manual lifetime hints
    /// from the user to determine when tuples can be discarded."
    pub lifetime_hints: Vec<(TableId, LifetimeHint)>,
    /// How often (in steps) lifetime hints run; 0 disables them.
    pub hint_interval: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            sequential: false,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            no_delta: Vec::new(),
            no_gamma: Vec::new(),
            stores: HashMap::new(),
            type_check: true,
            enforce_causality: true,
            record_steps: false,
            max_steps: None,
            pool: None,
            delta: DeltaKind::Tree,
            lifetime_hints: Vec::new(),
            hint_interval: 0,
        }
    }
}

impl EngineConfig {
    /// Sequential configuration (the `-sequential` flag).
    pub fn sequential() -> Self {
        EngineConfig {
            sequential: true,
            threads: 1,
            ..Default::default()
        }
    }

    /// Parallel configuration with `n` fork/join threads.
    pub fn parallel(n: usize) -> Self {
        EngineConfig {
            sequential: false,
            threads: n.max(1),
            ..Default::default()
        }
    }

    /// Adds a `-noDelta` table.
    pub fn no_delta(mut self, t: TableId) -> Self {
        self.no_delta.push(t);
        self
    }

    /// Adds a `-noGamma` table.
    pub fn no_gamma(mut self, t: TableId) -> Self {
        self.no_gamma.push(t);
        self
    }

    /// Overrides the Gamma store for one table.
    pub fn store(mut self, t: TableId, kind: StoreKind) -> Self {
        self.stores.insert(t, kind);
        self
    }

    /// Enables the per-step parallelism log.
    pub fn record_steps(mut self) -> Self {
        self.record_steps = true;
        self
    }

    /// Sets the runaway-program step guard.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Selects the Delta structure (ablation knob).
    pub fn delta_kind(mut self, kind: DeltaKind) -> Self {
        self.delta = kind;
        self
    }

    /// Registers a tuple-lifetime hint for `table`: every `interval` steps,
    /// tuples the hook rejects are discarded from Gamma (§5 step 4 — the
    /// manual garbage-collection hints).
    pub fn lifetime_hint(
        mut self,
        table: TableId,
        interval: u64,
        keep: impl Fn(&Tuple) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.lifetime_hints.push((table, Arc::new(keep)));
        self.hint_interval = interval.max(1);
        self
    }
}

/// Shared run-time state, accessible from worker threads.
pub(crate) struct RunState {
    program: Arc<Program>,
    gamma: Gamma,
    inbox: DeltaInbox,
    no_delta: Vec<bool>,
    no_gamma: Vec<bool>,
    type_check: bool,
    enforce_causality: bool,
    output: Mutex<Vec<String>>,
    errors: Mutex<Vec<JStarError>>,
    stats: EngineStats,
    pool: Option<Arc<ThreadPool>>,
}

impl RunState {
    fn record_error(&self, e: JStarError) {
        self.errors.lock().push(e);
    }

    fn has_errors(&self) -> bool {
        !self.errors.lock().is_empty()
    }
}

/// The context a rule body receives: its window onto the database.
///
/// All queries see only tuples already moved into Gamma — i.e. tuples that
/// are causally at-or-before the trigger — which is exactly why negative
/// and aggregate query results are stable (§4).
pub struct RuleCtx<'a> {
    state: &'a RunState,
    trigger_key: OrderKey,
    rule: &'a str,
}

impl<'a> RuleCtx<'a> {
    /// The causal position of the trigger tuple.
    pub fn trigger_key(&self) -> &OrderKey {
        &self.trigger_key
    }

    /// The name of the executing rule (diagnostics).
    pub fn rule_name(&self) -> &str {
        self.rule
    }

    /// Looks up a table id by name.
    pub fn table(&self, name: &str) -> TableId {
        self.state
            .program
            .table_id(name)
            .unwrap_or_else(|| panic!("unknown table {name}"))
    }

    /// Puts a new tuple into the database (§3). The tuple is placed in the
    /// Delta set (or sent straight to Gamma for `-noDelta` tables). The Law
    /// of Causality is enforced: the tuple's order key must not precede the
    /// trigger's.
    pub fn put(&self, t: Tuple) {
        put_tuple(self.state, &self.trigger_key, self.rule, t);
    }

    /// Collects all Gamma tuples matching `q` (a positive query).
    pub fn query(&self, q: &Query) -> Vec<Tuple> {
        self.count_query(q.table);
        self.state.gamma.collect(q)
    }

    /// Streams Gamma tuples matching `q`; return `false` to stop early.
    pub fn query_for_each(&self, q: &Query, mut f: impl FnMut(&Tuple) -> bool) {
        self.count_query(q.table);
        self.state.gamma.query(q, &mut f);
    }

    /// True if some tuple matches (positive existence).
    pub fn exists(&self, q: &Query) -> bool {
        self.count_query(q.table);
        self.state.gamma.any_match(q)
    }

    /// Negative query: true if *no* tuple matches — the paper's
    /// `get uniq? T(...) == null` pattern. Sound only when the queried
    /// region is causally before the trigger, which static checking
    /// verifies (§4).
    pub fn none(&self, q: &Query) -> bool {
        !self.exists(q)
    }

    /// Returns the unique match, if any (`get uniq?`).
    pub fn get_uniq(&self, q: &Query) -> Option<Tuple> {
        self.count_query(q.table);
        let mut found = None;
        self.state.gamma.query(q, &mut |t| {
            found = Some(t.clone());
            false
        });
        found
    }

    /// Aggregate query: folds every match through `reducer`.
    pub fn reduce<R: Reducer>(&self, q: &Query, reducer: &R) -> R::Acc {
        self.count_query(q.table);
        let mut acc = reducer.identity();
        self.state.gamma.query(q, &mut |t| {
            reducer.accept(&mut acc, t);
            true
        });
        acc
    }

    /// `get min T(...)` over an integer field (§4's example rule uses
    /// `get min Tuple1(queryArgs)`).
    pub fn min_int(&self, q: &Query, field: usize) -> Option<i64> {
        self.reduce(q, &crate::reduce::MinIntReducer { field })
    }

    /// `get max T(...)` over an integer field.
    pub fn max_int(&self, q: &Query, field: usize) -> Option<i64> {
        self.reduce(q, &crate::reduce::MaxIntReducer { field })
    }

    /// Counts matching tuples.
    pub fn count(&self, q: &Query) -> u64 {
        self.reduce(q, &crate::reduce::CountReducer)
    }

    /// §5.2 "additional parallelism": runs `f` over every match of `q` in
    /// parallel on the engine pool. Sound because JStar rule loops "that
    /// do not use a reducer object \[are\] known to have independent loop
    /// bodies" — the language has no mutable variables. Falls back to
    /// sequential iteration in `-sequential` mode.
    pub fn par_for_each_match(&self, q: &Query, f: impl Fn(&Tuple) + Send + Sync) {
        let matches = self.query(q);
        match &self.state.pool {
            Some(pool) if matches.len() > 1 => {
                jstar_pool::parallel_chunks(pool, &matches, 0, |chunk, _| {
                    for t in chunk {
                        f(t);
                    }
                });
            }
            _ => {
                for t in &matches {
                    f(t);
                }
            }
        }
    }

    /// §5.2 "additional parallelism": aggregate query evaluated with a
    /// parallel tree reduction ("loops that do involve a reducer object
    /// could also be executed in parallel, with a tree-based pass to
    /// combine the final reducer results").
    pub fn reduce_parallel<R: Reducer>(&self, q: &Query, reducer: &R) -> R::Acc {
        match &self.state.pool {
            Some(pool) => {
                let matches = self.query(q);
                crate::reduce::reduce_par(pool, reducer, &matches)
            }
            None => self.reduce(q, reducer),
        }
    }

    /// Emits one line of program output. Output is collected per run; the
    /// paper notes tuple/output *order* is not part of the deterministic
    /// semantics, so tests compare output as multisets.
    pub fn println(&self, msg: impl Into<String>) {
        self.state.output.lock().push(msg.into());
    }

    /// Direct access to a table's Gamma store — the analog of the paper's
    /// `unsafe` code blocks used to implement system rules and custom
    /// native-array stores (Median's `double[2][N]`, MatrixMult's 2-D
    /// arrays). Downcast with [`TableStore::as_any`].
    pub fn store(&self, table: TableId) -> &Arc<dyn TableStore> {
        self.state.gamma.store(table)
    }

    /// The fork/join pool, when running in parallel mode — lets rule bodies
    /// parallelise their independent internal loops (§5.2 notes JStar loops
    /// are data-parallel because variables are immutable).
    pub fn pool(&self) -> Option<&Arc<ThreadPool>> {
        self.state.pool.as_ref()
    }

    /// Records an application-level error, aborting the run.
    pub fn fail(&self, msg: impl Into<String>) {
        self.state.record_error(JStarError::Other(msg.into()));
    }

    fn count_query(&self, table: TableId) {
        self.state.stats.tables[table.index()]
            .queries
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Core put path, shared by `RuleCtx::put`, initial puts and injected
/// event tuples.
fn put_tuple(state: &RunState, trigger_key: &OrderKey, rule: &str, t: Tuple) {
    let table = t.table();
    let ti = table.index();
    state.stats.tables[ti].puts.fetch_add(1, Ordering::Relaxed);

    if state.type_check {
        if let Err(msg) = state.program.def(table).type_check(t.fields()) {
            state.record_error(JStarError::Type(msg));
            return;
        }
    }

    let key = state.program.orderbys()[ti].key_of(&t);
    if state.enforce_causality && trigger_key.cmp(&key) == CmpOrdering::Greater {
        state.record_error(JStarError::CausalityViolation {
            rule: rule.to_string(),
            trigger_key: trigger_key.clone(),
            put_key: key,
            tuple: t.to_string(),
        });
        return;
    }

    if state.no_delta[ti] {
        // §5.1: put straight into Gamma and fire triggered rules
        // immediately on this thread.
        process_tuple(state, &key, t);
    } else {
        state.inbox.push(key, t);
    }
}

/// Moves one tuple out of the Delta set: inserts it into Gamma (unless
/// `-noGamma`), and if it is fresh, fires every rule it triggers.
fn process_tuple(state: &RunState, key: &OrderKey, t: Tuple) {
    let table = t.table();
    let ti = table.index();
    let fresh = if state.no_gamma[ti] {
        true
    } else {
        match state.gamma.insert(t.clone()) {
            InsertOutcome::Fresh => {
                state.stats.tables[ti]
                    .gamma_fresh
                    .fetch_add(1, Ordering::Relaxed);
                true
            }
            InsertOutcome::Duplicate => {
                // Set-oriented semantics: duplicates neither re-trigger
                // rules nor re-enter Gamma (§6.2's SumMonth dedup).
                state.stats.tables[ti]
                    .gamma_dups
                    .fetch_add(1, Ordering::Relaxed);
                false
            }
            InsertOutcome::KeyConflict => {
                state.record_error(JStarError::KeyViolation {
                    table: state.program.def(table).name.clone(),
                    detail: format!("insert of {t} violates the -> key invariant"),
                });
                false
            }
        }
    };
    if !fresh {
        return;
    }
    for &ri in &state.program.rules_by_trigger()[ti] {
        let rule = &state.program.rules()[ri];
        state.stats.tables[ti]
            .triggers
            .fetch_add(1, Ordering::Relaxed);
        let ctx = RuleCtx {
            state,
            trigger_key: key.clone(),
            rule: &rule.name,
        };
        (rule.body)(&ctx, &t);
    }
}

/// The result of one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of Delta extraction steps.
    pub steps: u64,
    /// Tuples processed out of the Delta set.
    pub tuples_processed: u64,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Collected `println` output (order not significant).
    pub output: Vec<String>,
}

/// A configured instance of a JStar program, ready to run.
pub struct Engine {
    state: Arc<RunState>,
    config: EngineConfig,
    pool: Option<Arc<ThreadPool>>,
    injected: Vec<Tuple>,
}

impl Engine {
    /// Builds an engine for `program` under `config`.
    ///
    /// Gamma stores default to the mode-appropriate structure (§5: `TreeSet`
    /// sequentially, concurrent ordered store in parallel) unless overridden
    /// per table via [`EngineConfig::store`].
    pub fn new(program: Arc<Program>, config: EngineConfig) -> Engine {
        let n = program.defs().len();
        let kinds: Vec<StoreKind> = (0..n)
            .map(|i| {
                config
                    .stores
                    .get(&TableId(i as u32))
                    .cloned()
                    .unwrap_or_else(|| StoreKind::default_for(!config.sequential))
            })
            .collect();
        let gamma = Gamma::new(program.defs(), &kinds);
        let pool = if config.sequential {
            None
        } else {
            Some(
                config
                    .pool
                    .clone()
                    .unwrap_or_else(|| Arc::new(ThreadPool::new(config.threads))),
            )
        };
        let mut no_delta = vec![false; n];
        for t in &config.no_delta {
            no_delta[t.index()] = true;
        }
        let mut no_gamma = vec![false; n];
        for t in &config.no_gamma {
            no_gamma[t.index()] = true;
        }
        let state = Arc::new(RunState {
            program: Arc::clone(&program),
            gamma,
            inbox: DeltaInbox::new(),
            no_delta,
            no_gamma,
            type_check: config.type_check,
            enforce_causality: config.enforce_causality,
            output: Mutex::new(Vec::new()),
            errors: Mutex::new(Vec::new()),
            stats: EngineStats::new(n),
            pool: pool.clone(),
        });
        Engine {
            state,
            config,
            pool,
            injected: Vec::new(),
        }
    }

    /// Queues an external event tuple (§3: "the input tuples are added to
    /// the Delta Set, and can then trigger various rules"). Must be called
    /// before [`Engine::run`].
    pub fn inject(&mut self, t: Tuple) {
        self.injected.push(t);
    }

    /// Runs the program to quiescence (empty Delta set).
    pub fn run(&mut self) -> Result<RunReport> {
        let start = Instant::now();
        let state = &*self.state;

        // Initial puts (from program source) and injected events enter at
        // the minimal key, so they may target any table.
        let min = OrderKey::minimum();
        for t in state.program.initial() {
            put_tuple(state, &min, "<init>", t.clone());
        }
        for t in self.injected.drain(..) {
            put_tuple(state, &min, "<inject>", t);
        }

        let mut tree = DeltaQueue::new(self.config.delta);
        let mut steps: u64 = 0;
        loop {
            if state.has_errors() {
                break;
            }
            // Absorb everything staged by the previous step's workers.
            while let Some((key, t)) = state.inbox.pop() {
                let ti = t.table().index();
                if tree.insert(&key, t) {
                    state.stats.tables[ti]
                        .delta_inserts
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            let Some((key, mut class)) = tree.pop_min_class() else {
                break;
            };
            steps += 1;
            if let Some(max) = self.config.max_steps {
                if steps > max {
                    state.record_error(JStarError::Other(format!(
                        "step limit {max} exceeded — is a rule putting tuples unconditionally?"
                    )));
                    break;
                }
            }
            let class_size = class.len();
            state.stats.record_step(class_size);
            let step_start = self.config.record_steps.then(Instant::now);

            // Deterministic intra-class order for the sequential engine
            // (parallel execution order is intentionally unspecified).
            class.sort();

            match (&self.pool, class.len()) {
                (Some(pool), n) if n > 1 => {
                    // The all-minimums strategy: one fork/join task per
                    // tuple (chunked to keep task overhead sane for the
                    // very wide classes of e.g. MatrixMult).
                    let chunk = n.div_ceil(pool.num_threads() * 4).max(1);
                    let key = &key;
                    pool.scope(|s| {
                        for piece in class.chunks(chunk) {
                            s.spawn(move |_| {
                                for t in piece {
                                    process_tuple(state, key, t.clone());
                                }
                            });
                        }
                    });
                }
                _ => {
                    for t in class {
                        process_tuple(state, &key, t);
                    }
                }
            }

            if let Some(t0) = step_start {
                state.stats.log_step(StepRecord {
                    key: key.to_string(),
                    class_size,
                    micros: t0.elapsed().as_micros(),
                });
            }

            // §5 step 4: apply manual tuple-lifetime hints periodically.
            if self.config.hint_interval > 0 && steps.is_multiple_of(self.config.hint_interval) {
                for (table, keep) in &self.config.lifetime_hints {
                    state.gamma.store(*table).retain(&**keep);
                }
            }
        }

        let errors = state.errors.lock();
        if let Some(first) = errors.first() {
            return Err(first.clone());
        }
        drop(errors);

        Ok(RunReport {
            steps,
            tuples_processed: state.stats.tuples_processed.load(Ordering::Relaxed),
            elapsed: start.elapsed(),
            output: state.output.lock().clone(),
        })
    }

    /// The Gamma database (inspect results after a run).
    pub fn gamma(&self) -> &Gamma {
        &self.state.gamma
    }

    /// Engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.state.stats
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.state.program
    }

    /// Collected output lines so far.
    pub fn output(&self) -> Vec<String> {
        self.state.output.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orderby::{seq, strat};
    use crate::program::ProgramBuilder;
    use crate::value::Value;

    /// The paper's bounded Ship program (§3): move right while x < 400.
    fn ship_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new();
        let ship = p.table("Ship", |b| {
            b.col_int("frame")
                .col_int("x")
                .col_int("y")
                .col_int("dx")
                .col_int("dy")
                .orderby(&[strat("Int"), seq("frame")])
        });
        p.rule("move-right", ship, move |ctx, s| {
            if s.int(1) < 400 {
                ctx.put(Tuple::new(
                    ship,
                    vec![
                        Value::Int(s.int(0) + 1),
                        Value::Int(s.int(1) + 150),
                        Value::Int(s.int(2)),
                        Value::Int(s.int(3)),
                        Value::Int(s.int(4)),
                    ],
                ));
            }
        });
        p.put(Tuple::new(
            ship,
            vec![
                Value::Int(0),
                Value::Int(10),
                Value::Int(10),
                Value::Int(150),
                Value::Int(0),
            ],
        ));
        Arc::new(p.build().unwrap())
    }

    #[test]
    fn ship_moves_until_bound_sequential() {
        let prog = ship_program();
        let mut eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
        let report = eng.run().unwrap();
        // Frames 0..=3: x = 10, 160, 310, 460 (460 >= 400 stops the rule).
        let ship = prog.table_id("Ship").unwrap();
        let all = eng.gamma().collect(&Query::on(ship));
        assert_eq!(all.len(), 4);
        let mut xs: Vec<i64> = all.iter().map(|t| t.int(1)).collect();
        xs.sort();
        assert_eq!(xs, vec![10, 160, 310, 460]);
        assert_eq!(report.steps, 4);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let prog = ship_program();
        let ship = prog.table_id("Ship").unwrap();
        let mut seq_eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
        seq_eng.run().unwrap();
        let mut par_eng = Engine::new(Arc::clone(&prog), EngineConfig::parallel(4));
        par_eng.run().unwrap();
        let mut a = seq_eng.gamma().collect(&Query::on(ship));
        let mut b = par_eng.gamma().collect(&Query::on(ship));
        a.sort();
        b.sort();
        assert_eq!(a, b, "deterministic output independent of strategy");
    }

    #[test]
    fn unbounded_rule_hits_step_limit() {
        // §3's first rule: "effectively creates an infinite loop that keeps
        // moving the Ship infinitely far to the right!"
        let mut p = ProgramBuilder::new();
        let ship = p.table("Ship", |b| {
            b.col_int("frame").col_int("x").orderby(&[seq("frame")])
        });
        p.rule("move-unbounded", ship, move |ctx, s| {
            ctx.put(Tuple::new(
                ship,
                vec![Value::Int(s.int(0) + 1), Value::Int(s.int(1) + 150)],
            ));
        });
        p.put(Tuple::new(ship, vec![Value::Int(0), Value::Int(10)]));
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(prog, EngineConfig::sequential().max_steps(100));
        let err = eng.run().unwrap_err();
        assert!(err.to_string().contains("step limit"));
    }

    #[test]
    fn causality_violation_is_caught_at_runtime() {
        let mut p = ProgramBuilder::new();
        let t = p.table("T", |b| b.col_int("time").orderby(&[seq("time")]));
        p.rule("back-in-time", t, move |ctx, tr| {
            ctx.put(Tuple::new(t, vec![Value::Int(tr.int(0) - 1)]));
        });
        p.put(Tuple::new(t, vec![Value::Int(5)]));
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(prog, EngineConfig::sequential());
        let err = eng.run().unwrap_err();
        assert!(
            matches!(err, JStarError::CausalityViolation { .. }),
            "{err}"
        );
    }

    #[test]
    fn key_violation_detected() {
        let mut p = ProgramBuilder::new();
        let t = p.table("T", |b| {
            b.col_int("k").col_int("v").key(1).orderby(&[seq("k")])
        });
        p.put(Tuple::new(t, vec![Value::Int(1), Value::Int(10)]));
        p.put(Tuple::new(t, vec![Value::Int(1), Value::Int(20)]));
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(prog, EngineConfig::sequential());
        let err = eng.run().unwrap_err();
        assert!(matches!(err, JStarError::KeyViolation { .. }), "{err}");
    }

    #[test]
    fn type_error_detected() {
        let mut p = ProgramBuilder::new();
        let t = p.table("T", |b| b.col_int("k").orderby(&[seq("k")]));
        p.put(Tuple::new(t, vec![Value::str("not an int")]));
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(prog, EngineConfig::sequential());
        let err = eng.run().unwrap_err();
        assert!(matches!(err, JStarError::Type(_)), "{err}");
    }

    #[test]
    fn duplicates_trigger_rules_once() {
        let mut p = ProgramBuilder::new();
        let a = p.table("A", |b| b.col_int("t").orderby(&[strat("A"), seq("t")]));
        let b = p.table("B", |bb| bb.col_int("t").orderby(&[strat("B"), seq("t")]));
        p.order(&["A", "B"]);
        p.rule("fan-in", a, move |ctx, tr| {
            // Many A tuples map to the same B tuple (like PvWatts →
            // SumMonth); B's rule must fire once per distinct tuple.
            ctx.put(Tuple::new(b, vec![Value::Int(tr.int(0) / 10)]));
        });
        p.rule("count-b", b, move |ctx, tr| {
            ctx.println(format!("B {}", tr.int(0)));
        });
        for i in 0..30 {
            p.put(Tuple::new(a, vec![Value::Int(i)]));
        }
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(prog, EngineConfig::sequential());
        let report = eng.run().unwrap();
        let mut out = report.output;
        out.sort();
        assert_eq!(out, vec!["B 0", "B 1", "B 2"]);
    }

    #[test]
    fn no_delta_fires_rules_inline() {
        let mut p = ProgramBuilder::new();
        let a = p.table("A", |b| b.col_int("t").orderby(&[strat("A"), seq("t")]));
        let b = p.table("B", |bb| bb.col_int("t").orderby(&[strat("B"), seq("t")]));
        p.order(&["A", "B"]);
        p.rule("emit", a, move |ctx, tr| {
            ctx.put(Tuple::new(b, vec![Value::Int(tr.int(0))]));
        });
        p.rule("sink", b, move |ctx, tr| {
            ctx.println(format!("got {}", tr.int(0)));
        });
        p.put(Tuple::new(a, vec![Value::Int(1)]));
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(
            Arc::clone(&prog),
            EngineConfig::sequential().no_delta(prog.table_id("B").unwrap()),
        );
        let report = eng.run().unwrap();
        assert_eq!(report.output, vec!["got 1"]);
        // B bypassed the Delta tree entirely.
        let snap = eng.stats().tables[prog.table_id("B").unwrap().index()].snapshot();
        assert_eq!(snap.delta_inserts, 0);
        assert_eq!(snap.gamma_fresh, 1);
    }

    #[test]
    fn no_gamma_tables_are_not_stored() {
        let mut p = ProgramBuilder::new();
        let a = p.table("A", |b| b.col_int("t").orderby(&[seq("t")]));
        p.rule("noop", a, move |_ctx, _t| {});
        p.put(Tuple::new(a, vec![Value::Int(1)]));
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(
            Arc::clone(&prog),
            EngineConfig::sequential().no_gamma(prog.table_id("A").unwrap()),
        );
        eng.run().unwrap();
        assert_eq!(eng.gamma().total_len(), 0);
        // The rule still fired.
        let snap = eng.stats().tables[0].snapshot();
        assert_eq!(snap.triggers, 1);
    }

    #[test]
    fn injected_events_trigger_rules() {
        let mut p = ProgramBuilder::new();
        let ev = p.table("Event", |b| b.col_int("t").orderby(&[seq("t")]));
        p.rule("log", ev, move |ctx, t| {
            ctx.println(format!("ev {}", t.int(0)))
        });
        let prog = Arc::new(p.build().unwrap());
        let mut eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
        eng.inject(Tuple::new(ev, vec![Value::Int(9)]));
        let report = eng.run().unwrap();
        assert_eq!(report.output, vec!["ev 9"]);
    }

    #[test]
    fn flat_delta_kind_produces_identical_results() {
        let prog = ship_program();
        let ship = prog.table_id("Ship").unwrap();
        let mut tree_eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
        tree_eng.run().unwrap();
        let mut flat_eng = Engine::new(
            Arc::clone(&prog),
            EngineConfig::sequential().delta_kind(crate::delta::DeltaKind::Flat),
        );
        flat_eng.run().unwrap();
        let mut a = tree_eng.gamma().collect(&Query::on(ship));
        let mut b = flat_eng.gamma().collect(&Query::on(ship));
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn lifetime_hints_discard_old_tuples() {
        let prog = ship_program();
        let ship = prog.table_id("Ship").unwrap();
        // Keep only ships at frame >= 2 — the two-generation idea of §6.6.
        let config = EngineConfig::sequential().lifetime_hint(ship, 1, |t| t.int(0) >= 2);
        let mut eng = Engine::new(Arc::clone(&prog), config);
        eng.run().unwrap();
        let left = eng.gamma().collect(&Query::on(ship));
        assert!(left.len() < 4, "hints discarded early frames: {left:?}");
        assert!(left.iter().all(|t| t.int(0) >= 2));
    }

    #[test]
    fn stats_count_puts_and_triggers() {
        let prog = ship_program();
        let mut eng = Engine::new(Arc::clone(&prog), EngineConfig::sequential());
        eng.run().unwrap();
        let snap = eng.stats().tables[0].snapshot();
        assert_eq!(snap.puts, 4, "initial + 3 rule puts");
        assert_eq!(snap.gamma_fresh, 4);
        assert_eq!(snap.triggers, 4);
    }
}
